//! The `TurnstileSampler::merge` contract across the sampler families:
//! same-seeded shards that saw two halves of a stream merge into exactly
//! the sampler that saw the concatenated stream, and non-linear samplers
//! refuse to merge.

use perfect_sampling::prelude::*;

/// Builds the halves-vs-whole fixture: a churny turnstile stream split at
/// the midpoint.
fn fixture(seed: u64) -> (FrequencyVector, Vec<Update>, Vec<Update>, Vec<Update>) {
    let x = pts_stream::gen::zipf_vector(48, 1.0, 80, seed);
    let mut rng = pts_util::Xoshiro256pp::new(seed ^ 0x5711);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    let updates = stream.updates().to_vec();
    let (left, right) = updates.split_at(updates.len() / 2);
    (x, updates.clone(), left.to_vec(), right.to_vec())
}

/// Runs the halves-vs-whole check for one sampler family.
fn check_merge<S: TurnstileSampler>(mut make: impl FnMut() -> S, seed: u64) {
    let (_, whole_updates, left, right) = fixture(seed);
    let mut a = make();
    let mut b = make();
    let mut whole = make();
    for u in &left {
        a.process(*u);
    }
    for u in &right {
        b.process(*u);
    }
    a.merge(&b);
    for u in &whole_updates {
        whole.process(*u);
    }
    match (whole.sample(), a.sample()) {
        (None, None) => {}
        (Some(w), Some(m)) => {
            assert_eq!(w.index, m.index, "merged shard decision diverged");
            assert!(
                (w.estimate - m.estimate).abs() < 1e-6 * (1.0 + w.estimate.abs()),
                "estimates diverged: {} vs {}",
                w.estimate,
                m.estimate
            );
        }
        (w, m) => panic!("outcome diverged: whole {w:?} vs merged {m:?}"),
    }
}

#[test]
fn l0_sampler_merges() {
    check_merge(|| PerfectL0Sampler::new(48, L0Params::default(), 71), 1);
}

#[test]
fn lp_le2_batch_merges() {
    let params = LpLe2Params::for_universe(48, 2.0);
    check_merge(|| LpLe2Batch::new(48, params, 4, 72), 2);
}

#[test]
fn precision_sampler_merges() {
    let params = PrecisionParams::for_universe(48, 2.0, 0.3);
    check_merge(|| PrecisionSampler::new(48, params, 73), 3);
}

#[test]
fn perfect_lp_sampler_merges() {
    let params = PerfectLpParams::for_universe(48, 3.0);
    check_merge(|| PerfectLpSampler::new(48, params, 74), 4);
}

#[test]
fn rejection_g_sampler_merges() {
    check_merge(|| RejectionGSampler::log_sampler(48, 4096, 75), 5);
}

#[test]
fn approx_lp_sampler_merges() {
    let params = ApproxLpParams::for_universe(48, 3.0, 0.3);
    check_merge(|| ApproxLpSampler::new(48, params, 76), 6);
}

#[test]
fn approx_lp_batch_merges() {
    let params = ApproxLpParams::for_universe(48, 3.0, 0.3);
    check_merge(|| ApproxLpBatch::new(48, params, 3, 77), 7);
}

#[test]
#[should_panic(expected = "mismatch")]
fn g_sampler_merge_rejects_different_laws() {
    // Same seed, but a log law cannot merge with a cap law.
    let mut log = RejectionGSampler::log_sampler(48, 4096, 9);
    let cap = RejectionGSampler::cap_sampler(48, 8.0, 2.0, 9);
    log.merge(&cap);
}

#[test]
#[should_panic(expected = "cannot merge")]
fn reservoir_sampler_refuses_to_merge() {
    let mut a = ReservoirSampler::new(1);
    let b = ReservoirSampler::new(2);
    a.merge(&b);
}
