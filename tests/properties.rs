//! Property-based integration tests: invariants that must hold for *every*
//! vector and stream, checked with proptest over randomized inputs.

use perfect_sampling::prelude::*;
use proptest::prelude::*;

/// Strategy: sparse-ish integer vectors over a small universe.
fn small_vector() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-50i64..=50, 8..=24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The L0 sampler returns an index with a non-zero value and reports it
    /// exactly, on any vector.
    #[test]
    fn l0_sample_is_exact_and_in_support(values in small_vector(), seed in 0u64..10_000) {
        let x = FrequencyVector::from_values(values);
        let mut s = PerfectL0Sampler::new(x.n(), L0Params::default(), seed);
        s.ingest_vector(&x);
        match s.sample() {
            Some(sample) => {
                prop_assert_ne!(x.value(sample.index), 0);
                prop_assert_eq!(sample.estimate, x.value(sample.index) as f64);
            }
            None => prop_assert_eq!(x.f0(), 0, "FAIL only legal on the zero vector (w.h.p.)"),
        }
    }

    /// Stream replay and final-vector ingest produce identical sampler
    /// decisions for the perfect L2 sampler (linearity).
    #[test]
    fn l2_sampler_is_stream_order_invariant(
        values in small_vector(),
        seed in 0u64..10_000,
        churn in 0.0f64..2.0,
    ) {
        let x = FrequencyVector::from_values(values);
        let mut rng = pts_util::Xoshiro256pp::new(seed);
        let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn }, &mut rng);
        let params = LpLe2Params::for_universe(x.n(), 2.0);
        let mut a = PerfectLpLe2Sampler::new(x.n(), params, seed ^ 0xABCD);
        a.ingest_stream(&stream);
        let mut b = PerfectLpLe2Sampler::new(x.n(), params, seed ^ 0xABCD);
        b.ingest_vector(&x);
        match (a.sample(), b.sample()) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                prop_assert_eq!(sa.index, sb.index);
                prop_assert!((sa.estimate - sb.estimate).abs() <= 1e-6 * (1.0 + sb.estimate.abs()));
            }
            (sa, sb) => prop_assert!(false, "diverged: {:?} vs {:?}", sa, sb),
        }
    }

    /// Whatever index a perfect Lp (p>2) sampler emits has a non-zero value;
    /// its estimate has the right sign and a sane magnitude.
    #[test]
    fn lp_sample_is_plausible(values in small_vector(), seed in 0u64..5_000) {
        let x = FrequencyVector::from_values(values);
        let params = PerfectLpParams::for_universe(x.n(), 3.0);
        let mut s = PerfectLpSampler::new(x.n(), params, seed);
        s.ingest_vector(&x);
        if let Some(sample) = s.sample() {
            let truth = x.value(sample.index);
            prop_assert_ne!(truth, 0, "sampled a zero coordinate");
            prop_assert_eq!(
                sample.estimate.signum() as i64,
                truth.signum(),
                "estimate sign flipped: {} vs {}", sample.estimate, truth
            );
            let rel = (sample.estimate - truth as f64).abs() / (truth.abs() as f64);
            prop_assert!(rel < 1.0, "estimate {} vs truth {}", sample.estimate, truth);
        }
    }

    /// G-samplers never emit a zero coordinate and always report exact
    /// values, for the log and cap instantiations.
    #[test]
    fn g_samplers_respect_support(values in small_vector(), seed in 0u64..5_000) {
        let x = FrequencyVector::from_values(values);
        let mut log_s = RejectionGSampler::log_sampler(x.n(), 64, seed);
        let mut cap_s = RejectionGSampler::cap_sampler(x.n(), 6.0, 2.0, seed ^ 0x55);
        log_s.ingest_vector(&x);
        cap_s.ingest_vector(&x);
        for s in [log_s.sample(), cap_s.sample()].into_iter().flatten() {
            prop_assert_ne!(x.value(s.index), 0);
            prop_assert_eq!(s.estimate, x.value(s.index) as f64);
        }
    }

    /// Subset-norm queries are monotone: a superset's estimate uses a
    /// superset of accepted repetitions, so Q ⊆ Q' implies query(Q) ≤
    /// query(Q') for the same estimator state.
    #[test]
    fn subset_norm_is_monotone(values in small_vector(), seed in 0u64..2_000) {
        let x = FrequencyVector::from_values(values);
        if x.fp_moment(3.0) == 0.0 {
            return Ok(());
        }
        let mut est = SubsetNormEstimator::new(
            x.n(),
            SubsetNormParams { p: 3.0, epsilon: 0.4, alpha: 0.5, repetitions: 16 },
            seed,
        );
        est.ingest_vector(&x);
        let half: Vec<u64> = (0..x.n() as u64 / 2).collect();
        let all: Vec<u64> = (0..x.n() as u64).collect();
        let q_half = est.query(&half);
        let q_all = est.query(&all);
        prop_assert!(q_half <= q_all + 1e-9, "half {} > all {}", q_half, q_all);
    }

    /// `Stream::from_target` round-trips every vector in every style.
    #[test]
    fn stream_decomposition_roundtrips(values in small_vector(), seed in 0u64..10_000) {
        let x = FrequencyVector::from_values(values);
        let mut rng = pts_util::Xoshiro256pp::new(seed);
        for style in [
            StreamStyle::Bulk,
            StreamStyle::Turnstile { churn: 0.0 },
            StreamStyle::Turnstile { churn: 1.3 },
        ] {
            let s = Stream::from_target(&x, style, &mut rng);
            prop_assert_eq!(s.final_vector(), x.clone());
        }
    }
}
