//! End-to-end integration: streams flow through every sampler family and
//! the outputs obey the advertised laws (coarse-grained; the fine-grained
//! statistics live in the `pts-bench` experiments).

use perfect_sampling::prelude::*;
use pts_util::stats::tv_distance;

/// A shared fixture: skewed turnstile stream over a small universe.
fn fixture(seed: u64) -> (FrequencyVector, Stream) {
    let x = FrequencyVector::from_values(vec![6, -12, 20, 3, 0, 9, -15, 4]);
    let mut rng = pts_util::Xoshiro256pp::new(seed);
    let s = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.8 }, &mut rng);
    (x, s)
}

#[test]
fn perfect_lp_end_to_end_law() {
    let (x, stream) = fixture(1);
    let p = 3.0;
    let params = PerfectLpParams::for_universe(x.n(), p);
    let mut counts = vec![0u64; x.n()];
    let trials = 600;
    let mut fails = 0;
    for t in 0..trials {
        let mut s = PerfectLpSampler::new(x.n(), params, 1_000 + t * 11);
        s.ingest_stream(&stream);
        match s.sample() {
            Some(sample) => counts[sample.index as usize] += 1,
            None => fails += 1,
        }
    }
    assert!(fails < trials / 4, "fails {fails}/{trials}");
    let tv = tv_distance(&counts, &x.lp_weights(p));
    assert!(tv < 0.09, "tv {tv}");
}

#[test]
fn approximate_lp_end_to_end_law() {
    let (x, stream) = fixture(2);
    let p = 3.0;
    let params = ApproxLpParams::for_universe(x.n(), p, 0.3);
    let mut counts = vec![0u64; x.n()];
    let trials = 1_500;
    let mut produced = 0u64;
    for t in 0..trials {
        let mut s = ApproxLpSampler::new(x.n(), params, 3_000 + t * 7);
        s.ingest_stream(&stream);
        if let Some(sample) = s.sample() {
            counts[sample.index as usize] += 1;
            produced += 1;
        }
    }
    assert!(produced > trials / 3, "produced {produced}/{trials}");
    let tv = tv_distance(&counts, &x.lp_weights(p));
    assert!(tv < 0.13, "tv {tv}");
}

#[test]
fn g_samplers_end_to_end() {
    let (x, stream) = fixture(3);
    // Log-law over the final (post-deletion) values.
    let weights: Vec<f64> = x
        .values()
        .iter()
        .map(|&v| (1.0 + (v as f64).abs()).ln())
        .collect();
    let mut counts = vec![0u64; x.n()];
    let trials = 3_000;
    for t in 0..trials {
        let mut s = RejectionGSampler::log_sampler(x.n(), 64, 5_000 + t);
        s.ingest_stream(&stream);
        if let Some(sample) = s.sample() {
            // The value must be the exact net frequency.
            assert_eq!(sample.estimate, x.value(sample.index) as f64);
            counts[sample.index as usize] += 1;
        }
    }
    let tv = tv_distance(&counts, &weights);
    assert!(tv < 0.04, "tv {tv}");
}

#[test]
fn subset_norm_end_to_end() {
    let x = pts_stream::gen::zipf_vector(64, 1.0, 120, 4);
    let mut rng = pts_util::Xoshiro256pp::new(5);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.5 }, &mut rng);
    let p = 3.0;
    // Query: the even coordinates.
    let q: Vec<u64> = (0..64u64).filter(|i| i % 2 == 0).collect();
    let truth = x.subset_fp(&q, p);
    let alpha = truth / x.fp_moment(p);
    let mut est = SubsetNormEstimator::new(
        64,
        SubsetNormParams {
            p,
            epsilon: 0.3,
            alpha,
            repetitions: 48,
        },
        6,
    );
    for u in stream.iter() {
        est.process(*u);
    }
    let got = est.query(&q);
    let rel = (got - truth).abs() / truth;
    assert!(rel < 0.5, "rel err {rel} (alpha {alpha:.3})");
}

#[test]
fn turnstile_deletions_change_the_law() {
    // Insert a dominant coordinate, then delete it: the sampler must follow
    // the *net* vector (the defining turnstile property).
    let n = 8;
    let params = PerfectLpParams::for_universe(n, 3.0);
    let mut hits_after_delete = 0;
    let trials = 60;
    for t in 0..trials {
        let mut s = PerfectLpSampler::new(n, params, 80_000 + t);
        s.process(Update::new(0, 1_000));
        s.process(Update::new(1, 5));
        s.process(Update::new(2, 3));
        s.process(Update::new(0, -1_000)); // retract the giant
        if let Some(sample) = s.sample() {
            assert_ne!(sample.index, 0, "deleted coordinate must not dominate");
            hits_after_delete += 1;
        }
    }
    assert!(hits_after_delete > trials / 2, "hits {hits_after_delete}");
}

#[test]
fn distributed_shards_merge_to_global_law() {
    // Linearity across shards: two half-streams processed by identically
    // seeded samplers merge (via update concatenation) to the same outcome
    // as one global stream — the distributed-databases motivation of §1.3.
    let (x, stream) = fixture(7);
    let updates = stream.updates();
    let (left, right) = updates.split_at(updates.len() / 2);
    let params = PerfectLpParams::for_universe(x.n(), 3.0);

    let mut global = PerfectLpSampler::new(x.n(), params, 123);
    for u in updates {
        global.process(*u);
    }
    let mut sharded = PerfectLpSampler::new(x.n(), params, 123);
    for u in right.iter().chain(left.iter()) {
        // Order scrambled across shards: linear sketches do not care.
        sharded.process(*u);
    }
    match (global.sample(), sharded.sample()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.index, b.index);
            assert!((a.estimate - b.estimate).abs() < 1e-6);
        }
        (a, b) => panic!("shard merge diverged: {a:?} vs {b:?}"),
    }
}
