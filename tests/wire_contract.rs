//! Wire contract across the sampler stack: every sampler's compact state
//! round-trips bit-exactly (`decode(encode(x))` re-encodes to the same
//! bytes **and** produces the same draw), truncations fail cleanly, and the
//! one legitimately non-encodable value — a custom G-closure — reports
//! `WireError::Unsupported` instead of shipping garbage.

use perfect_sampling::prelude::*;
use pts_core::GSpec;
use pts_util::wire::{Decode, Encode, WireError};

fn feed<S: TurnstileSampler>(s: &mut S, n: u64, updates: u64, seed: u64) {
    let mut rng = pts_util::Xoshiro256pp::new(seed);
    for _ in 0..updates {
        let i = rng.next_below(n);
        let delta = rng.next_sign() * (1 + rng.next_below(20) as i64);
        s.process(Update::new(i, delta));
    }
}

/// Round-trip plus truncation fuzz; returns the decoded twin for
/// behavioral comparison.
fn roundtrip<T: Encode + Decode>(x: &T) -> T {
    let bytes = x.to_wire_bytes().expect("must encode");
    let back = T::from_wire_bytes(&bytes).expect("own encoding must decode");
    assert_eq!(
        back.to_wire_bytes().unwrap(),
        bytes,
        "re-encode diverged from original"
    );
    let stride = (bytes.len() / 48).max(1);
    for cut in (0..bytes.len()).step_by(stride) {
        assert!(
            T::from_wire_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} decoded"
        );
    }
    back
}

#[test]
fn perfect_l0_roundtrips_with_identical_draw() {
    let mut s = PerfectL0Sampler::new(64, L0Params::default(), 7);
    feed(&mut s, 64, 50, 1);
    let mut twin = roundtrip(&s);
    assert_eq!(s.sample(), twin.sample());
}

#[test]
fn lp_le2_batch_roundtrips_with_identical_draw() {
    let params = LpLe2Params::for_universe(64, 1.5).with_extra_estimators(2);
    let mut s = LpLe2Batch::new(64, params, 3, 11);
    feed(&mut s, 64, 60, 2);
    let mut twin = roundtrip(&s);
    assert_eq!(s.sample(), twin.sample());
}

#[test]
fn precision_sampler_roundtrips_with_identical_draw() {
    let mut s = PrecisionSampler::new(32, PrecisionParams::for_universe(32, 2.0, 0.4), 13);
    feed(&mut s, 32, 40, 3);
    let mut twin = roundtrip(&s);
    assert_eq!(s.sample(), twin.sample());
}

#[test]
fn reservoir_roundtrips_with_identical_future_stream() {
    let mut s = ReservoirSampler::new(5);
    for i in 0..30u64 {
        s.process(Update::new(i % 8, 1 + (i % 3) as i64));
    }
    let mut twin = roundtrip(&s);
    // Same held item now, and — because the RNG state shipped too — the
    // same replacement decisions on every future insertion.
    for i in 0..50u64 {
        let u = Update::new(i % 8, 1);
        s.process(u);
        twin.process(u);
        assert_eq!(s.sample(), twin.sample(), "diverged at arrival {i}");
    }
}

#[test]
fn perfect_lp_sampler_roundtrips_with_identical_draw() {
    let params = PerfectLpParams::for_universe(16, 3.0);
    let mut s = PerfectLpSampler::new(16, params, 17);
    feed(&mut s, 16, 40, 4);
    let mut twin = roundtrip(&s);
    assert_eq!(s.sample(), twin.sample());
}

#[test]
fn approx_lp_sampler_roundtrips_with_identical_draw() {
    let params = ApproxLpParams::for_universe(32, 3.0, 0.3);
    let mut s = ApproxLpSampler::new(32, params, 19);
    feed(&mut s, 32, 40, 5);
    let mut twin = roundtrip(&s);
    assert_eq!(s.sample(), twin.sample());
}

#[test]
fn named_g_samplers_roundtrip_with_identical_draw() {
    type Builder = Box<dyn Fn(u64) -> RejectionGSampler>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "log",
            Box::new(|s| RejectionGSampler::log_sampler(32, 500, s)),
        ),
        (
            "cap",
            Box::new(|s| RejectionGSampler::cap_sampler(32, 8.0, 2.0, s)),
        ),
        (
            "huber",
            Box::new(|s| RejectionGSampler::huber_sampler(32, 3.0, 500, s)),
        ),
        (
            "fair",
            Box::new(|s| RejectionGSampler::fair_sampler(32, 3.0, 500, s)),
        ),
        (
            "soft-cap",
            Box::new(|s| RejectionGSampler::soft_cap_sampler(32, 0.5, s)),
        ),
        (
            "l1l2",
            Box::new(|s| RejectionGSampler::l1l2_sampler(32, 500, s)),
        ),
    ];
    for (name, build) in builders {
        let mut s = build(23);
        feed(&mut s, 32, 30, 6);
        let mut twin = roundtrip(&s);
        assert_eq!(s.spec(), twin.spec(), "{name}: spec diverged");
        assert_eq!(s.sample(), twin.sample(), "{name}: draw diverged");
    }
}

#[test]
fn polynomial_sampler_roundtrips_with_identical_draw() {
    let poly = Polynomial::new(vec![(1.0, 2.0), (2.0, 3.0)]);
    let params = PolynomialParams::for_universe(16, poly);
    let mut s = PolynomialSampler::new(16, params, 29);
    feed(&mut s, 16, 30, 7);
    let mut twin = roundtrip(&s);
    assert_eq!(s.sample(), twin.sample());
}

#[test]
fn custom_g_closure_refuses_to_encode() {
    let custom = RejectionGSampler::new(16, std::sync::Arc::new(|z| z.abs().min(3.0)), 3.0, 4, 1);
    assert_eq!(custom.spec(), GSpec::Custom);
    match custom.to_wire_bytes() {
        Err(WireError::Unsupported(_)) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
