//! The cluster acceptance pins, against **real loopback servers**:
//!
//! * **Sampling law** — draws served by a 2-node (and 3-node) cluster fit
//!   the ideal single-engine law `G(x_i)/Σ_j G(x_j)` by chi-squared: the
//!   coordinator's node-pick ∝ exact-mass stage composed with each node's
//!   own two-stage draw must be indistinguishable from one engine over
//!   the whole stream.
//! * **Failover identity** — checkpoint a node, kill its server, bring up
//!   a replacement, `rejoin` from the checkpoint: the recovered cluster
//!   serves **draw-for-draw** the same samples as an uninterrupted
//!   control cluster driven through the identical call sequence.
//! * **Rebalance mid-stream** — migrating a slice to a standby between
//!   two halves of a stream preserves the sampling law over the final
//!   vector.
//! * **Tenant migration identity** — checkpoint one tenant on one node,
//!   shed it there, restore it onto a *different* node: that tenant (and
//!   every other namespace) continues draw-for-draw identical to an
//!   uninterrupted control cluster.

use pts_cluster::{ClusterConfig, ClusterError, Coordinator, NodeHealth};
use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory, LpLe2Factory, SamplerFactory};
use pts_server::{serve, serve_with_spawner, ClientConfig, Server};
use pts_stream::{FrequencyVector, Update};
use pts_util::stats::chi_square_test;
use pts_util::{Decode, Encode};
use std::time::Duration;

fn updates_of(x: &FrequencyVector) -> Vec<Update> {
    x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect()
}

/// Spawns `count` loopback servers over `factory`, seeds `100 + i`.
fn spawn_nodes<F>(universe: usize, count: usize, factory: F) -> Vec<Server>
where
    F: SamplerFactory + Encode + Decode + Send + 'static,
    F::Sampler: Encode + Decode + Send + 'static,
{
    (0..count)
        .map(|i| {
            let engine = ConcurrentEngine::new(
                EngineConfig::new(universe)
                    .shards(2)
                    .pool_size(2)
                    .seed(100 + i as u64),
                factory.clone(),
            );
            serve("127.0.0.1:0", engine).expect("bind loopback node")
        })
        .collect()
}

/// Spawns `count` tenant-capable loopback servers: the default engine is
/// seeded `100 + i` like [`spawn_nodes`], and each server's spawner
/// builds tenant engines over the same universe/factory with a seed
/// that is a pure function of `(i, ns)` — so two clusters spawned this
/// way build bit-identical tenants and can be compared draw for draw.
fn spawn_tenant_nodes<F>(universe: usize, count: usize, factory: F) -> Vec<Server>
where
    F: SamplerFactory + Encode + Decode + Send + Sync + 'static,
    F::Sampler: Encode + Decode + Send + 'static,
{
    (0..count)
        .map(|i| {
            let engine = ConcurrentEngine::new(
                EngineConfig::new(universe)
                    .shards(2)
                    .pool_size(2)
                    .seed(100 + i as u64),
                factory.clone(),
            );
            let tenant_factory = factory.clone();
            serve_with_spawner("127.0.0.1:0", engine, move |ns| {
                ConcurrentEngine::new(
                    EngineConfig::new(universe)
                        .shards(2)
                        .pool_size(2)
                        .seed(100 + i as u64 + 7919 * (ns + 1)),
                    tenant_factory.clone(),
                )
            })
            .expect("bind tenant-capable loopback node")
        })
        .collect()
}

/// A cluster config over the given servers (all active), with real
/// client deadlines so a dead node is detected, not hung on.
fn cluster_over(universe: usize, servers: &[Server], seed: u64) -> ClusterConfig {
    let mut config = ClusterConfig::new(universe).seed(seed).client(
        ClientConfig::new()
            .connect_timeout(Duration::from_secs(5))
            .read_timeout(Duration::from_secs(10))
            .write_timeout(Duration::from_secs(10)),
    );
    for server in servers {
        config = config.node(server.local_addr().to_string());
    }
    config
}

/// Cluster draws over `nodes` real servers fit the ideal law of `x`.
fn law_through_cluster<F>(x: &FrequencyVector, factory: F, nodes: usize, trials: u64, max_fail: f64)
where
    F: SamplerFactory + Encode + Decode + Send + 'static,
    F::Sampler: Encode + Decode + Send + 'static,
{
    let weights: Vec<f64> = x.values().iter().map(|&v| factory.weight(v)).collect();
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

    let servers = spawn_nodes(x.n(), nodes, factory);
    let mut cluster = Coordinator::connect(cluster_over(x.n(), &servers, 42)).expect("connect");
    cluster.ingest_batch(&updates_of(x)).expect("ingest");

    // The exact masses must decompose the global mass across nodes.
    let mass = cluster.mass().expect("mass scatter");
    assert!(
        (mass - total).abs() < 1e-6 * total.max(1.0),
        "mass {mass} vs {total}"
    );

    let mut counts = vec![0u64; x.n()];
    let mut fails = 0u64;
    let mut remaining = trials;
    while remaining > 0 {
        let take = remaining.min(500);
        for draw in cluster.sample_many(take).expect("scatter-gather draw") {
            match draw {
                Some(s) => counts[s.index as usize] += 1,
                None => fails += 1,
            }
        }
        remaining -= take;
    }
    assert!(
        (fails as f64) < trials as f64 * max_fail,
        "fails {fails}/{trials}"
    );
    let chi = chi_square_test(&counts, &probs, 5.0);
    assert!(
        chi.p_value > 1e-4,
        "cluster law off ({nodes} nodes): chi2 {:.2} p {:.6}",
        chi.statistic,
        chi.p_value
    );
    drop(cluster);
    for server in servers {
        server.join();
    }
}

#[test]
fn two_node_cluster_serves_the_l0_law() {
    let mut values = vec![0i64; 24];
    for (k, &i) in [1usize, 4, 7, 11, 13, 17, 20, 23].iter().enumerate() {
        values[i] = if k % 2 == 0 { 1 << k } else { -(3 + k as i64) };
    }
    law_through_cluster(
        &FrequencyVector::from_values(values),
        L0Factory::default(),
        2,
        3_000,
        0.05,
    );
}

#[test]
fn three_node_cluster_serves_the_l2_law() {
    let x = FrequencyVector::from_values(vec![10, -20, 30, 5, 0, 15, -8, 12, 25, -6, 9, 14]);
    let factory = LpLe2Factory::for_universe(x.n(), 2.0);
    law_through_cluster(&x, factory, 3, 1_500, 0.25);
}

#[test]
fn ingest_routes_each_update_to_its_slice_owner() {
    let n = 96;
    let servers = spawn_nodes(n, 3, L0Factory::default());
    let mut cluster = Coordinator::connect(cluster_over(n, &servers, 5)).expect("connect");
    // One update per coordinate: node i must hold exactly its slice.
    let updates: Vec<Update> = (0..n as u64)
        .map(|i| Update::new(i, 1 + i as i64))
        .collect();
    assert_eq!(cluster.ingest_batch(&updates).unwrap(), n as u64);

    let stats = cluster.stats();
    assert!(!stats.degraded());
    assert_eq!(stats.total_support, n as u64);
    for (node, status) in stats.nodes.iter().enumerate() {
        let (lo, hi) = cluster.slice_range(status.slice.expect("all nodes own slices"));
        let service = status.service.as_ref().expect("node is up");
        assert_eq!(
            service.support,
            hi - lo,
            "node {node} holds the wrong slice"
        );
        assert_eq!(service.universe, n as u64);
    }

    // Out-of-universe rejection is atomic: nothing is sent.
    let before = cluster.stats().total_updates;
    let err = cluster
        .ingest_batch(&[Update::new(0, 1), Update::new(n as u64, 1)])
        .unwrap_err();
    assert!(matches!(err, ClusterError::OutOfUniverse { index } if index == n as u64));
    assert_eq!(cluster.stats().total_updates, before);

    drop(cluster);
    for server in servers {
        server.join();
    }
}

/// The acceptance scenario: two identical 3-node clusters driven through
/// the identical call sequence; the subject loses a node and recovers it
/// from a checkpoint, the control never does — and every draw after the
/// recovery point matches draw for draw.
#[test]
fn kill_restore_rejoin_is_draw_for_draw_identical_to_control() {
    let n = 192;
    let factory = LpLe2Factory::for_universe(n, 2.0);
    let x = pts_stream::gen::zipf_vector(n, 1.1, 90, 13);

    let mut subject_servers = spawn_nodes(n, 3, factory);
    let control_servers = spawn_nodes(n, 3, factory);
    let mut subject = Coordinator::connect(cluster_over(n, &subject_servers, 77)).unwrap();
    let mut control = Coordinator::connect(cluster_over(n, &control_servers, 77)).unwrap();

    for cluster in [&mut subject, &mut control] {
        cluster.ingest_batch(&updates_of(&x)).unwrap();
    }
    // Warm-up draws consume pool state on the nodes (the checkpoint must
    // carry *mid-life* sampler state, not a fresh pool).
    assert_eq!(
        subject.sample_many(6).unwrap(),
        control.sample_many(6).unwrap(),
        "same seeds must serve the same draws before any failure"
    );

    // Checkpoint node 1, then kill its server with no intervening ops
    // (join = accept loop and every handler gone, connection closed).
    let checkpoint = subject.checkpoint_node(1).unwrap();
    subject_servers.remove(1).join();

    // The dead node yields a typed error and degraded per-node health.
    let err = subject.sample().unwrap_err();
    assert!(
        matches!(
            err,
            ClusterError::Node { node: 1, .. } | ClusterError::NodeDown { node: 1, .. }
        ),
        "wrong failure: {err}"
    );
    let stats = subject.stats();
    assert!(stats.degraded());
    assert_eq!(stats.nodes[1].health, NodeHealth::Down);
    assert_eq!(stats.nodes[0].health, NodeHealth::Up);

    // Ingest to the dead node's slice is a typed error too; a batch
    // touching only live slices still lands.
    let (lo, _) = cluster_slice_of(&subject, 1);
    assert!(subject
        .ingest_batch(&[Update::new(lo, 1), Update::new(lo, -1)])
        .is_err());

    // A replacement server (blank engine, different seed) + rejoin from
    // the checkpoint.
    let replacement = serve(
        "127.0.0.1:0",
        ConcurrentEngine::new(
            EngineConfig::new(n).shards(2).pool_size(2).seed(9999),
            factory,
        ),
    )
    .unwrap();
    subject
        .rejoin(1, replacement.local_addr().to_string(), &checkpoint)
        .unwrap();
    assert!(!subject.stats().degraded());

    // From here on: identical draws, masses, and ingest across both
    // clusters — the failure is invisible in the sampling record.
    assert_eq!(subject.mass().unwrap(), control.mass().unwrap());
    let churn: Vec<Update> = x
        .iter_nonzero()
        .take(30)
        .map(|(i, v)| Update::new(i, -v.signum()))
        .collect();
    subject.ingest_batch(&churn).unwrap();
    control.ingest_batch(&churn).unwrap();
    let subject_draws = subject.sample_many(40).unwrap();
    let control_draws = control.sample_many(40).unwrap();
    assert_eq!(
        subject_draws, control_draws,
        "recovered cluster diverged from the uninterrupted control"
    );

    drop(subject);
    drop(control);
    replacement.join();
    for server in subject_servers.into_iter().chain(control_servers) {
        server.join();
    }
}

/// The slice range owned by `node` (helper: nodes start 1:1 with slices).
fn cluster_slice_of(cluster: &Coordinator, node: usize) -> (u64, u64) {
    cluster.slice_range(cluster.node_slice(node).expect("node owns a slice"))
}

/// Rebalancing a slice to a standby mid-stream preserves the sampling
/// law over the final vector (and flips ownership/health bookkeeping).
#[test]
fn rebalance_mid_stream_preserves_the_law() {
    let n = 32;
    let factory = L0Factory::default();
    let servers = spawn_nodes(n, 3, factory);
    let mut config = ClusterConfig::new(n).seed(21).client(
        ClientConfig::new()
            .connect_timeout(Duration::from_secs(5))
            .read_timeout(Duration::from_secs(10)),
    );
    // Nodes 0 and 1 active, node 2 standby.
    config = config
        .node(servers[0].local_addr().to_string())
        .node(servers[1].local_addr().to_string())
        .standby(servers[2].local_addr().to_string());
    let mut cluster = Coordinator::connect(config).expect("connect");
    assert_eq!(cluster.slices(), 2);
    assert_eq!(cluster.node_slice(2), None);

    // First half of the stream...
    let x = pts_stream::gen::zipf_vector(n, 1.0, 40, 3);
    let first = updates_of(&x);
    cluster.ingest_batch(&first).unwrap();
    let mass_before = cluster.mass().unwrap();

    // ...migrate node 0's slice onto the standby, mid-stream...
    cluster.rebalance(0, 2).unwrap();
    assert_eq!(cluster.node_slice(0), None, "source drained");
    assert_eq!(cluster.node_slice(2), Some(0), "standby owns the slice");
    assert_eq!(cluster.stats().rebalances, 1);
    assert_eq!(
        cluster.mass().unwrap(),
        mass_before,
        "migration must preserve the exact mass decomposition"
    );

    // Misuse is typed: the drained source cannot receive a second slice
    // owner's state while... actually it *can* now (it is standby); but
    // rebalancing from a standby cannot.
    assert!(matches!(
        cluster.rebalance(0, 1),
        Err(ClusterError::Topology(_))
    ));

    // ...second half, routed under the new ownership.
    let y = pts_stream::gen::zipf_vector(n, 1.0, 40, 4);
    cluster.ingest_batch(&updates_of(&y)).unwrap();
    let z = x.add(&y);

    let weights: Vec<f64> = z.values().iter().map(|&v| factory.weight(v)).collect();
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let trials = 2_500u64;
    let mut counts = vec![0u64; n];
    let mut fails = 0u64;
    for draw in cluster.sample_many(trials).expect("post-rebalance draws") {
        match draw {
            Some(s) => counts[s.index as usize] += 1,
            None => fails += 1,
        }
    }
    assert!((fails as f64) < trials as f64 * 0.05, "fails {fails}");
    let chi = chi_square_test(&counts, &probs, 5.0);
    assert!(
        chi.p_value > 1e-4,
        "post-rebalance law off: chi2 {:.2} p {:.6}",
        chi.statistic,
        chi.p_value
    );

    drop(cluster);
    for server in servers {
        server.join();
    }
}

/// `reconnect` is the lossless revival path: when the *connection*
/// breaks but the server's state survives at the same address, the node
/// comes back with nothing restored and nothing lost.
#[test]
fn reconnect_revives_a_node_without_a_restore() {
    let n = 64;
    let mut servers = spawn_nodes(n, 2, L0Factory::default());
    let mut cluster = Coordinator::connect(cluster_over(n, &servers, 31)).expect("connect");
    let updates: Vec<Update> = (0..n as u64)
        .map(|i| Update::new(i, 1 + i as i64))
        .collect();
    cluster.ingest_batch(&updates).unwrap();
    let mass_before = cluster.mass().unwrap();

    // Preserve node 1's state and address, then kill its server — the
    // closest a test can get to "the connection died, the state did
    // not": an identical server comes back on the *same* address.
    let checkpoint = cluster.checkpoint_node(1).unwrap();
    let addr = cluster.node_addr(1).to_string();
    servers.remove(1).join();
    assert!(cluster.sample().is_err(), "dead node must be detected");
    assert_eq!(cluster.node_health(1), NodeHealth::Down);
    // While down, reconnect fails typed and the node stays down.
    assert!(cluster.reconnect(1).is_err());
    assert_eq!(cluster.node_health(1), NodeHealth::Down);

    // Revive at the same address, state restored out-of-band (operator
    // side) — from the coordinator's perspective the server is simply
    // back, state intact.
    let revived = serve(
        addr.as_str(),
        ConcurrentEngine::new(
            EngineConfig::new(n).shards(2).pool_size(2).seed(101),
            L0Factory::default(),
        ),
    )
    .expect("rebind the freed port");
    let mut direct = pts_server::Client::connect(&addr).unwrap();
    direct.restore(&checkpoint).unwrap();
    drop(direct);

    // reconnect: no restore through the coordinator, nothing lost.
    cluster.reconnect(1).expect("lossless revival");
    assert_eq!(cluster.node_health(1), NodeHealth::Up);
    assert_eq!(cluster.node_slice(1), Some(1), "ownership unchanged");
    assert_eq!(cluster.mass().unwrap(), mass_before, "nothing lost");
    assert!(cluster.sample().unwrap().is_some());

    drop(cluster);
    revived.join();
    for server in servers {
        server.join();
    }
}

/// A burst larger than one `Sample` request may carry
/// (`MAX_SAMPLE_COUNT`) splits into protocol-sized chunks per node
/// instead of dying on a server-side count rejection.
#[test]
fn bursts_beyond_the_protocol_sample_cap_are_chunked() {
    let n = 16;
    let servers = spawn_nodes(n, 1, L0Factory::default());
    let mut cluster = Coordinator::connect(cluster_over(n, &servers, 17)).expect("connect");
    cluster.ingest_batch(&[Update::new(3, 7)]).unwrap();

    let count = pts_util::protocol::MAX_SAMPLE_COUNT + 5;
    let draws = cluster.sample_many(count).expect("chunked burst");
    assert_eq!(draws.len(), count as usize);
    assert!(
        draws.iter().all(|d| matches!(d, Some(s) if s.index == 3)),
        "singleton support must dominate every draw"
    );

    drop(cluster);
    for server in servers {
        server.join();
    }
}

/// `rejoin` must reject a checkpoint from a different universe *after*
/// the restore — the blank replacement passes the connect-time check,
/// so the restored state is what needs validating.
#[test]
fn rejoin_rejects_a_foreign_universe_checkpoint() {
    let n = 128;
    let mut servers = spawn_nodes(n, 1, L0Factory::default());
    let mut cluster = Coordinator::connect(cluster_over(n, &servers, 8)).expect("connect");
    cluster.ingest_batch(&[Update::new(5, 2)]).unwrap();

    // A checkpoint from a universe-64 engine of the same factory type.
    let mut foreign = Vec::new();
    ConcurrentEngine::new(
        EngineConfig::new(64).shards(2).pool_size(2).seed(100),
        L0Factory::default(),
    )
    .checkpoint(&mut foreign)
    .unwrap();

    servers.remove(0).join();
    assert!(cluster.sample().is_err());

    // The replacement serves universe 128 (passes the attach check);
    // the foreign checkpoint would shrink it to 64 — rejected, and the
    // node stays out of the scatter set.
    let replacement = serve(
        "127.0.0.1:0",
        ConcurrentEngine::new(
            EngineConfig::new(n).shards(2).pool_size(2).seed(9),
            L0Factory::default(),
        ),
    )
    .unwrap();
    match cluster.rejoin(0, replacement.local_addr().to_string(), &foreign) {
        Err(ClusterError::UniverseMismatch {
            node: 0,
            got: 64,
            want: 128,
        }) => {}
        other => panic!("wanted a post-restore universe mismatch, got {other:?}"),
    }
    assert_eq!(cluster.node_health(0), NodeHealth::Down);

    drop(cluster);
    replacement.join();
    for server in servers {
        server.join();
    }
}

#[test]
fn universe_mismatch_is_detected_at_connect() {
    let servers = spawn_nodes(64, 1, L0Factory::default());
    let config = ClusterConfig::new(128)
        .node(servers[0].local_addr().to_string())
        .client(ClientConfig::new().read_timeout(Duration::from_secs(5)));
    match Coordinator::connect(config) {
        Err(ClusterError::UniverseMismatch {
            node: 0,
            got: 64,
            want: 128,
        }) => {}
        other => panic!("wanted a universe mismatch, got {other:?}"),
    }
    for server in servers {
        server.join();
    }
}

/// The tenant-granular acceptance scenario: two identical clusters (two
/// owners + a standby each) hosting namespaces 0 and 7. The subject
/// checkpoints tenant 7 on node 0, sheds it there, and restores it onto
/// the standby; the control never does. Tenant 7 *and* namespace 0 then
/// continue draw-for-draw identical to the control, a second tenant
/// migrated with the one-call `migrate_tenant` stays identical too, and
/// the topology guard rails are typed.
#[test]
fn tenant_checkpoint_restore_on_another_node_is_draw_for_draw_identical() {
    let n = 96;
    let factory = LpLe2Factory::for_universe(n, 2.0);

    let tenant_cluster = |servers: &[Server]| {
        let config = ClusterConfig::new(n)
            .seed(55)
            .client(
                ClientConfig::new()
                    .connect_timeout(Duration::from_secs(5))
                    .read_timeout(Duration::from_secs(10)),
            )
            .node(servers[0].local_addr().to_string())
            .node(servers[1].local_addr().to_string())
            .standby(servers[2].local_addr().to_string());
        Coordinator::connect(config).expect("connect")
    };
    let subject_servers = spawn_tenant_nodes(n, 3, factory);
    let control_servers = spawn_tenant_nodes(n, 3, factory);
    let mut subject = tenant_cluster(&subject_servers);
    let mut control = tenant_cluster(&control_servers);

    let base = pts_stream::gen::zipf_vector(n, 1.1, 60, 5);
    let tenant = pts_stream::gen::zipf_vector(n, 1.0, 50, 6);
    for cluster in [&mut subject, &mut control] {
        cluster.create_namespace(7).unwrap();
        cluster.ingest_batch(&updates_of(&base)).unwrap();
        cluster.ingest_batch_ns(7, &updates_of(&tenant)).unwrap();
    }

    // Per-tenant isolation at the mass level: each namespace reports
    // exactly its own stream's mass.
    let tenant_mass: f64 = tenant.values().iter().map(|&v| factory.weight(v)).sum();
    let got = subject.mass_ns(7).unwrap();
    assert!(
        (got - tenant_mass).abs() < 1e-6 * tenant_mass.max(1.0),
        "tenant mass {got} vs {tenant_mass}"
    );
    assert_eq!(got, control.mass_ns(7).unwrap());

    // Warm-up: both namespaces identical across clusters, and pool state
    // is mid-life (the checkpoint must carry it).
    assert_eq!(
        subject.sample_many_ns(7, 6).unwrap(),
        control.sample_many_ns(7, 6).unwrap()
    );
    assert_eq!(
        subject.sample_many(6).unwrap(),
        control.sample_many(6).unwrap()
    );

    // Checkpoint tenant 7's node-0 share, shed it there (server-side —
    // node 0 keeps serving namespace 0), restore onto the standby.
    let bytes = subject.checkpoint_tenant(0, 7).unwrap();
    let mut direct = pts_server::Client::connect(subject.node_addr(0)).unwrap();
    direct.drop_namespace(7).unwrap();
    drop(direct);
    subject.restore_tenant(7, 0, 2, &bytes).unwrap();

    // Tenant 7 now scatters to (standby, node 1); namespace 0 still
    // lives on (0, 1). Under continued churn, every draw matches the
    // uninterrupted control — per tenant.
    let churn: Vec<Update> = tenant
        .iter_nonzero()
        .take(20)
        .map(|(i, v)| Update::new(i, -v.signum()))
        .collect();
    subject.ingest_batch_ns(7, &churn).unwrap();
    control.ingest_batch_ns(7, &churn).unwrap();
    assert_eq!(subject.mass_ns(7).unwrap(), control.mass_ns(7).unwrap());
    assert_eq!(
        subject.sample_many_ns(7, 40).unwrap(),
        control.sample_many_ns(7, 40).unwrap(),
        "restored tenant diverged from the uninterrupted control"
    );
    assert_eq!(
        subject.sample_many(40).unwrap(),
        control.sample_many(40).unwrap(),
        "namespace 0 must be untouched by the tenant migration"
    );

    // The one-call migration (checkpoint → restore → shed) on a second
    // tenant: same identity, counted as a rebalance.
    for cluster in [&mut subject, &mut control] {
        cluster.create_namespace(9).unwrap();
        cluster.ingest_batch_ns(9, &updates_of(&base)).unwrap();
    }
    subject.migrate_tenant(9, 1, 2).unwrap();
    assert_eq!(
        subject.sample_many_ns(9, 24).unwrap(),
        control.sample_many_ns(9, 24).unwrap(),
        "one-call migrated tenant diverged"
    );
    assert_eq!(subject.stats().rebalances, 1);

    // Guard rails: the default tenant is managed via rebalance/rejoin,
    // and a target already hosting the namespace is typed misuse.
    assert!(matches!(
        subject.create_namespace(0),
        Err(ClusterError::Topology(_))
    ));
    assert!(matches!(
        subject.migrate_tenant(0, 0, 2),
        Err(ClusterError::Topology(_))
    ));
    assert!(matches!(
        subject.migrate_tenant(7, 1, 2),
        Err(ClusterError::Topology(_))
    ));

    // Dropping tenant 7 cluster-wide sheds its engines; namespace 0
    // keeps serving, still identical to the control.
    subject.drop_namespace(7).unwrap();
    control.drop_namespace(7).unwrap();
    assert!(
        matches!(subject.sample_ns(7), Err(ClusterError::Node { .. })),
        "a dropped tenant must answer unknown-namespace in-band"
    );
    assert_eq!(
        subject.sample_many(10).unwrap(),
        control.sample_many(10).unwrap()
    );

    drop(subject);
    drop(control);
    for server in subject_servers.into_iter().chain(control_servers) {
        server.join();
    }
}
