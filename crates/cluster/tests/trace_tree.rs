//! The wire v5 distributed-tracing acceptance pin: one traced
//! [`Coordinator::sample_many`] through a **3-node loopback cluster**
//! yields one span tree — coordinator root, scatter/gather children,
//! per-node client submits, and each node's server-side stage spans
//! (queue-wait, lock-wait, engine work, response write) — all under a
//! single trace id, correctly parented across three real sockets.

use pts_cluster::{ClusterConfig, Coordinator};
use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
use pts_obs::SpanRecord;
use pts_server::{serve, ClientConfig, Server};
use pts_stream::Update;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const UNIVERSE: usize = 300;
const NODES: usize = 3;

fn spawn_nodes() -> Vec<Server> {
    (0..NODES)
        .map(|i| {
            let engine = ConcurrentEngine::new(
                EngineConfig::new(UNIVERSE)
                    .shards(2)
                    .pool_size(2)
                    .seed(100 + i as u64),
                L0Factory::default(),
            );
            serve("127.0.0.1:0", engine).expect("bind loopback node")
        })
        .collect()
}

#[test]
fn traced_sample_many_builds_one_tree_across_three_nodes() {
    if !pts_obs::enabled() {
        return; // obs-off: tracing is compiled out, nothing to pin.
    }
    let servers = spawn_nodes();
    let mut config = ClusterConfig::new(UNIVERSE).seed(7).client(
        ClientConfig::new()
            .connect_timeout(Duration::from_secs(5))
            .read_timeout(Duration::from_secs(10))
            .write_timeout(Duration::from_secs(10)),
    );
    for server in &servers {
        config = config.node(server.local_addr().to_string());
    }
    let mut cluster = Coordinator::connect(config).unwrap();

    // Mass on every slice, so the scatter has something to weigh and the
    // gather can land anywhere. All of this is untraced setup.
    let updates: Vec<Update> = (0..UNIVERSE as u64)
        .step_by(3)
        .map(|i| Update::new(i, 2))
        .collect();
    cluster.ingest_batch(&updates).unwrap();
    pts_obs::traces().drain(); // discard anything recorded before the burst

    cluster.set_trace_sampling(1);
    let draws = cluster.sample_many(8).unwrap();
    assert_eq!(draws.len(), 8);

    // The coordinator side alone contributes root + scatter + gather +
    // 3 scatter submits + ≥1 gather submit; each of the ≥4 submits drags
    // 4 server stage spans. Find the root first, then collect its trace.
    // (The root records the moment `sample_many` returns, but collect
    // under a deadline anyway — the drain races nothing else here.)
    let mut swept: Vec<SpanRecord> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    let root = loop {
        swept.extend(pts_obs::traces().drain());
        if let Some(root) = swept.iter().find(|s| s.name == "cluster.sample_many") {
            break root.clone();
        }
        assert!(
            Instant::now() < deadline,
            "traced burst must record a cluster.sample_many root"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(root.parent_span_id, 0, "the burst root parents to nothing");
    assert!(root.detail.contains("count=8"), "{}", root.detail);

    // Top up until the tree is complete: every client.submit observed so
    // far must have dragged all four server stages into the ring. A fixed
    // span-count target would race — the gather submit count depends on
    // where the 8 draws landed, and each server's write-stage span
    // records a hair *after* the response flushes, so the client can
    // resolve (and the root close) before the last stage hits the ring.
    let mut spans: Vec<SpanRecord> = swept
        .into_iter()
        .filter(|s| s.trace_id == root.trace_id)
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        spans.extend(
            pts_obs::traces()
                .drain()
                .into_iter()
                .filter(|s| s.trace_id == root.trace_id),
        );
        let submits = spans.iter().filter(|s| s.name == "client.submit").count();
        let complete = submits > NODES
            && [
                "server.queue_wait",
                "server.lock_wait",
                "server.engine",
                "server.write",
            ]
            .iter()
            .all(|stage| spans.iter().filter(|s| s.name == *stage).count() == submits);
        if complete || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let names: BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    for required in [
        "cluster.sample_many",
        "cluster.scatter",
        "cluster.gather",
        "client.submit",
        "server.queue_wait",
        "server.lock_wait",
        "server.engine",
        "server.write",
    ] {
        assert!(
            names.contains(required),
            "missing span {required}: {names:?}"
        );
    }

    // Every span belongs to the one trace, and the parent edges form the
    // expected tree: scatter/gather under the root, submits under
    // scatter or gather, server stages under a submit.
    let scatter: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == "cluster.scatter")
        .collect();
    let gather: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == "cluster.gather")
        .collect();
    assert_eq!(scatter.len(), 1, "one scatter per burst");
    assert_eq!(gather.len(), 1, "one gather per burst");
    assert_eq!(scatter[0].parent_span_id, root.span_id);
    assert_eq!(gather[0].parent_span_id, root.span_id);

    let submits: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "client.submit").collect();
    assert!(
        submits.len() > NODES,
        "3 scatter submits + ≥1 gather submit, got {}",
        submits.len()
    );
    let fanout: BTreeSet<u64> = [scatter[0].span_id, gather[0].span_id].into();
    let submit_ids: BTreeSet<u64> = submits.iter().map(|s| s.span_id).collect();
    for submit in &submits {
        assert!(
            fanout.contains(&submit.parent_span_id),
            "client.submit must parent to scatter or gather: {submit:?}"
        );
        assert!(
            submit.detail.contains("kind=stats") || submit.detail.contains("kind=sample"),
            "submit spans are tagged with their kind: {}",
            submit.detail
        );
    }
    let scatter_submits = submits
        .iter()
        .filter(|s| s.parent_span_id == scatter[0].span_id)
        .count();
    assert_eq!(
        scatter_submits, NODES,
        "the mass scatter touches every node"
    );

    for stage in &spans {
        assert_eq!(stage.trace_id, root.trace_id, "one trace id everywhere");
        if stage.name.starts_with("server.") {
            assert!(
                submit_ids.contains(&stage.parent_span_id),
                "{} must parent to a client.submit: {stage:?}",
                stage.name
            );
            assert!(
                stage.detail.contains("kind=") && stage.detail.contains("ns=0"),
                "server stages are tagged {{kind, ns}}: {stage:?}"
            );
        }
    }

    // Each traced server-side request contributes all four stages.
    for want in [
        "server.queue_wait",
        "server.lock_wait",
        "server.engine",
        "server.write",
    ] {
        let count = spans.iter().filter(|s| s.name == want).count();
        assert_eq!(
            count,
            submits.len(),
            "every traced request passes through {want}"
        );
    }

    // An untraced burst afterwards adds nothing: sampling is 1-in-N of
    // *coordinator bursts*, and 0 disables.
    cluster.set_trace_sampling(0);
    cluster.sample_many(4).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let stray: Vec<SpanRecord> = pts_obs::traces()
        .drain()
        .into_iter()
        .filter(|s| s.trace_id == root.trace_id || s.name.starts_with("cluster."))
        .collect();
    assert!(stray.is_empty(), "untraced burst leaked spans: {stray:?}");
}
