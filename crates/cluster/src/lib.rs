//! # pts-cluster
//!
//! A multi-node coordinator that turns N [`pts_server`] nodes into **one
//! logical perfect sampler** — the serving tier above the single-node
//! service, with the same law the single engine serves:
//!
//! ```text
//!                    Coordinator
//!        ingest: route by slice │ sample: ① Stats scatter (exact masses)
//!        (one batch per node)   │         ② node pick ∝ mass
//!                               │         ③ Sample fetch from that node
//!          ┌──────────┬─────────┴┬──────────┐
//!        node₀      node₁      node₂     standby
//!      [0, n/3)   [n/3, 2n/3) [2n/3, n)   (empty)
//!      pts-server pts-server  pts-server pts-server
//!        engine     engine      engine    engine
//! ```
//!
//! Because every engine in this stack is a linear sketch, per-node
//! samplers over disjoint universe slices *compose*: drawing a node
//! proportional to its exact `G`-mass and then sampling within it serves
//! the global law `G(x_i)/Σ_j G(x_j)` for any node count — the same
//! two-stage argument [`pts_engine::ShardedEngine::sample`] uses across
//! in-process shards, lifted over sockets (see [`coordinator`] for the
//! derivation, DESIGN.md §10 for the full story).
//!
//! Operational flows exercise every layer below: **rebalance** streams a
//! PR-3 checkpoint from a slice owner into a standby through two
//! lockstep connections, and **failover** marks a dead node down (typed
//! [`ClusterError`]s, per-node health in [`ClusterStats`]) until a
//! restarted server [`Coordinator::rejoin`]s from its last checkpoint —
//! bit-exact, so the recovered cluster serves draw-for-draw the same
//! samples as one that never failed (`tests/cluster_law.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use pts_cluster::{ClusterConfig, Coordinator};
//! use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
//! use pts_server::{serve, ClientConfig};
//! use pts_stream::Update;
//! use std::time::Duration;
//!
//! // Two real loopback nodes (any SamplingService implementor).
//! let engine = |seed| {
//!     ConcurrentEngine::new(
//!         EngineConfig::new(1 << 10).shards(2).pool_size(2).seed(seed),
//!         L0Factory::default(),
//!     )
//! };
//! let a = serve("127.0.0.1:0", engine(1)).unwrap();
//! let b = serve("127.0.0.1:0", engine(2)).unwrap();
//!
//! let mut cluster = Coordinator::connect(
//!     ClusterConfig::new(1 << 10)
//!         .node(a.local_addr().to_string())
//!         .node(b.local_addr().to_string())
//!         .seed(7)
//!         .client(ClientConfig::new().read_timeout(Duration::from_secs(5))),
//! )
//! .unwrap();
//!
//! // One logical sampler: updates route to their owning node, draws
//! // compose the per-node laws into the global one.
//! cluster.ingest_batch(&[Update::new(3, 5), Update::new(900, -2)]).unwrap();
//! let draw = cluster.sample().unwrap().expect("non-zero state samples");
//! assert!(draw.index == 3 || draw.index == 900);
//! let stats = cluster.stats();
//! assert_eq!(stats.total_support, 2);
//! # drop(cluster);
//! # a.join();
//! # b.join();
//! ```
//!
//! See `examples/cluster_demo.rs` for the full arc — 3 nodes → ingest →
//! sample → kill one → restore from checkpoint → identical draws — and
//! experiment `c1` (`reproduce -- c1`) for cluster throughput and sample
//! latency vs node count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library crates never print: diagnostics go through the pts-obs event
// ring (drainable, bounded), metrics through its registry.
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod config;
pub mod coordinator;
mod obs;

pub use config::{ClusterConfig, NodeSpec};
pub use coordinator::{ClusterError, ClusterStats, Coordinator, NodeHealth, NodeStatus};
