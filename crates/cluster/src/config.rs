//! Cluster configuration.

use pts_server::ClientConfig;

/// One node in a [`ClusterConfig`]: an address plus whether the node
/// starts as a slice owner or a standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// The node's `pts-server` address (`host:port`).
    pub addr: String,
    /// Standby nodes own no slice at startup; they exist to receive
    /// rebalanced slices.
    pub standby: bool,
}

/// Configuration for a [`crate::Coordinator`], in the `EngineConfig`
/// builder style.
///
/// The universe `[0, n)` is statically partitioned into one contiguous
/// slice per **active** node, in declaration order: active node `i` of
/// `A` owns `[⌊i·n/A⌋, ⌊(i+1)·n/A⌋)`. Standby nodes own nothing until a
/// [`crate::Coordinator::rebalance`] hands them a slice. Every node must
/// serve an engine built over the *full* universe `n` — slices are a
/// coordinator-side routing concern, which is what lets a checkpoint
/// move between nodes unchanged — and the coordinator verifies this
/// against each node's `Stats` report (wire version 2) at connect time.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Universe size `n`: every update index must lie in `[0, n)`.
    pub universe: usize,
    /// Master seed for the coordinator's node-pick RNG.
    pub seed: u64,
    /// The nodes, in declaration order (slice assignment follows actives).
    pub nodes: Vec<NodeSpec>,
    /// Connection knobs applied to every per-node client. The coordinator
    /// wants real deadlines here — a dead node should become a typed
    /// error, not a hang (see [`crate::ClusterError`]).
    pub client: ClientConfig,
}

impl ClusterConfig {
    /// A config over universe `[0, n)` with no nodes yet and no client
    /// deadlines.
    pub fn new(universe: usize) -> Self {
        Self {
            universe,
            seed: 0,
            nodes: Vec::new(),
            client: ClientConfig::default(),
        }
    }

    /// Appends an active node (owns the next slice of the partition).
    pub fn node(mut self, addr: impl Into<String>) -> Self {
        self.nodes.push(NodeSpec {
            addr: addr.into(),
            standby: false,
        });
        self
    }

    /// Appends a standby node (owns no slice until a rebalance).
    pub fn standby(mut self, addr: impl Into<String>) -> Self {
        self.nodes.push(NodeSpec {
            addr: addr.into(),
            standby: true,
        });
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-node client connection configuration.
    pub fn client(mut self, client: ClientConfig) -> Self {
        self.client = client;
        self
    }

    /// Number of active (slice-owning) nodes.
    pub fn active_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.standby).count()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on a degenerate configuration (universe below 2, no active
    /// node, or more active nodes than universe points).
    pub fn validate(&self) {
        assert!(self.universe >= 2, "universe too small");
        let active = self.active_nodes();
        assert!(active >= 1, "need at least one active node");
        assert!(
            active <= self.universe,
            "more active nodes than universe points"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn builder_chains() {
        let c = ClusterConfig::new(1 << 10)
            .node("a:1")
            .node("b:2")
            .standby("c:3")
            .seed(9)
            .client(ClientConfig::new().read_timeout(Duration::from_secs(2)));
        assert_eq!(c.universe, 1 << 10);
        assert_eq!(c.nodes.len(), 3);
        assert_eq!(c.active_nodes(), 2);
        assert!(c.nodes[2].standby);
        assert_eq!(c.client.read_timeout, Some(Duration::from_secs(2)));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one active node")]
    fn standby_only_cluster_rejected() {
        ClusterConfig::new(16).standby("a:1").validate();
    }
}
