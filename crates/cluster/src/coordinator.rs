//! The coordinator: N `pts-server` nodes behind one engine-shaped surface.
//!
//! ## The distributed two-stage law
//!
//! Every node hosts a full engine over the same universe `[0, n)`; the
//! coordinator routes each update to the node owning its slice, so node
//! `v`'s engine holds exactly the sub-vector `x|slice(v)` and its `Stats`
//! report carries the exact slice mass `M_v = Σ_{i ∈ slice(v)} G(x_i)`.
//! A cluster draw composes two stages, exactly like
//! [`pts_engine::ShardedEngine::sample`] does across in-process shards:
//!
//! ```text
//! Pr[i] = (M_v / Σ_w M_w) · G(x_i) / M_v = G(x_i) / Σ_j G(x_j)
//! ```
//!
//! — scatter a `Stats` query for the masses, pick a node with
//! [`pts_engine::pick_by_mass`] (the *same code* both engine front-ends
//! use for the shard pick), then fetch the draw from that node, whose
//! own two-stage shard draw serves its slice law. Linearity is what
//! makes the composition exact: disjoint slices add, so the per-node
//! masses are the global mass decomposition, for any node count. The ⊥
//! caveat of the engine docs carries over per node (a node's FAIL
//! probability depends on its slice), which is why a cluster draw
//! returns ⊥ honestly rather than re-picking.
//!
//! ## Consistency
//!
//! All coordinator methods take `&mut self`, and since wire v3 the
//! per-node conversations are **pipelined**, not lockstep: a scatter
//! submits every node's request before awaiting any answer (`N · RTT`
//! becomes `~1 · RTT`), and every answer is awaited before the method
//! returns. The serialization story is unchanged: the server processes
//! one connection's requests in submission order and answers a `Stats`
//! only after applying that connection's prior requests, and
//! cross-connection consistency is the server's engine mutex — so the
//! mass scatter of a draw still observes every previously acknowledged
//! ingest. What a cluster does **not** provide is cluster-wide ingest
//! atomicity: each per-node batch applies atomically on its node, but
//! because a pipelined scatter has every sub-batch in flight at once, an
//! ingest that returns an error may leave *any subset of the other
//! nodes* written — the typed [`ClusterError`] tells the caller which
//! node broke so it can rejoin-and-retry (updates are deltas; replaying
//! an *unacknowledged* batch is the caller's idempotence decision).
//!
//! ## Failure model
//!
//! A node that errors at the transport level (I/O, torn frame) is
//! marked **down**; operations that need it return typed errors, and
//! [`Coordinator::stats`] keeps reporting per-node health so an
//! operator can see the degraded topology. Recovery has two paths,
//! matched to what actually failed:
//!
//! * [`Coordinator::reconnect`] — the *connection* failed (network
//!   blip, expired client deadline) but the server survived: re-attach
//!   to the same address, restore nothing, lose nothing.
//! * [`Coordinator::rejoin`] — the *server* died: point the slot at a
//!   restarted server and restore the node's last checkpoint through
//!   the wire. The node rejoins **draw-for-draw identical** —
//!   checkpoints are bit-exact (DESIGN.md S29), so a cluster that lost
//!   and recovered a node serves the same draws as one that never did
//!   (pinned by `tests/cluster_law.rs`).
//!
//! [`Coordinator::rebalance`] is the same checkpoint stream pointed at
//! a live standby instead of a restart.
//!
//! ## Tenancy (wire v4)
//!
//! Since wire v4 every node hosts a *tenant map*, and the coordinator
//! extends the slice partition per tenant: a namespace created through
//! [`Coordinator::create_namespace`] exists on every slice owner, each
//! node holding that tenant's sub-vector over its slice, so the two-stage
//! law above holds per namespace with complete cross-tenant isolation
//! (disjoint engines end to end). Routing is namespace-aware — each
//! tenant starts with the default slice→node assignment and
//! [`Coordinator::migrate_tenant`] (the tenant-granular
//! [`Coordinator::rebalance`]) re-points *one tenant's* slices at a
//! different node by streaming only that tenant's checkpoint, leaving
//! every other namespace where it was. [`Coordinator::checkpoint_tenant`]
//! / [`Coordinator::restore_tenant`] are the matching per-tenant halves
//! of [`Coordinator::checkpoint_node`] / [`Coordinator::rejoin`], so an
//! individual tenant can be shed, persisted, and revived on a different
//! node draw-for-draw identically (pinned by `tests/cluster_law.rs`).

use crate::config::ClusterConfig;
use crate::obs::obs;
use pts_engine::pick_by_mass;
use pts_obs::{event, Span, Stopwatch, Tracer};
use pts_samplers::Sample;
use pts_server::{Client, ClientConfig, ClientError, Pending};
use pts_stream::Update;
use pts_util::protocol::{ServiceStats, TraceContext, DEFAULT_NAMESPACE, MAX_SAMPLE_COUNT};
use pts_util::Xoshiro256pp;
use std::collections::{HashMap, VecDeque};

/// Seed stream tag for the coordinator's node-pick RNG (disjoint from the
/// engine's internal streams by construction — different consumer).
const NODE_PICK_STREAM: u64 = 0xC157;

/// A child span under `trace` (no-op when the operation is untraced).
fn child_span(trace: Option<TraceContext>, name: &'static str) -> Span {
    match trace {
        Some(ctx) => Span::start(ctx.trace_id, ctx.parent_span_id, name),
        None => Span::noop(),
    }
}

/// The context downstream work should parent to: `span`'s own id while it
/// records, `None` when it is a no-op (so untraced stays untraced on the
/// wire).
fn span_ctx(span: &Span) -> Option<TraceContext> {
    span.is_recording().then(|| TraceContext {
        trace_id: span.trace_id(),
        parent_span_id: span.id(),
    })
}

/// Everything a cluster operation can fail with. Transport-level failures
/// mark the node down ([`NodeHealth::Down`]); the error names the node so
/// the caller can [`Coordinator::rejoin`] it.
#[derive(Debug)]
pub enum ClusterError {
    /// Talking to a node failed. Non-recoverable failures (I/O, torn
    /// frames — the connection's demux is dead and every in-flight
    /// request on it is lost) additionally mark the node down; in-band
    /// server errors do not (see [`ClusterError::is_recoverable`]).
    Node {
        /// The node's index in the cluster topology.
        node: usize,
        /// The node's address.
        addr: String,
        /// The underlying client failure.
        source: ClientError,
    },
    /// The operation needed a node that is already marked down.
    NodeDown {
        /// The node's index in the cluster topology.
        node: usize,
        /// The node's address.
        addr: String,
    },
    /// A node serves an engine over the wrong universe — its slice
    /// assignment would be meaningless (detected at connect/rejoin time
    /// from the version-2 `Stats` report).
    UniverseMismatch {
        /// The node's index in the cluster topology.
        node: usize,
        /// The universe the node's engine reports.
        got: u64,
        /// The universe the cluster is configured for.
        want: u64,
    },
    /// An ingested update addresses a coordinate outside the cluster
    /// universe (rejected before anything is sent — cluster batches are
    /// validated atomically like server batches).
    OutOfUniverse {
        /// The offending coordinate.
        index: u64,
    },
    /// A topology operation was misused (bad node index, rebalance from
    /// a node that owns nothing or onto one that is not standby, …).
    Topology(&'static str),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Node { node, addr, source } => {
                write!(f, "node {node} ({addr}) failed: {source}")
            }
            ClusterError::NodeDown { node, addr } => {
                write!(f, "node {node} ({addr}) is down")
            }
            ClusterError::UniverseMismatch { node, got, want } => {
                write!(f, "node {node} serves universe {got}, cluster wants {want}")
            }
            ClusterError::OutOfUniverse { index } => {
                write!(f, "index {index} outside the cluster universe")
            }
            ClusterError::Topology(what) => write!(f, "topology error: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Node { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ClusterError {
    /// Whether the failed operation can be retried on this cluster as-is —
    /// the cluster layer of the stack-wide recoverability contract
    /// ([`pts_util::protocol::FrameError::is_recoverable`] →
    /// [`pts_server::ClientError::is_recoverable`] → here; each layer
    /// derives its answer from the one below instead of re-matching
    /// transport variants).
    ///
    /// * [`ClusterError::Node`] delegates to the client failure: an
    ///   in-band server error is recoverable (the node answered; it is
    ///   still up), a transport failure is not (the node was marked down
    ///   when this error was built — repair it first).
    /// * [`ClusterError::OutOfUniverse`] and [`ClusterError::Topology`]
    ///   are caller mistakes rejected before anything was sent: retry
    ///   with corrected arguments.
    /// * [`ClusterError::NodeDown`] and [`ClusterError::UniverseMismatch`]
    ///   need a topology repair ([`Coordinator::reconnect`] or
    ///   [`Coordinator::rejoin`]) before a retry can succeed.
    pub fn is_recoverable(&self) -> bool {
        match self {
            ClusterError::Node { source, .. } => source.is_recoverable(),
            ClusterError::OutOfUniverse { .. } | ClusterError::Topology(_) => true,
            ClusterError::NodeDown { .. } | ClusterError::UniverseMismatch { .. } => false,
        }
    }
}

/// A node's liveness as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Connected and answering.
    Up,
    /// Marked down after a transport failure (or never reached); needs a
    /// [`Coordinator::rejoin`].
    Down,
}

/// One node's row in a [`ClusterStats`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStatus {
    /// The node's address.
    pub addr: String,
    /// Liveness at report time.
    pub health: NodeHealth,
    /// The slice this node owns (`None` = standby, or drained by a
    /// rebalance).
    pub slice: Option<usize>,
    /// The node's own service report (`None` when down).
    pub service: Option<ServiceStats>,
}

/// A point-in-time view of the whole cluster: per-node health plus the
/// aggregated engine counters of every live slice owner.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-node status, in topology order.
    pub nodes: Vec<NodeStatus>,
    /// Number of slices in the static partition.
    pub slices: usize,
    /// Exact cluster `G`-mass: the sum of live owners' masses.
    pub total_mass: f64,
    /// Updates applied across live owners (as they report them).
    pub total_updates: u64,
    /// Non-zero coordinates across live owners.
    pub total_support: u64,
    /// Successful draws served by the coordinator.
    pub samples: u64,
    /// Coordinator draws that came back ⊥.
    pub fails: u64,
    /// Completed [`Coordinator::rebalance`] migrations.
    pub rebalances: u64,
}

impl ClusterStats {
    /// Whether any slice owner is down — i.e. whether sampling and
    /// full-universe ingest are currently impossible.
    pub fn degraded(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| n.slice.is_some() && n.health == NodeHealth::Down)
    }
}

/// A node slot: its address and (when up) its client connection.
#[derive(Debug)]
struct Node {
    addr: String,
    /// `None` = down.
    client: Option<Client>,
}

/// The multi-node coordinator: one logical always-queryable sampler over
/// N `pts-server` nodes (see the module docs for the law and the failure
/// model).
#[derive(Debug)]
pub struct Coordinator {
    universe: usize,
    /// Slice boundaries: slice `s` covers `[cuts[s], cuts[s+1])`.
    cuts: Vec<u64>,
    /// Which node owns each slice (the default namespace's assignment,
    /// and the starting assignment of every created tenant).
    slice_owner: Vec<usize>,
    /// Per-tenant slice→node overrides for namespaces whose ownership
    /// has diverged from `slice_owner` (created by
    /// [`Coordinator::create_namespace`], re-pointed by
    /// [`Coordinator::migrate_tenant`]).
    tenant_owner: HashMap<u64, Vec<usize>>,
    nodes: Vec<Node>,
    client_config: ClientConfig,
    /// Drives the node pick at query time — the cluster analogue of the
    /// engine's shard-selection RNG.
    rng: Xoshiro256pp,
    /// Reusable per-slice scatter buffers for batched ingest.
    plan: Vec<Vec<Update>>,
    /// Samples whole `sample_many` bursts into distributed traces
    /// (disabled until [`Coordinator::set_trace_sampling`]).
    tracer: Tracer,
    /// The cluster seed, kept so the trace sampler's phase is derived
    /// from the same value as every other seeded stream.
    trace_seed: u64,
    samples: u64,
    fails: u64,
    rebalances: u64,
}

impl Coordinator {
    /// Connects to every configured node and validates that each serves
    /// an engine over the cluster universe (via the version-2 `Stats`
    /// report). Active nodes receive their slices in declaration order.
    ///
    /// # Panics
    /// Panics on a degenerate configuration
    /// ([`ClusterConfig::validate`]).
    pub fn connect(config: ClusterConfig) -> Result<Self, ClusterError> {
        config.validate();
        let active = config.active_nodes();
        let cuts: Vec<u64> = (0..=active)
            .map(|i| ((i as u128 * config.universe as u128) / active as u128) as u64)
            .collect();
        let slice_owner: Vec<usize> = config
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, spec)| !spec.standby)
            .map(|(node, _)| node)
            .collect();
        let mut coordinator = Self {
            universe: config.universe,
            cuts,
            slice_owner,
            tenant_owner: HashMap::new(),
            nodes: config
                .nodes
                .iter()
                .map(|spec| Node {
                    addr: spec.addr.clone(),
                    client: None,
                })
                .collect(),
            client_config: config.client,
            rng: Xoshiro256pp::from_seed_stream(config.seed, NODE_PICK_STREAM),
            plan: (0..active).map(|_| Vec::new()).collect(),
            tracer: Tracer::disabled(),
            trace_seed: config.seed,
            samples: 0,
            fails: 0,
            rebalances: 0,
        };
        for node in 0..coordinator.nodes.len() {
            coordinator.attach(node, None)?;
        }
        Ok(coordinator)
    }

    /// Enables wire v5 distributed tracing for coordinator bursts: one
    /// [`Coordinator::sample_many`] in `every` becomes a trace whose
    /// context rides the scatter to every node, so the whole fan-out —
    /// client submits, per-node server stages, gather — lands in one
    /// span tree. `every = 1` traces every burst, `every = 0` disables
    /// (the default). Deterministic like every other knob here: which
    /// bursts are sampled depends only on the cluster seed and the
    /// burst counter, never on a clock or an RNG.
    pub fn set_trace_sampling(&mut self, every: u64) {
        self.tracer = Tracer::new(self.trace_seed, every);
    }

    /// The cluster universe bound.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of slices in the static partition.
    pub fn slices(&self) -> usize {
        self.cuts.len() - 1
    }

    /// The half-open coordinate range of slice `s`.
    ///
    /// # Panics
    /// Panics if `s` is not a slice index.
    pub fn slice_range(&self, s: usize) -> (u64, u64) {
        (self.cuts[s], self.cuts[s + 1])
    }

    /// The node currently owning the slice that contains `index`.
    ///
    /// # Panics
    /// Panics if `index` is outside the universe.
    pub fn owner_of(&self, index: u64) -> usize {
        assert!(
            (index as u128) < self.universe as u128,
            "index outside universe"
        );
        self.slice_owner[self.slice_of(index)]
    }

    /// The address a node slot currently points at.
    ///
    /// # Panics
    /// Panics if `node` is not a node index.
    pub fn node_addr(&self, node: usize) -> &str {
        &self.nodes[node].addr
    }

    /// A node's current liveness.
    ///
    /// # Panics
    /// Panics if `node` is not a node index.
    pub fn node_health(&self, node: usize) -> NodeHealth {
        if self.nodes[node].client.is_some() {
            NodeHealth::Up
        } else {
            NodeHealth::Down
        }
    }

    /// The slice a node currently owns (`None` = standby or drained).
    ///
    /// # Panics
    /// Panics if `node` is not a node index.
    pub fn node_slice(&self, node: usize) -> Option<usize> {
        self.slice_owner.iter().position(|&owner| owner == node)
    }

    fn slice_of(&self, index: u64) -> usize {
        self.cuts.partition_point(|&c| c <= index) - 1
    }

    /// Connects (or reconnects) a node slot, optionally to a new address,
    /// and verifies its universe.
    fn attach(&mut self, node: usize, new_addr: Option<String>) -> Result<(), ClusterError> {
        if let Some(addr) = new_addr {
            self.nodes[node].addr = addr;
        }
        let addr = self.nodes[node].addr.clone();
        let mut client =
            Client::connect_with(&addr, &self.client_config).map_err(|e| ClusterError::Node {
                node,
                addr: addr.clone(),
                source: ClientError::Io(e),
            })?;
        let stats = client.stats().map_err(|source| ClusterError::Node {
            node,
            addr: addr.clone(),
            source,
        })?;
        if stats.universe != self.universe as u64 {
            return Err(ClusterError::UniverseMismatch {
                node,
                got: stats.universe,
                want: self.universe as u64,
            });
        }
        self.nodes[node].client = Some(client);
        obs().node_up.inc();
        event("cluster.node.up", format!("node {node} ({addr})"));
        Ok(())
    }

    /// Converts a client failure on `node` into a [`ClusterError::Node`],
    /// consuming [`ClientError::is_recoverable`] for the down-mark
    /// decision: a recoverable failure (in-band server error) leaves the
    /// node up, anything else (I/O, torn frame — the connection's demux
    /// is dead) marks it down for [`Coordinator::reconnect`] /
    /// [`Coordinator::rejoin`].
    fn fail_node(&mut self, node: usize, source: ClientError) -> ClusterError {
        let addr = self.nodes[node].addr.clone();
        if !source.is_recoverable() {
            self.nodes[node].client = None;
            obs().node_down.inc();
            event(
                "cluster.node.down",
                format!("node {node} ({addr}): {source}"),
            );
        }
        ClusterError::Node { node, addr, source }
    }

    /// The error for an operation that needed `node` while it is marked
    /// down.
    fn node_down(&self, node: usize) -> ClusterError {
        ClusterError::NodeDown {
            node,
            addr: self.nodes[node].addr.clone(),
        }
    }

    /// Runs one blocking exchange against a node's client; failures go
    /// through [`Coordinator::fail_node`].
    fn with_node<T>(
        &mut self,
        node: usize,
        op: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClusterError> {
        let Some(client) = self.nodes[node].client.as_mut() else {
            return Err(self.node_down(node));
        };
        match op(client) {
            Ok(v) => Ok(v),
            Err(source) => Err(self.fail_node(node, source)),
        }
    }

    /// The slice→node assignment of namespace `ns`: the default
    /// assignment unless a migration re-pointed this tenant.
    fn ns_slice_owner(&self, ns: u64) -> &[usize] {
        self.tenant_owner
            .get(&ns)
            .map(Vec::as_slice)
            .unwrap_or(&self.slice_owner)
    }

    /// The distinct nodes owning `ns`'s slices, in slice order
    /// (deterministic — the draw-for-draw contracts depend on a canonical
    /// scatter order).
    fn owner_nodes(&self, ns: u64) -> Vec<usize> {
        let assignment = self.ns_slice_owner(ns);
        let mut owners: Vec<usize> = Vec::with_capacity(assignment.len());
        for &node in assignment {
            if !owners.contains(&node) {
                owners.push(node);
            }
        }
        owners
    }

    /// Routes a batch of turnstile updates to their owning nodes (one
    /// `IngestBatch` per touched node, preserving in-batch order) and
    /// returns the accepted update count.
    ///
    /// The per-node sub-batches are **pipelined**: every touched node's
    /// `IngestBatch` is submitted before any acknowledgement is awaited,
    /// so the scatter costs ~one round trip instead of one per node. All
    /// acknowledgements are awaited before returning — `Ok(n)` still
    /// means every sub-batch is applied.
    ///
    /// Cluster-level validation is atomic — an out-of-universe index
    /// rejects the whole batch before anything is sent. Cluster-level
    /// *application* is per-node atomic only, and pipelining widens the
    /// mid-scatter failure window: because every sub-batch is in flight
    /// at once, an error return means any subset of the *other* touched
    /// nodes may have applied theirs (see the module docs).
    pub fn ingest_batch(&mut self, batch: &[Update]) -> Result<u64, ClusterError> {
        self.ingest_batch_in(DEFAULT_NAMESPACE, batch)
    }

    /// [`Coordinator::ingest_batch`] addressed to namespace `ns` — same
    /// routing and pipelining, against that tenant's slice owners.
    pub fn ingest_batch_ns(&mut self, ns: u64, batch: &[Update]) -> Result<u64, ClusterError> {
        self.ingest_batch_in(ns, batch)
    }

    fn ingest_batch_in(&mut self, ns: u64, batch: &[Update]) -> Result<u64, ClusterError> {
        if let Some(u) = batch
            .iter()
            .find(|u| (u.index as u128) >= self.universe as u128)
        {
            return Err(ClusterError::OutOfUniverse { index: u.index });
        }
        for run in &mut self.plan {
            run.clear();
        }
        for &u in batch {
            let slice = self.slice_of(u.index);
            self.plan[slice].push(u);
        }
        let owner_of_slice = self.ns_slice_owner(ns).to_vec();
        // Submit every touched node's sub-batch before awaiting any ack.
        let mut sent: Vec<(usize, Pending<u64>)> = Vec::new();
        let mut first_err: Option<ClusterError> = None;
        for (slice, &node) in owner_of_slice.iter().enumerate() {
            if self.plan[slice].is_empty() {
                continue;
            }
            let run = std::mem::take(&mut self.plan[slice]);
            // Two-step match: the submit result must outlive the client
            // borrow before `fail_node` can re-borrow `self`.
            let submitted = self.nodes[node]
                .client
                .as_mut()
                .map(|client| client.submit_ingest_batch_ns(ns, &run));
            self.plan[slice] = run;
            match submitted {
                None => {
                    first_err = Some(self.node_down(node));
                    break;
                }
                Some(Err(source)) => {
                    first_err = Some(self.fail_node(node, source));
                    break;
                }
                Some(Ok(pending)) => sent.push((node, pending)),
            }
        }
        // Await every submitted ack even when a later submit failed: an
        // `Err` return must not leave un-reaped responses racing the next
        // operation's accounting.
        let mut accepted = 0u64;
        for (node, pending) in sent {
            match pending.wait() {
                Ok(n) => accepted += n,
                Err(source) => {
                    let err = self.fail_node(node, source);
                    first_err.get_or_insert(err);
                }
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        obs().ingest_accepted.add(accepted);
        Ok(accepted)
    }

    /// The exact cluster `G`-mass `Σ_j G(x_j)`: a `Stats` scatter over
    /// the slice owners, summed.
    pub fn mass(&mut self) -> Result<f64, ClusterError> {
        Ok(self.scatter_masses(DEFAULT_NAMESPACE)?.2)
    }

    /// [`Coordinator::mass`] for namespace `ns` — that tenant's exact
    /// cluster-wide `G`-mass.
    pub fn mass_ns(&mut self, ns: u64) -> Result<f64, ClusterError> {
        Ok(self.scatter_masses(ns)?.2)
    }

    /// Scatters a `Stats` query to every slice owner; returns the owners,
    /// their exact masses (owner order), and the total.
    ///
    /// The scatter is **pipelined**: every owner's `Stats` is submitted
    /// before any answer is awaited, so wall-clock cost is ~one round
    /// trip regardless of owner count (the `m1` bench's scatter row
    /// measures exactly this path).
    fn scatter_masses(&mut self, ns: u64) -> Result<(Vec<usize>, Vec<f64>, f64), ClusterError> {
        self.scatter_masses_traced(ns, None)
    }

    /// [`Coordinator::scatter_masses`] under a trace: when `trace` is set
    /// the scatter gets a `cluster.scatter` span and every per-node
    /// `Stats` submit carries that span's context, so each node's stage
    /// spans parent to the scatter in the burst's tree.
    fn scatter_masses_traced(
        &mut self,
        ns: u64,
        trace: Option<TraceContext>,
    ) -> Result<(Vec<usize>, Vec<f64>, f64), ClusterError> {
        let sw = Stopwatch::start();
        let scatter_span = child_span(trace, "cluster.scatter");
        let ctx = span_ctx(&scatter_span);
        let owners = self.owner_nodes(ns);
        let mut pend: Vec<Pending<ServiceStats>> = Vec::with_capacity(owners.len());
        for &node in &owners {
            let submitted = self.nodes[node]
                .client
                .as_mut()
                .map(|client| client.submit_stats_ns_traced(ns, ctx));
            match submitted {
                None => return Err(self.node_down(node)),
                Some(Err(source)) => return Err(self.fail_node(node, source)),
                Some(Ok(pending)) => pend.push(pending),
            }
        }
        let mut masses = Vec::with_capacity(owners.len());
        let mut total = 0.0;
        for (&node, pending) in owners.iter().zip(pend) {
            let stats = pending.wait().map_err(|s| self.fail_node(node, s))?;
            masses.push(stats.mass);
            total += stats.mass;
        }
        drop(scatter_span);
        obs().scatter_ns.observe_elapsed(sw);
        Ok((owners, masses, total))
    }

    /// Draws one sample from the cluster-wide law `G(x_i)/Σ_j G(x_j)`
    /// (`None` is the paper's ⊥, an honest outcome — see the module
    /// docs).
    pub fn sample(&mut self) -> Result<Option<Sample>, ClusterError> {
        Ok(self.sample_many(1)?.pop().flatten())
    }

    /// [`Coordinator::sample`] from namespace `ns`'s own law.
    pub fn sample_ns(&mut self, ns: u64) -> Result<Option<Sample>, ClusterError> {
        Ok(self.sample_many_ns(ns, 1)?.pop().flatten())
    }

    /// Draws `count` samples: one mass scatter, `count` node picks, then
    /// one batched `Sample` fetch per picked node (split into
    /// protocol-sized requests as needed), reassembled in draw order.
    ///
    /// The node picks all use the scatter's mass snapshot — for a burst
    /// this is the cluster analogue of the engine's consistent-mass
    /// two-stage draw, and it keeps the per-draw round-trip cost at one
    /// scatter per *burst* rather than per draw.
    ///
    /// An error burst delivers nothing and **consumes no coordinator
    /// randomness**: a failure at the scatter stage happens before any
    /// pick, and a mid-fetch failure (a picked node died between
    /// answering `Stats` and its `Sample` fetch) rolls the node-pick RNG
    /// back to its pre-burst state. A node that was already dead when
    /// the burst started always fails at scatter time — so recover-and-
    /// retry stays draw-for-draw identical to a never-failed cluster.
    /// The one side effect a *mid-fetch* failure cannot undo is draws
    /// already consumed from other nodes' pools: those cost pool
    /// instances (which respawn; the law is unaffected), and only exact
    /// draw-for-draw identity with an uninterrupted control is lost in
    /// that narrow window.
    pub fn sample_many(&mut self, count: u64) -> Result<Vec<Option<Sample>>, ClusterError> {
        self.sample_many_in(DEFAULT_NAMESPACE, count)
    }

    /// [`Coordinator::sample_many`] from namespace `ns`'s own law — the
    /// scatter, picks, and fetches all address that tenant's engines, so
    /// tenants sample independently (no shared state, and the node-pick
    /// RNG is only consumed by delivered bursts, whichever tenant they
    /// serve).
    pub fn sample_many_ns(
        &mut self,
        ns: u64,
        count: u64,
    ) -> Result<Vec<Option<Sample>>, ClusterError> {
        self.sample_many_in(ns, count)
    }

    fn sample_many_in(&mut self, ns: u64, count: u64) -> Result<Vec<Option<Sample>>, ClusterError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        // The burst's root span: sampled deterministically, the whole
        // fan-out (scatter + per-node stages + gather) parents under it.
        let mut root = match self.tracer.sample() {
            Some(trace_id) => Span::start(trace_id, 0, "cluster.sample_many"),
            None => Span::noop(),
        };
        if root.is_recording() {
            root.tag(format!("ns={ns} count={count}"));
        }
        let trace = span_ctx(&root);
        let (owners, masses, total) = self.scatter_masses_traced(ns, trace)?;
        if total <= 0.0 {
            // The zero vector: ⊥ without consuming RNG, like the engine.
            return Ok(vec![None; count as usize]);
        }
        let rng_before = self.rng.state();
        let picks: Vec<usize> = (0..count)
            .map(|_| pick_by_mass(&mut self.rng, &masses, total))
            .collect();
        let mut per_owner = vec![0u64; owners.len()];
        for &p in &picks {
            per_owner[p] += 1;
        }
        let sw = Stopwatch::start();
        let gather_span = child_span(trace, "cluster.gather");
        let gather_ctx = span_ctx(&gather_span);
        // Submit every node's fetch — chunked into MAX_SAMPLE_COUNT-sized
        // requests, since a coordinator burst may exceed what one Sample
        // request is allowed to carry — before awaiting any draw, so the
        // gather costs ~one round trip regardless of how many nodes were
        // picked. The server answers one connection's requests in
        // submission order, so a node's chunks come back in chunk order.
        let mut in_flight: Vec<Vec<Pending<Vec<Option<Sample>>>>> =
            Vec::with_capacity(owners.len());
        let mut fetch_err: Option<ClusterError> = None;
        'submit: for (o, &node) in owners.iter().enumerate() {
            let mut chunks = Vec::new();
            let mut remaining = per_owner[o];
            while remaining > 0 {
                let take = remaining.min(MAX_SAMPLE_COUNT);
                let submitted = self.nodes[node]
                    .client
                    .as_mut()
                    .map(|client| client.submit_sample_many_ns_traced(ns, take, gather_ctx));
                match submitted {
                    None => {
                        fetch_err = Some(self.node_down(node));
                        break 'submit;
                    }
                    Some(Err(source)) => {
                        fetch_err = Some(self.fail_node(node, source));
                        break 'submit;
                    }
                    Some(Ok(pending)) => chunks.push(pending),
                }
                remaining -= take;
            }
            in_flight.push(chunks);
        }
        let mut fetched: Vec<VecDeque<Option<Sample>>> = Vec::with_capacity(owners.len());
        if fetch_err.is_none() {
            'wait: for (&node, chunks) in owners.iter().zip(in_flight) {
                let mut draws = VecDeque::new();
                for pending in chunks {
                    match pending.wait() {
                        Ok(batch) => draws.extend(batch),
                        Err(source) => {
                            fetch_err = Some(self.fail_node(node, source));
                            break 'wait;
                        }
                    }
                }
                fetched.push(draws);
            }
        }
        if let Some(err) = fetch_err {
            // Un-consume the burst's picks (see the doc comment); draws
            // already fetched from other nodes are discarded — an error
            // burst delivers nothing. Unawaited chunks resolve into the
            // demux's stray buffer and are dropped there.
            self.rng = Xoshiro256pp::from_state(rng_before);
            return Err(err);
        }
        // Picks are counted only for delivered bursts: a rolled-back burst
        // repeats its picks on retry, and double counting would skew the
        // observed node-pick distribution.
        drop(gather_span);
        obs().gather_ns.observe_elapsed(sw);
        for (o, &node) in owners.iter().enumerate() {
            if per_owner[o] > 0 {
                obs().node_pick(node, per_owner[o]);
            }
        }
        let draws: Vec<Option<Sample>> = picks
            .iter()
            .map(|&p| {
                fetched[p]
                    .pop_front()
                    .expect("node returned fewer draws than requested")
            })
            .collect();
        for draw in &draws {
            match draw {
                Some(_) => self.samples += 1,
                None => self.fails += 1,
            }
        }
        Ok(draws)
    }

    /// A full cluster report: per-node health and service stats plus
    /// aggregates over the live slice owners. Never fails — a node that
    /// cannot answer is reported down (and marked so), which is the
    /// point of the report.
    pub fn stats(&mut self) -> ClusterStats {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut total_mass = 0.0;
        let mut total_updates = 0;
        let mut total_support = 0;
        for node in 0..self.nodes.len() {
            let slice = self.node_slice(node);
            let service = self.with_node(node, |client| client.stats()).ok();
            if let (Some(s), Some(_)) = (&service, slice) {
                total_mass += s.mass;
                total_updates += s.updates;
                total_support += s.support;
            }
            nodes.push(NodeStatus {
                addr: self.nodes[node].addr.clone(),
                health: self.node_health(node),
                slice,
                service,
            });
        }
        ClusterStats {
            nodes,
            slices: self.slices(),
            total_mass,
            total_updates,
            total_support,
            samples: self.samples,
            fails: self.fails,
            rebalances: self.rebalances,
        }
    }

    /// Pulls a node's complete engine checkpoint over the wire — the
    /// bytes an operator persists so a crashed node can
    /// [`Coordinator::rejoin`] identically.
    pub fn checkpoint_node(&mut self, node: usize) -> Result<Vec<u8>, ClusterError> {
        self.check_node_index(node)?;
        self.with_node(node, |client| client.checkpoint())
    }

    /// Creates namespace `ns` on every slice owner (pipelined scatter),
    /// so the tenant exists cluster-wide with the default slice→node
    /// assignment. Every node builds the tenant's engine through its own
    /// spawner — the nodes must be serving with one
    /// ([`pts_server::serve_with_spawner`]).
    ///
    /// On error, the subset of owners that already acknowledged keeps the
    /// namespace (each node's create is atomic, the scatter is not); the
    /// error names the node that broke so the caller can repair and
    /// retry or [`Coordinator::drop_namespace`] the partial tenant.
    pub fn create_namespace(&mut self, ns: u64) -> Result<(), ClusterError> {
        if ns == DEFAULT_NAMESPACE {
            return Err(ClusterError::Topology("namespace 0 always exists"));
        }
        let owners = self.owner_nodes(DEFAULT_NAMESPACE);
        let mut pend: Vec<Pending<()>> = Vec::with_capacity(owners.len());
        for &node in &owners {
            let submitted = self.nodes[node]
                .client
                .as_mut()
                .map(|client| client.submit_create_namespace(ns));
            match submitted {
                None => return Err(self.node_down(node)),
                Some(Err(source)) => return Err(self.fail_node(node, source)),
                Some(Ok(pending)) => pend.push(pending),
            }
        }
        let mut first_err: Option<ClusterError> = None;
        for (&node, pending) in owners.iter().zip(pend) {
            if let Err(source) = pending.wait() {
                let err = self.fail_node(node, source);
                first_err.get_or_insert(err);
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        self.tenant_owner.insert(ns, self.slice_owner.clone());
        event(
            "cluster.tenant.create",
            format!("namespace {ns} on {} owner(s)", owners.len()),
        );
        Ok(())
    }

    /// Drops namespace `ns` from every node currently hosting it
    /// (pipelined scatter), releasing the tenant's engines cluster-wide.
    /// Like [`Coordinator::create_namespace`], the scatter is per-node
    /// atomic only: on error some nodes may have dropped their share
    /// while others kept theirs — retry after repairing the named node.
    pub fn drop_namespace(&mut self, ns: u64) -> Result<(), ClusterError> {
        if ns == DEFAULT_NAMESPACE {
            return Err(ClusterError::Topology("namespace 0 cannot be dropped"));
        }
        let owners = self.owner_nodes(ns);
        let mut pend: Vec<Pending<()>> = Vec::with_capacity(owners.len());
        for &node in &owners {
            let submitted = self.nodes[node]
                .client
                .as_mut()
                .map(|client| client.submit_drop_namespace(ns));
            match submitted {
                None => return Err(self.node_down(node)),
                Some(Err(source)) => return Err(self.fail_node(node, source)),
                Some(Ok(pending)) => pend.push(pending),
            }
        }
        let mut first_err: Option<ClusterError> = None;
        for (&node, pending) in owners.iter().zip(pend) {
            if let Err(source) = pending.wait() {
                let err = self.fail_node(node, source);
                first_err.get_or_insert(err);
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        self.tenant_owner.remove(&ns);
        event("cluster.tenant.drop", format!("namespace {ns}"));
        Ok(())
    }

    /// Pulls one tenant's checkpoint from one node — the bytes covering
    /// exactly `ns`'s sub-vector over `node`'s slices, which is what
    /// makes shedding and reviving an individual tenant possible without
    /// touching its neighbors.
    pub fn checkpoint_tenant(&mut self, node: usize, ns: u64) -> Result<Vec<u8>, ClusterError> {
        self.check_node_index(node)?;
        self.with_node(node, |client| client.checkpoint_ns(ns))
    }

    /// Revives namespace `ns`'s `from`-owned slices on node `to` from a
    /// checkpoint previously pulled via [`Coordinator::checkpoint_tenant`]
    /// — the per-tenant half of [`Coordinator::rejoin`]: `from` itself is
    /// never contacted (it may be dead; that is the point), only `ns`'s
    /// ownership is re-pointed, so every other namespace stays where it
    /// was. The tenant continues draw-for-draw identical on its new node
    /// (S29 bit-exactness, per tenant, through the wire).
    pub fn restore_tenant(
        &mut self,
        ns: u64,
        from: usize,
        to: usize,
        checkpoint: &[u8],
    ) -> Result<(), ClusterError> {
        if ns == DEFAULT_NAMESPACE {
            return Err(ClusterError::Topology(
                "restore the default tenant via rejoin",
            ));
        }
        self.check_node_index(from)?;
        self.check_node_index(to)?;
        if from == to {
            return Err(ClusterError::Topology("restore onto the same node"));
        }
        if !self.ns_slice_owner(ns).contains(&from) {
            return Err(ClusterError::Topology(
                "restore source owns none of this tenant's slices",
            ));
        }
        if self.ns_slice_owner(ns).contains(&to) {
            return Err(ClusterError::Topology(
                "restore target already hosts this tenant",
            ));
        }
        self.with_node(to, |client| client.create_namespace(ns))?;
        let restored = self.with_node(to, |client| client.restore_ns(ns, checkpoint));
        if restored.is_err() {
            // A tenant that accepted the create but not the checkpoint is
            // blank — letting it own slices would corrupt the law. Shed
            // it (best-effort: the node may just have died).
            let _ = self.with_node(to, |client| client.drop_namespace(ns));
            return restored;
        }
        // Universe re-validation, exactly like rejoin: the restore
        // replaced the tenant's engine wholesale.
        let stats = self.with_node(to, |client| client.stats_ns(ns))?;
        if stats.universe != self.universe as u64 {
            let _ = self.with_node(to, |client| client.drop_namespace(ns));
            return Err(ClusterError::UniverseMismatch {
                node: to,
                got: stats.universe,
                want: self.universe as u64,
            });
        }
        let assignment = self
            .tenant_owner
            .entry(ns)
            .or_insert_with(|| self.slice_owner.clone());
        for owner in assignment.iter_mut() {
            if *owner == from {
                *owner = to;
            }
        }
        event(
            "cluster.tenant.restore",
            format!(
                "namespace {ns} slices {from} -> {to}, {} checkpoint bytes",
                checkpoint.len()
            ),
        );
        Ok(())
    }

    /// Migrates one tenant's `from`-owned slices to node `to` — the
    /// tenant-granular [`Coordinator::rebalance`]: checkpoint `ns` on
    /// `from`, create-and-restore it on `to`, drop `from`'s now-stale
    /// copy, and flip only `ns`'s ownership. `from` keeps serving every
    /// other namespace; `to` may be a standby or an active owner of other
    /// tenants — it just must not host `ns` yet. The tenant's law is
    /// preserved exactly (pinned by `tests/cluster_law.rs`).
    pub fn migrate_tenant(&mut self, ns: u64, from: usize, to: usize) -> Result<(), ClusterError> {
        if ns == DEFAULT_NAMESPACE {
            return Err(ClusterError::Topology(
                "migrate the default tenant with rebalance",
            ));
        }
        let sw = Stopwatch::start();
        let checkpoint = self.checkpoint_tenant(from, ns)?;
        self.restore_tenant(ns, from, to, &checkpoint)?;
        // Shed the stale copy. A failure here leaves `from` hosting a
        // no-longer-routed copy of `ns` — harmless to the law (nothing
        // routes there), retryable once the node is repaired.
        self.with_node(from, |client| client.drop_namespace(ns))?;
        self.rebalances += 1;
        let o = obs();
        o.rebalance_bytes.add(checkpoint.len() as u64);
        o.rebalance_ns.observe_elapsed(sw);
        event(
            "cluster.tenant.migrate",
            format!(
                "namespace {ns} slices {from} -> {to}, {} checkpoint bytes",
                checkpoint.len()
            ),
        );
        Ok(())
    }

    /// Migrates `from`'s slice to the standby node `to` by streaming a
    /// checkpoint through the coordinator: `Checkpoint` on `from`,
    /// `Restore` on `to`, then ownership flips. Because a node's engine
    /// holds exactly its slice's sub-vector and every engine spans the
    /// full universe, the checkpoint needs no rewriting — the sampling
    /// law is preserved *exactly* across the migration (pinned by the
    /// rebalance-mid-stream test).
    ///
    /// `from` keeps its (now stale) state but leaves the scatter set; it
    /// becomes a standby eligible to receive a future rebalance.
    pub fn rebalance(&mut self, from: usize, to: usize) -> Result<(), ClusterError> {
        self.check_node_index(from)?;
        self.check_node_index(to)?;
        if from == to {
            return Err(ClusterError::Topology("rebalance onto the same node"));
        }
        if self.node_slice(from).is_none() {
            return Err(ClusterError::Topology("rebalance source owns no slice"));
        }
        if self.node_slice(to).is_some() {
            return Err(ClusterError::Topology("rebalance target is not standby"));
        }
        let sw = Stopwatch::start();
        let checkpoint = self.with_node(from, |client| client.checkpoint())?;
        self.with_node(to, |client| client.restore(&checkpoint))?;
        for owner in &mut self.slice_owner {
            if *owner == from {
                *owner = to;
            }
        }
        self.rebalances += 1;
        let o = obs();
        o.rebalance_bytes.add(checkpoint.len() as u64);
        o.rebalance_ns.observe_elapsed(sw);
        event(
            "cluster.rebalance",
            format!(
                "slice owner {from} -> {to}, {} checkpoint bytes",
                checkpoint.len()
            ),
        );
        Ok(())
    }

    /// Re-establishes the connection to a node marked down, **without**
    /// restoring anything — for transient transport failures (a network
    /// blip, an expired [`pts_server::ClientConfig`] deadline) where the
    /// server process itself survived with its state intact. The node's
    /// universe is re-validated and its slice ownership is unchanged, so
    /// no data is lost: this is the revival path that makes
    /// "rejoin-and-retry" safe after a timeout, where restoring an older
    /// checkpoint via [`Coordinator::rejoin`] would silently roll the
    /// node's slice back.
    pub fn reconnect(&mut self, node: usize) -> Result<(), ClusterError> {
        self.check_node_index(node)?;
        self.attach(node, None)?;
        event(
            "cluster.node.reconnect",
            format!("node {node} ({})", self.nodes[node].addr),
        );
        Ok(())
    }

    /// Revives a node slot after its **server died**: connects to `addr`
    /// (a restarted server — possibly on a new port), restores
    /// `checkpoint` into it through the wire, and puts it back in
    /// rotation with its slice ownership unchanged. With the node's last
    /// pre-failure checkpoint, the cluster continues **draw-for-draw
    /// identical** to one that never lost the node (S29 bit-exactness,
    /// measured through the socket). For a node whose server is still
    /// alive (the connection merely broke), use
    /// [`Coordinator::reconnect`] instead — it loses nothing.
    pub fn rejoin(
        &mut self,
        node: usize,
        addr: impl Into<String>,
        checkpoint: &[u8],
    ) -> Result<(), ClusterError> {
        self.check_node_index(node)?;
        self.attach(node, Some(addr.into()))?;
        let restored = self.with_node(node, |client| client.restore(checkpoint));
        if restored.is_err() {
            // A node that accepted the connection but not the checkpoint
            // is blank — letting it own a slice would corrupt the law.
            self.nodes[node].client = None;
            return restored;
        }
        // The restore replaced the engine wholesale — universe included —
        // so the attach-time validation no longer speaks for it: a
        // checkpoint from a different cluster must not sneak a wrong
        // coordinate space into the scatter set.
        let stats = self.with_node(node, |client| client.stats())?;
        if stats.universe != self.universe as u64 {
            self.nodes[node].client = None;
            return Err(ClusterError::UniverseMismatch {
                node,
                got: stats.universe,
                want: self.universe as u64,
            });
        }
        event(
            "cluster.node.rejoin",
            format!(
                "node {node} ({}) restored {} checkpoint bytes",
                self.nodes[node].addr,
                checkpoint.len()
            ),
        );
        Ok(())
    }

    fn check_node_index(&self, node: usize) -> Result<(), ClusterError> {
        if node < self.nodes.len() {
            Ok(())
        } else {
            Err(ClusterError::Topology("no such node"))
        }
    }
}
