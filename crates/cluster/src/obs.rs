//! Coordinator instrumentation: pre-registered `pts-obs` handles.
//!
//! Scatter/gather latency is split so an operator can see where a slow
//! burst spends its time (mass collection vs draw fetches). The node-pick
//! distribution uses a static label table — label values must be
//! `&'static str`, so picks beyond the table's range aggregate into an
//! overflow series rather than allocating. Metric names are inventoried
//! in DESIGN.md §11.

use pts_obs::{registry, Counter, Histogram};
use std::sync::OnceLock;

/// Pre-interned node labels for `cluster.node_pick`; clusters larger than
/// the table share the overflow series.
const NODE_LABELS: [&str; 16] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];
const NODE_OVERFLOW: &str = "16+";

/// The coordinator's metric handles.
#[derive(Debug)]
pub(crate) struct CoordObs {
    /// `cluster.scatter.ns` — mass-scatter (Stats fan-out) latency.
    pub scatter_ns: Histogram,
    /// `cluster.gather.ns` — draw-fetch (Sample fan-in) latency.
    pub gather_ns: Histogram,
    /// `cluster.ingest.accepted` — updates accepted across nodes.
    pub ingest_accepted: Counter,
    /// `cluster.node_pick{node=…}` — how often each node wins the
    /// mass-weighted pick (the observable law, first stage).
    node_picks: Vec<Counter>,
    node_picks_overflow: Counter,
    /// `cluster.node.transitions{to=…}` — health flips as the
    /// coordinator observes them.
    pub node_up: Counter,
    pub node_down: Counter,
    /// `cluster.rebalance.bytes` — checkpoint bytes streamed through the
    /// coordinator by completed rebalances.
    pub rebalance_bytes: Counter,
    /// `cluster.rebalance.ns` — end-to-end rebalance duration.
    pub rebalance_ns: Histogram,
}

impl CoordObs {
    /// Counts `n` mass-weighted picks of `node` (one call per burst).
    pub fn node_pick(&self, node: usize, n: u64) {
        match self.node_picks.get(node) {
            Some(c) => c.add(n),
            None => self.node_picks_overflow.add(n),
        }
    }
}

/// The process-global coordinator handles.
pub(crate) fn obs() -> &'static CoordObs {
    static OBS: OnceLock<CoordObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = registry();
        CoordObs {
            scatter_ns: r.histogram("cluster.scatter.ns"),
            gather_ns: r.histogram("cluster.gather.ns"),
            ingest_accepted: r.counter("cluster.ingest.accepted"),
            node_picks: NODE_LABELS
                .iter()
                .map(|&label| r.counter_labeled("cluster.node_pick", "node", label))
                .collect(),
            node_picks_overflow: r.counter_labeled("cluster.node_pick", "node", NODE_OVERFLOW),
            node_up: r.counter_labeled("cluster.node.transitions", "to", "up"),
            node_down: r.counter_labeled("cluster.node.transitions", "to", "down"),
            rebalance_bytes: r.counter("cluster.rebalance.bytes"),
            rebalance_ns: r.histogram("cluster.rebalance.ns"),
        }
    })
}
