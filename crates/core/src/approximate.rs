//! **Approximate L_p sampling for `p > 2` with fast update time**
//! (Theorem 1.3 / 3.21; Algorithm 4, §3).
//!
//! The paper's duplication device — `M = n^c` virtual copies of every
//! coordinate, scaled by i.i.d. inverse exponentials — is *simulated*, never
//! materialized:
//!
//! * the **maximum copy** of index `i` is exact via max-stability
//!   (Prop 1.13): `v_i = x_i · rnd_η((M/e_i)^{1/p})` with one keyed
//!   exponential `e_i`;
//! * the **tail copies** (all `M−1` non-maxima) are summarized per index by
//!   binomial counts over the `rnd_η` support grid: conditioned on the
//!   minimum exponential `e_i`, each tail copy's exponential is
//!   `e_i + Exp(1)` (memorylessness), so the count of tail copies rounding
//!   to grid value `I_q` is `Bin(M−1, p_q(e_i))` with a closed-form cell
//!   probability — exactly the fast-update scheme of §3 (Lemma 3.17);
//! * the tail's hit on a CountSketch₂ cell is a keyed Gaussian with
//!   variance `T₂(i)/L` (the CLT collapse of the per-copy Rademacher sum;
//!   `L` = the virtual table width `(nM)^{1−2/p}`), and the 2-stable `L₂`
//!   estimator `R` over the full duplicated vector needs only
//!   `√(T₂(i) + v_scale(i)²)` per update.
//!
//! Stage 1 (`CountSketch₁`, modified hashing) recovers the candidate set
//! `B` of large discretized maxima; stage 2 adds the duplicated-table noise
//! to `B`'s estimates and applies the anti-concentration gap test
//! `y_(1) − y_(2) > factor·R/(μ·(nM)^{1/2−1/p})` (line 16).
//!
//! Decode cost: both stage-1 recovery and the gap test's runner-up scan
//! run over the sampler's *touched-coordinate set* (every index the stream
//! ever addressed), never the full universe — query time is
//! `O(support · rows)` regardless of `n`. A never-touched coordinate is
//! exactly zero in the duplicated vector, so skipping it drops nothing but
//! `O(n)` work and pure sketch-collision noise.

use pts_samplers::{Sample, TurnstileSampler};
use pts_sketch::ams::GAUSSIAN_ABS_MEDIAN;
use pts_sketch::{FpMaxStab, FpMaxStabParams, LinearSketch, ModCountSketch};
use pts_stream::Update;
use pts_util::variates::{binomial, keyed_gaussian, keyed_sign};
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, keyed_u64, EtaGrid, Xoshiro256pp};
use std::collections::{BTreeSet, HashMap};

/// Parameters for [`ApproxLpSampler`].
#[derive(Debug, Clone, Copy)]
pub struct ApproxLpParams {
    /// Moment order `p > 2`.
    pub p: f64,
    /// Target distortion ε.
    pub epsilon: f64,
    /// Duplication exponent `c`: `M = n^c` virtual copies per index.
    pub dup_c: f64,
    /// Rows in both CountSketch stages.
    pub rows: usize,
    /// Stage-1 buckets (`n^{1−2/p} log(1/ε)` shaped).
    pub cs1_buckets: usize,
    /// Materialized width of the stage-2 kept region (`polylog(1/ε)`).
    pub kept_buckets: usize,
    /// Repetitions of the 2-stable `‖u‖₂` estimator.
    pub gauss_reps: usize,
    /// Gap-test strictness (the paper's `100`, tuned for laptop `n`).
    pub threshold_factor: f64,
    /// Stage-1 candidate threshold divisor (the paper's `200 log(1/ε)`).
    pub b_threshold_div: f64,
    /// Constant multiplier on the virtual stage-2 width
    /// `(nM)^{1−2/p}` — the explicit form of the constants hiding in the
    /// paper's `O(n^{1−2/p})` bucket counts. Larger = less duplicated-table
    /// noise; asymptotics unchanged.
    pub width_const: f64,
}

impl ApproxLpParams {
    /// Paper-shaped defaults for universe `n` at distortion `epsilon`.
    ///
    /// # Panics
    /// Panics unless `p > 2` and `0 < ε < 1`.
    pub fn for_universe(n: usize, p: f64, epsilon: f64) -> Self {
        assert!(p > 2.0, "approximate sampler requires p > 2");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        let nf = n.max(4) as f64;
        let log2n = nf.log2();
        let log1e = (1.0 / epsilon).ln().max(1.0);
        Self {
            p,
            epsilon,
            dup_c: 2.0,
            rows: (log2n.ceil() as usize).clamp(5, 9) | 1,
            cs1_buckets: ((8.0 * nf.powf(1.0 - 2.0 / p) * log2n * log1e).ceil() as usize).max(256),
            kept_buckets: ((4.0 * log1e * log1e).ceil() as usize).clamp(12, 64),
            gauss_reps: 15,
            // Tuned on the zipf battery: 1.0 minimizes both TV and max
            // relative bias (0.5 lets noise-level gaps through, ≥2 fails
            // conservatively without improving fidelity) — see the probe
            // tests under crates/core/tests/.
            threshold_factor: 1.0,
            b_threshold_div: (8.0 * log1e).max(8.0),
            width_const: 1024.0,
        }
    }
}

/// Per-index derived constants of the duplication simulation. These are
/// pure functions of `(seed, index)` — the cache trades recomputation time
/// for memory and is *not* part of the sketch state (see DESIGN.md §4:
/// the paper's PRG plays the same role).
#[derive(Debug, Clone, Copy)]
struct IndexConsts {
    /// `rnd_η((M/e_i)^{1/p})` — the discretized max-copy scale.
    v_scale: f64,
    /// `rnd_η((M/(e_i+e'_i))^{1/p})` — the *second*-largest copy's scale
    /// (top-two order statistics of `M` exponentials); competes in the gap
    /// test so that `Pr[FAIL | D(1)=i]` does not depend on `i`
    /// (Lemma 3.10's decoupling, same device as the perfect L₂ sampler).
    second_scale: f64,
    /// `Σ_q I_q² · D_q(i)` over the tail copies.
    t2_tail: f64,
}

/// The approximate L_p sampler (Algorithm 4).
#[derive(Debug, Clone)]
pub struct ApproxLpSampler {
    params: ApproxLpParams,
    universe: usize,
    copies_m: f64,
    /// Width of the *virtual* stage-2 table `(nM)^{1−2/p}` (only the first
    /// `kept_buckets` columns are materialized).
    virtual_width: f64,
    grid: EtaGrid,
    seed: u64,
    cs1: ModCountSketch,
    /// Stage-2 kept region: rows × kept_buckets.
    cs2: Vec<f64>,
    gauss_counters: Vec<f64>,
    fp_est: FpMaxStab,
    mu: f64,
    consts_cache: HashMap<u64, IndexConsts>,
    /// Every coordinate the stream has ever addressed (sorted for
    /// deterministic decode order). Decode scans this set instead of the
    /// whole universe: a never-touched coordinate is exactly zero in the
    /// duplicated vector, so it can neither be a candidate nor the gap
    /// test's true runner-up — scanning its sketch estimate only added
    /// `O(n)` query cost and pure collision noise. Unlike the consts cache
    /// this *is* sketch state (it survives merges), and it is `O(support)`
    /// of the stream, not `O(n)`.
    touched: BTreeSet<u64>,
}

impl ApproxLpSampler {
    /// Builds the sampler over universe `[0, n)`.
    pub fn new(n: usize, params: ApproxLpParams, seed: u64) -> Self {
        assert!(n >= 2, "universe too small");
        let nf = n as f64;
        let copies_m = nf.powf(params.dup_c).max(2.0);
        let virtual_width = (params.width_const * (nf * copies_m).powf(1.0 - 2.0 / params.p))
            .max(params.kept_buckets as f64);
        let eta = (params.epsilon / (nf.log2().sqrt())).clamp(1e-4, 0.25);
        // Dynamic range: (M/e)^{1/p} spans ~M^{1/p} · poly; cover generously.
        let decades = ((copies_m.log10() / params.p).ceil() as u32) + 8;
        let grid = EtaGrid::new(eta, decades);
        let cs1 = ModCountSketch::new(params.rows, params.cs1_buckets, derive_seed(seed, 1));
        let fp_est = FpMaxStab::new(
            n,
            FpMaxStabParams::for_universe(n, params.p),
            derive_seed(seed, 2),
        );
        let mu = 0.5 + (keyed_u64(seed, 0x3B7) as f64 / u64::MAX as f64);
        Self {
            params,
            universe: n,
            copies_m,
            virtual_width,
            grid,
            seed,
            cs1,
            cs2: vec![0.0; params.rows * params.kept_buckets],
            gauss_counters: vec![0.0; params.gauss_reps],
            fp_est,
            mu,
            consts_cache: HashMap::new(),
            touched: BTreeSet::new(),
        }
    }

    /// The simulated duplication count `M = n^c`.
    pub fn copies(&self) -> f64 {
        self.copies_m
    }

    /// The discretization grid in use.
    pub fn grid(&self) -> &EtaGrid {
        &self.grid
    }

    /// Derives (or recalls) the per-index simulation constants.
    fn index_consts(&mut self, i: u64) -> IndexConsts {
        if let Some(&c) = self.consts_cache.get(&i) {
            return c;
        }
        let c = self.derive_index_consts(i);
        self.consts_cache.insert(i, c);
        c
    }

    /// Derives the constants from scratch: one exponential for the max copy
    /// plus one keyed binomial per grid cell for the tail histogram.
    fn derive_index_consts(&self, i: u64) -> IndexConsts {
        let p = self.params.p;
        let m = self.copies_m;
        let e_i = pts_util::variates::keyed_exponential(derive_seed(self.seed, 0xE), i);
        let v_scale = self.grid.round_down((m / e_i).powf(1.0 / p));
        let e_second = pts_util::variates::keyed_exponential(derive_seed(self.seed, 0xE2), i);
        let second_scale = self.grid.round_down((m / (e_i + e_second)).powf(1.0 / p));
        // Tail copies: conditioned on the minimum exponential e_i, every
        // other copy is e_i + Exp(1); its scaled value (M/(e_i+f))^{1/p}
        // rounds to I_q with probability cdf(I_{q+1}) − cdf(I_q) where
        // cdf(t) = Pr[(M/(e_i+f))^{1/p} ≤ t] = min(1, exp(e_i − M·t^{−p})).
        let cdf = |t: f64| (e_i - m * t.powf(-p)).exp().min(1.0);
        let mut rng = Xoshiro256pp::new(derive_seed(derive_seed(self.seed, 0xD9), i));
        let mut t2_tail = 0.0;
        let q_lo = *self.grid.q_range().start();
        let q_hi = *self.grid.q_range().end();
        for q in q_lo..=q_hi {
            let lo = if q == q_lo {
                0.0
            } else {
                cdf(self.grid.value(q))
            };
            let hi = if q == q_hi {
                1.0
            } else {
                cdf(self.grid.value(q + 1))
            };
            let pq = (hi - lo).max(0.0);
            if pq <= 0.0 {
                continue;
            }
            let count = binomial(&mut rng, m - 1.0, pq);
            if count > 0.0 {
                let iq = self.grid.value(q);
                t2_tail += iq * iq * count;
            }
        }
        IndexConsts {
            v_scale,
            second_scale,
            t2_tail,
        }
    }

    /// The stage-2 kept bucket of index `i` in row `r`.
    #[inline]
    fn cs2_bucket(&self, r: usize, i: u64) -> usize {
        (keyed_u64(derive_seed(self.seed, 0xB2 + r as u64), i) % self.params.kept_buckets as u64)
            as usize
    }

    /// The stage-2 Rademacher sign of index `i` in row `r`.
    #[inline]
    fn cs2_sign(&self, r: usize, i: u64) -> f64 {
        keyed_sign(derive_seed(self.seed, 0x512 + r as u64), i) as f64
    }

    /// Reads the stage-2 noise estimate at index `i` (median over rows).
    fn cs2_read(&self, i: u64) -> f64 {
        let mut vals: Vec<f64> = (0..self.params.rows)
            .map(|r| {
                self.cs2_sign(r, i) * self.cs2[r * self.params.kept_buckets + self.cs2_bucket(r, i)]
            })
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals[vals.len() / 2]
    }

    /// The conservative `‖u‖₂` estimate `R` (line 14).
    fn r_estimate(&self) -> f64 {
        let mut mags: Vec<f64> = self.gauss_counters.iter().map(|c| c.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        1.25 * mags[mags.len() / 2] / GAUSSIAN_ABS_MEDIAN
    }

    /// The candidate set `B` (stage-1 indices above the heaviness
    /// threshold), largest first, capped at the kept width. Decodes over
    /// the touched set, so query cost is `O(support · rows)`, independent
    /// of the universe size.
    fn candidate_set(&self) -> Vec<(u64, f64)> {
        let lp_hat = self.fp_est.lp_estimate();
        if lp_hat <= 0.0 {
            return Vec::new();
        }
        let threshold =
            self.copies_m.powf(1.0 / self.params.p) * lp_hat / self.params.b_threshold_div;
        let mut out: Vec<(u64, f64)> = self
            .touched
            .iter()
            .filter_map(|&i| {
                let est = self.cs1.estimate(i)?;
                (est.abs() >= threshold).then_some((i, est))
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out.truncate(self.params.kept_buckets);
        out
    }
}

impl TurnstileSampler for ApproxLpSampler {
    fn process(&mut self, u: Update) {
        if u.delta == 0 {
            return;
        }
        let i = u.index;
        let delta = u.delta as f64;
        self.touched.insert(i);
        let consts = self.index_consts(i);
        // Stage 1: the discretized maximum copy.
        self.cs1.update(i, delta * consts.v_scale);
        // Stage 2: the tail copies' hit on every kept cell collapses to one
        // keyed Gaussian of variance T₂(i)/L per cell (CLT over the
        // independent per-copy Rademacher terms).
        let tail_sd = (consts.t2_tail / self.virtual_width).sqrt();
        if tail_sd > 0.0 {
            let rows = self.params.rows;
            let kept = self.params.kept_buckets;
            for r in 0..rows {
                let row_seed = derive_seed(derive_seed(self.seed, 0x7A11 + r as u64), i);
                for b in 0..kept {
                    let g = keyed_gaussian(row_seed, b as u64);
                    self.cs2[r * kept + b] += delta * g * tail_sd;
                }
            }
        }
        // The 2-stable ‖u‖₂ estimator over *all* copies of i.
        let full_sd = (consts.t2_tail + consts.v_scale * consts.v_scale).sqrt();
        for (k, c) in self.gauss_counters.iter_mut().enumerate() {
            *c += delta * keyed_gaussian(derive_seed(self.seed, 0x6A05 + k as u64), i) * full_sd;
        }
        // The ‖x‖_p estimate for the stage-1 threshold.
        self.fp_est.update(i, delta);
    }

    fn sample(&mut self) -> Option<Sample> {
        let candidates = self.candidate_set();
        if candidates.is_empty() {
            return None; // line 9: B empty → FAIL
        }
        // y = stage-1 estimate + stage-2 duplicated-table noise (lines 10–12).
        let mut ys: Vec<(u64, f64, f64)> = candidates
            .iter()
            .map(|&(i, v_hat)| {
                let y = v_hat + self.cs2_read(i);
                (i, y, v_hat)
            })
            .collect();
        ys.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let (i_star, y1, v1) = ys[0];
        // The runner-up in the gap test is the second max of the *whole*
        // duplicated vector (the paper's y_{D(2)}), not merely of the
        // thresholded set B — when every other coordinate falls below the
        // B-threshold a light winner would otherwise face no competitor and
        // pass unconditionally, biasing the law. Never-touched coordinates
        // are exactly zero in the duplicated vector, so the scan covers the
        // touched set only.
        let y2_distinct = self
            .touched
            .iter()
            .filter(|&&i| i != i_star)
            .filter_map(|&i| self.cs1.estimate(i).map(|v| (v + self.cs2_read(i)).abs()))
            .fold(0.0f64, f64::max);
        // The winner's own second-largest virtual copy also competes: by the
        // top-two order statistics of its M exponentials its value is
        // `|x_i|·second_scale`, i.e. `|y1|·second_scale/v_scale`. Without it
        // the runner-up is always a *different* index and the FAIL event
        // leaks the winner's identity (measured as a ~35% undersampling of
        // light coordinates before this fix — see ablation A1). The copy is
        // read through the same noisy channel as every sketch estimate
        // (keyed Gaussian at the table's noise scale) — an exact reading
        // would re-introduce an identity-dependent measurement asymmetry.
        let winner_consts = self.index_consts(i_star);
        let own_second = y1.abs() * winner_consts.second_scale / winner_consts.v_scale
            + keyed_gaussian(derive_seed(self.seed, 0x2EAD), i_star) * self.cs1.noise_scale();
        let y2 = y2_distinct.max(own_second.abs());
        let r = self.r_estimate();
        // The paper's `100R/(μ N^{1/2−1/p})` with the virtual width spelled
        // out: `N^{1/2−1/p} = √(N^{1−2/p})` is exactly √(CS₂ bucket count).
        let threshold = self.params.threshold_factor * r / (self.mu * self.virtual_width.sqrt());
        if y1.abs() - y2 <= threshold {
            return None; // line 16: insufficient anti-concentration → FAIL
        }
        Some(Sample {
            index: i_star,
            estimate: v1 / winner_consts.v_scale,
        })
    }

    fn space_bits(&self) -> usize {
        // CS1 + kept CS2 region + Gaussian counters + Fp estimator + the
        // touched-coordinate index (64 bits per stream coordinate — the
        // honest price of universe-independent decode) + seeds.
        self.cs1.space_bits()
            + self.cs2.len() * 64
            + self.gauss_counters.len() * 64
            + self.fp_est.space_bits()
            + self.touched.len() * 64
            + 192
    }

    /// Merges a same-seeded shard sampler: every component (stage-1 table,
    /// kept stage-2 region, Gaussian counters, norm estimator) is a linear
    /// accumulator over the stream.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "seed mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.cs1.merge(&other.cs1);
        assert_eq!(self.cs2.len(), other.cs2.len(), "stage-2 shape mismatch");
        for (a, b) in self.cs2.iter_mut().zip(&other.cs2) {
            *a += b;
        }
        assert_eq!(
            self.gauss_counters.len(),
            other.gauss_counters.len(),
            "gaussian counter mismatch"
        );
        for (a, b) in self.gauss_counters.iter_mut().zip(&other.gauss_counters) {
            *a += b;
        }
        self.fp_est.merge(&other.fp_est);
        self.touched.extend(&other.touched);
    }
}

impl Encode for ApproxLpParams {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_f64(self.p);
        w.put_f64(self.epsilon);
        w.put_f64(self.dup_c);
        w.put_usize(self.rows);
        w.put_usize(self.cs1_buckets);
        w.put_usize(self.kept_buckets);
        w.put_usize(self.gauss_reps);
        w.put_f64(self.threshold_factor);
        w.put_f64(self.b_threshold_div);
        w.put_f64(self.width_const);
        Ok(())
    }
}

impl Decode for ApproxLpParams {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = r.get_f64()?;
        let epsilon = r.get_f64()?;
        let dup_c = r.get_f64()?;
        let rows = r.get_usize()?;
        let cs1_buckets = r.get_usize()?;
        let kept_buckets = r.get_usize()?;
        let gauss_reps = r.get_usize()?;
        let threshold_factor = r.get_f64()?;
        let b_threshold_div = r.get_f64()?;
        let width_const = r.get_f64()?;
        let p_ok = p.is_finite() && p > 2.0;
        let eps_ok = epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0;
        let dup_ok = dup_c.is_finite() && (0.0..=8.0).contains(&dup_c);
        let floats_ok =
            threshold_factor.is_finite() && b_threshold_div.is_finite() && width_const.is_finite();
        if !p_ok || !eps_ok || !dup_ok || !floats_ok {
            return Err(WireError::Invalid("approx-lp parameters"));
        }
        let shape_ok = (1..=1024).contains(&rows)
            && (1..=1 << 24).contains(&cs1_buckets)
            && (1..=1 << 16).contains(&kept_buckets)
            && (1..=1 << 16).contains(&gauss_reps);
        if !shape_ok || width_const <= 0.0 {
            return Err(WireError::Invalid("approx-lp shape"));
        }
        Ok(Self {
            p,
            epsilon,
            dup_c,
            rows,
            cs1_buckets,
            kept_buckets,
            gauss_reps,
            threshold_factor,
            b_threshold_div,
            width_const,
        })
    }
}

impl Encode for ApproxLpSampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.params.encode(w)?;
        w.put_usize(self.universe);
        w.put_u64(self.seed);
        w.put_f64(self.mu);
        self.cs1.encode(w)?;
        w.put_f64s(&self.cs2);
        w.put_f64s(&self.gauss_counters);
        self.fp_est.encode(w)?;
        // Touched coordinates, gap-encoded over the sorted set.
        w.put_usize(self.touched.len());
        let mut prev = 0u64;
        for (k, &i) in self.touched.iter().enumerate() {
            w.put_u64(if k == 0 { i } else { i - prev - 1 });
            prev = i;
        }
        Ok(())
    }
}

impl Decode for ApproxLpSampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let params = ApproxLpParams::decode(r)?;
        let universe = r.get_usize()?;
        if !(2..=1 << 40).contains(&universe) {
            return Err(WireError::Invalid("approx-lp universe"));
        }
        let seed = r.get_u64()?;
        let mu = r.get_f64()?;
        let cs1 = ModCountSketch::decode(r)?;
        if cs1.rows() != params.rows || cs1.buckets() != params.cs1_buckets {
            return Err(WireError::Invalid("approx-lp stage-1 shape"));
        }
        let cs2 = r.get_f64s()?;
        if cs2.len() != params.rows * params.kept_buckets {
            return Err(WireError::Invalid("approx-lp stage-2 length"));
        }
        let gauss_counters = r.get_f64s()?;
        if gauss_counters.len() != params.gauss_reps {
            return Err(WireError::Invalid("approx-lp gaussian length"));
        }
        let fp_est = FpMaxStab::decode(r)?;
        let touched_len = r.get_len(1)?;
        let mut touched = BTreeSet::new();
        let mut prev = 0u64;
        for k in 0..touched_len {
            let gap = r.get_u64()?;
            let i = if k == 0 {
                gap
            } else {
                prev.checked_add(gap)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(WireError::Invalid("touched-set gap overflow"))?
            };
            touched.insert(i);
            prev = i;
        }
        // The grid, duplication count, and virtual width are pure functions
        // of (params, universe); rebuild them through the constructor and
        // then overwrite the accumulated state.
        let mut s = Self::new(universe, params, seed);
        s.mu = mu;
        s.cs1 = cs1;
        s.cs2 = cs2;
        s.gauss_counters = gauss_counters;
        s.fp_est = fp_est;
        s.touched = touched;
        // `consts_cache` stays empty: it is a pure-function memo, refilled
        // deterministically on demand.
        Ok(s)
    }
}

/// Success-boosted approximate sampler: `k` independent instances, first
/// non-FAIL wins. Drives the FAIL probability to `Pr[FAIL]^k` (the paper's
/// "at most 0.1" operating point) without touching the conditional law —
/// the gap test's FAIL event is anti-rank-independent by Lemma 3.10.
#[derive(Debug, Clone)]
pub struct ApproxLpBatch {
    instances: Vec<ApproxLpSampler>,
}

impl ApproxLpBatch {
    /// Builds `k` independent instances.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(n: usize, params: ApproxLpParams, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "batch needs at least one instance");
        let instances = (0..k)
            .map(|j| ApproxLpSampler::new(n, params, derive_seed(seed, 0xBA7C + j as u64)))
            .collect();
        Self { instances }
    }
}

impl TurnstileSampler for ApproxLpBatch {
    fn process(&mut self, u: Update) {
        for inst in &mut self.instances {
            inst.process(u);
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        self.instances.iter_mut().find_map(ApproxLpSampler::sample)
    }

    /// Merges instance-wise (both batches must share seed and shape).
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.instances.len(),
            other.instances.len(),
            "batch size mismatch"
        );
        for (a, b) in self.instances.iter_mut().zip(&other.instances) {
            a.merge(b);
        }
    }

    fn space_bits(&self) -> usize {
        self.instances
            .iter()
            .map(TurnstileSampler::space_bits)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::{planted_vector, zipf_vector};
    use pts_stream::{FrequencyVector, Stream, StreamStyle};
    use pts_util::stats::tv_distance;

    fn approx_distribution(
        x: &FrequencyVector,
        p: f64,
        epsilon: f64,
        trials: u64,
        seed0: u64,
    ) -> (Vec<u64>, u64) {
        let n = x.n();
        let params = ApproxLpParams::for_universe(n, p, epsilon);
        let mut counts = vec![0u64; n];
        let mut fails = 0;
        for t in 0..trials {
            let mut s = ApproxLpSampler::new(n, params, seed0 + t * 13);
            s.ingest_vector(x);
            match s.sample() {
                Some(sample) => counts[sample.index as usize] += 1,
                None => fails += 1,
            }
        }
        (counts, fails)
    }

    #[test]
    fn follows_lp_law_within_epsilon() {
        let x = FrequencyVector::from_values(vec![4, -8, 12, 2, 0, 6, -10, 3]);
        let weights = x.lp_weights(3.0);
        let (counts, fails) = approx_distribution(&x, 3.0, 0.3, 3_000, 1);
        let accepted: u64 = counts.iter().sum();
        assert!(
            fails < 3_000 * 6 / 10,
            "FAIL rate too high: {fails}/3000 (accepted {accepted})"
        );
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.12, "tv {tv}");
    }

    #[test]
    fn planted_heavy_wins_overwhelmingly() {
        let x = planted_vector(64, 1, 500, 5, 42);
        let heavy = x.values().iter().position(|v| v.abs() == 500).unwrap() as u64;
        let (counts, fails) = approx_distribution(&x, 4.0, 0.3, 300, 99);
        let accepted: u64 = counts.iter().sum();
        assert!(accepted > 150, "accepted {accepted} fails {fails}");
        let rate = counts[heavy as usize] as f64 / accepted as f64;
        assert!(rate > 0.97, "heavy rate {rate}");
    }

    #[test]
    fn estimate_is_epsilon_accurate_on_heavy() {
        let x = planted_vector(64, 1, 800, 3, 7);
        let params = ApproxLpParams::for_universe(64, 3.0, 0.2);
        let mut ok = 0;
        let mut total = 0;
        for t in 0..100u64 {
            let mut s = ApproxLpBatch::new(64, params, 4, 5_000 + t);
            s.ingest_vector(&x);
            if let Some(sample) = s.sample() {
                total += 1;
                let truth = x.value(sample.index) as f64;
                let rel = (sample.estimate - truth).abs() / truth.abs();
                if rel < 0.35 {
                    ok += 1;
                }
            }
        }
        assert!(total > 50, "total {total}");
        assert!(ok * 10 >= total * 9, "ok {ok}/{total}");
    }

    #[test]
    fn stream_vs_vector_agree() {
        let x = zipf_vector(32, 1.1, 60, 3);
        let mut rng = Xoshiro256pp::new(4);
        let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
        let params = ApproxLpParams::for_universe(32, 3.0, 0.3);
        let mut a = ApproxLpSampler::new(32, params, 5);
        a.ingest_stream(&stream);
        let mut b = ApproxLpSampler::new(32, params, 5);
        b.ingest_vector(&x);
        match (a.sample(), b.sample()) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.index, sb.index);
                assert!((sa.estimate - sb.estimate).abs() < 1e-6_f64.max(sb.estimate.abs() * 1e-9));
            }
            (x, y) => panic!("diverged: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn zero_vector_fails() {
        let params = ApproxLpParams::for_universe(16, 3.0, 0.3);
        let mut s = ApproxLpSampler::new(16, params, 6);
        assert!(s.sample().is_none());
        s.process(Update::new(3, 9));
        s.process(Update::new(3, -9));
        assert!(s.sample().is_none());
    }

    /// The pre-fix dense decode, replicated verbatim as a reference: scan
    /// every universe coordinate for candidates and for the gap test's
    /// runner-up. Used to pin the sparse (touched-set) decode to the dense
    /// scan's output.
    fn dense_sample(s: &mut ApproxLpSampler) -> Option<Sample> {
        let lp_hat = s.fp_est.lp_estimate();
        let candidates: Vec<(u64, f64)> = if lp_hat <= 0.0 {
            Vec::new()
        } else {
            let threshold = s.copies_m.powf(1.0 / s.params.p) * lp_hat / s.params.b_threshold_div;
            let mut out: Vec<(u64, f64)> = (0..s.universe as u64)
                .filter_map(|i| {
                    let est = s.cs1.estimate(i)?;
                    (est.abs() >= threshold).then_some((i, est))
                })
                .collect();
            out.sort_by(|a, b| {
                b.1.abs()
                    .partial_cmp(&a.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            out.truncate(s.params.kept_buckets);
            out
        };
        if candidates.is_empty() {
            return None;
        }
        let mut ys: Vec<(u64, f64, f64)> = candidates
            .iter()
            .map(|&(i, v_hat)| (i, v_hat + s.cs2_read(i), v_hat))
            .collect();
        ys.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let (i_star, y1, v1) = ys[0];
        let y2_distinct = (0..s.universe as u64)
            .filter(|&i| i != i_star)
            .filter_map(|i| s.cs1.estimate(i).map(|v| (v + s.cs2_read(i)).abs()))
            .fold(0.0f64, f64::max);
        let winner_consts = s.index_consts(i_star);
        let own_second = y1.abs() * winner_consts.second_scale / winner_consts.v_scale
            + keyed_gaussian(derive_seed(s.seed, 0x2EAD), i_star) * s.cs1.noise_scale();
        let y2 = y2_distinct.max(own_second.abs());
        let r = s.r_estimate();
        let threshold = s.params.threshold_factor * r / (s.mu * s.virtual_width.sqrt());
        if y1.abs() - y2 <= threshold {
            return None;
        }
        Some(Sample {
            index: i_star,
            estimate: v1 / winner_consts.v_scale,
        })
    }

    #[test]
    fn sparse_decode_matches_dense_scan_on_planted_workload() {
        // Regression for the O(n) decode paths: the touched-set decode must
        // return exactly what the full-universe scan returned, while the
        // candidate scan itself covers support-many coordinates, not n.
        let x = planted_vector(256, 1, 800, 5, 17);
        let params = ApproxLpParams::for_universe(256, 4.0, 0.3);
        let mut agreements = 0;
        for t in 0..30u64 {
            let mut s = ApproxLpSampler::new(512, params, 40_000 + t);
            s.ingest_vector(&x);
            assert_eq!(s.touched.len(), x.f0(), "touched must track the support");
            let sparse = s.sample();
            let dense = dense_sample(&mut s);
            assert_eq!(sparse, dense, "seed {t}: sparse and dense decode diverged");
            if sparse.is_some() {
                agreements += 1;
            }
        }
        assert!(
            agreements > 10,
            "only {agreements}/30 accepted — workload too hard"
        );
    }

    #[test]
    fn merge_unions_touched_sets() {
        let params = ApproxLpParams::for_universe(64, 3.0, 0.3);
        let mut a = ApproxLpSampler::new(64, params, 9);
        let mut b = ApproxLpSampler::new(64, params, 9);
        a.process(Update::new(3, 50));
        b.process(Update::new(40, -20));
        b.process(Update::new(3, 10));
        a.merge(&b);
        assert_eq!(
            a.touched.iter().copied().collect::<Vec<_>>(),
            vec![3, 40],
            "merge must union the touched sets"
        );
        // The merged sampler decodes the coordinate only the shard saw.
        let mut whole = ApproxLpSampler::new(64, params, 9);
        whole.process(Update::new(3, 60));
        whole.process(Update::new(40, -20));
        assert_eq!(
            a.sample(),
            whole.sample(),
            "merge must equal whole-stream state"
        );
    }

    #[test]
    fn index_consts_are_deterministic() {
        let params = ApproxLpParams::for_universe(32, 3.0, 0.3);
        let s = ApproxLpSampler::new(32, params, 7);
        let a = s.derive_index_consts(11);
        let b = s.derive_index_consts(11);
        assert_eq!(a.v_scale, b.v_scale);
        assert_eq!(a.t2_tail, b.t2_tail);
        assert!(a.v_scale > 0.0 && a.t2_tail >= 0.0);
    }

    #[test]
    fn tail_mass_scales_with_copies() {
        // More virtual copies → more tail mass; mean of t2_tail over many
        // indices must grow roughly linearly in M.
        let mk = |dup_c: f64| {
            let mut params = ApproxLpParams::for_universe(32, 4.0, 0.3);
            params.dup_c = dup_c;
            ApproxLpSampler::new(32, params, 8)
        };
        let small = mk(1.0);
        let large = mk(2.0);
        let mean_t2 = |s: &ApproxLpSampler| -> f64 {
            (0..32u64)
                .map(|i| s.derive_index_consts(i).t2_tail)
                .sum::<f64>()
                / 32.0
        };
        let ratio = mean_t2(&large) / mean_t2(&small);
        // M grew 32×; the Γ(1−2/p)-scaled tail mass should track it.
        assert!(ratio > 8.0, "tail mass ratio {ratio}");
    }

    #[test]
    fn batch_reduces_fail_rate() {
        let x = FrequencyVector::from_values(vec![4, -8, 12, 2, 0, 6, -10, 3]);
        let params = ApproxLpParams::for_universe(8, 3.0, 0.3);
        let trials = 300u64;
        let mut single_fails = 0;
        let mut batch_fails = 0;
        for t in 0..trials {
            let mut s = ApproxLpSampler::new(8, params, 60_000 + t);
            s.ingest_vector(&x);
            if s.sample().is_none() {
                single_fails += 1;
            }
            let mut b = ApproxLpBatch::new(8, params, 6, 60_000 + t);
            b.ingest_vector(&x);
            if b.sample().is_none() {
                batch_fails += 1;
            }
        }
        assert!(
            batch_fails as f64 <= trials as f64 / 10.0,
            "batch FAIL {batch_fails}/{trials} must meet the ≤0.1 contract \
             (single: {single_fails})"
        );
    }

    #[test]
    fn space_is_sublinear_in_universe() {
        let params_small = ApproxLpParams::for_universe(256, 4.0, 0.2);
        let params_big = ApproxLpParams::for_universe(4096, 4.0, 0.2);
        let small = ApproxLpSampler::new(256, params_small, 1).space_bits();
        let big = ApproxLpSampler::new(4096, params_big, 1).space_bits();
        // Universe grew 16×; n^{1/2}·log n growth is ≤ ~6×.
        let ratio = big as f64 / small as f64;
        assert!(ratio < 8.0, "ratio {ratio}");
    }
}
