//! **Subset-norm estimation with post-stream query sets** (Theorem 1.6,
//! §5.1, Algorithm 5) — the "right to be forgotten" application.
//!
//! Estimate `‖x_Q‖_p^p = Σ_{i∈Q} |x_i|^p` where the query set `Q` is only
//! revealed *after* the stream (a range query, or the survivors after
//! forget-requests expunge `n∖Q`). Per repetition: draw an L_p sample `i_r`
//! and an independent near-unbiased moment estimate `C_r ≈ F_p`; the
//! estimator `Z = (1/R) Σ_{r: i_r∈Q} C_r` satisfies
//! `E[Z] ≈ ‖x_Q‖_p^p` with `Var ≲ ‖x_Q‖_p^p F_p / R`, so
//! `R = O(1/(αε²))` repetitions give a `(1+ε)`-approximation whenever
//! `‖x_Q‖_p^p ≥ α F_p` — the `1/α` factor better than CountSketch that
//! experiment E9 measures.

use crate::approximate::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_sketch::{FpTaylor, FpTaylorParams, LinearSketch};
use pts_stream::Update;
use pts_util::derive_seed;

/// Parameters for [`SubsetNormEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct SubsetNormParams {
    /// Moment order `p > 2`.
    pub p: f64,
    /// Target relative accuracy ε.
    pub epsilon: f64,
    /// Assumed mass fraction `α ≤ ‖x_Q‖_p^p / F_p` (drives repetitions).
    pub alpha: f64,
    /// Repetition count `R` (defaults to `⌈4/(α ε²)⌉` via `for_universe`).
    pub repetitions: usize,
}

impl SubsetNormParams {
    /// Defaults: `R = ⌈4/(αε²)⌉` repetitions, each an approximate L_p
    /// sampler at distortion `ε/4` (Algorithm 5 line 3).
    ///
    /// # Panics
    /// Panics on out-of-range `p`, `ε` or `α`.
    pub fn for_universe(_n: usize, p: f64, epsilon: f64, alpha: f64) -> Self {
        assert!(p > 2.0, "subset-norm estimation here targets p > 2");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        let repetitions = ((4.0 / (alpha * epsilon * epsilon)).ceil() as usize).clamp(8, 4096);
        Self {
            p,
            epsilon,
            alpha,
            repetitions,
        }
    }
}

/// One repetition: an independent sampler + moment estimator pair.
#[derive(Debug, Clone)]
struct Repetition {
    sampler: ApproxLpSampler,
    moment: FpTaylor,
}

/// The subset-norm estimator (Algorithm 5).
#[derive(Debug, Clone)]
pub struct SubsetNormEstimator {
    params: SubsetNormParams,
    reps: Vec<Repetition>,
}

impl SubsetNormEstimator {
    /// Builds the estimator over universe `[0, n)`.
    pub fn new(n: usize, params: SubsetNormParams, seed: u64) -> Self {
        assert!(params.repetitions >= 1);
        let sampler_params = ApproxLpParams::for_universe(n, params.p, params.epsilon / 4.0);
        let moment_params = FpTaylorParams::for_universe(n, params.p);
        let reps = (0..params.repetitions)
            .map(|r| Repetition {
                sampler: ApproxLpSampler::new(n, sampler_params, derive_seed(seed, 2 * r as u64)),
                moment: FpTaylor::new(n, moment_params, derive_seed(seed, 2 * r as u64 + 1)),
            })
            .collect();
        Self { params, reps }
    }

    /// Processes one turnstile update into every repetition.
    pub fn process(&mut self, u: Update) {
        for rep in &mut self.reps {
            rep.sampler.process(u);
            rep.moment.update(u.index, u.delta as f64);
        }
    }

    /// Answers the post-stream query: a `(1+ε)`-approximation of
    /// `‖x_Q‖_p^p` (Algorithm 5 line 6), assuming `‖x_Q‖_p^p ≥ α F_p`.
    ///
    /// Repetitions whose sampler FAILed contribute zero — with the FAIL
    /// probability bounded and independent of `Q`, this only rescales the
    /// estimate by the measured success rate, which we divide back out.
    pub fn query(&mut self, q: &[u64]) -> f64 {
        let q_set: std::collections::HashSet<u64> = q.iter().copied().collect();
        let mut total = 0.0;
        let mut successes = 0u64;
        for rep in &mut self.reps {
            let Some(sample) = rep.sampler.sample() else {
                continue;
            };
            successes += 1;
            if q_set.contains(&sample.index) {
                total += rep.moment.estimate();
            }
        }
        if successes == 0 {
            return 0.0;
        }
        total / successes as f64
    }

    /// The configured repetition count.
    pub fn repetitions(&self) -> usize {
        self.reps.len()
    }

    /// Total sketch size in bits.
    pub fn space_bits(&self) -> usize {
        self.reps
            .iter()
            .map(|r| r.sampler.space_bits() + r.moment.space_bits())
            .sum()
    }

    /// Ingests a whole frequency vector.
    pub fn ingest_vector(&mut self, x: &pts_stream::FrequencyVector) {
        for (i, v) in x.iter_nonzero() {
            self.process(Update::new(i, v));
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> SubsetNormParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::{rfds_split, zipf_vector};
    use pts_util::stats::{mean, quantile};

    #[test]
    fn full_universe_query_recovers_fp() {
        let x = zipf_vector(64, 1.0, 100, 5);
        let truth = x.fp_moment(3.0);
        let q: Vec<u64> = (0..64u64).collect();
        let errs: Vec<f64> = (0..6u64)
            .map(|t| {
                let mut est = SubsetNormEstimator::new(
                    64,
                    SubsetNormParams {
                        p: 3.0,
                        epsilon: 0.25,
                        alpha: 1.0,
                        repetitions: 64,
                    },
                    1_000 + t,
                );
                est.ingest_vector(&x);
                (est.query(&q) - truth).abs() / truth
            })
            .collect();
        let med = quantile(&errs, 0.5);
        assert!(med < 0.3, "median rel err {med} (errs {errs:?})");
    }

    #[test]
    fn heavy_subset_is_epsilon_accurate() {
        // Q holds the heavy half of a skewed vector: α is large, few reps.
        let x = zipf_vector(64, 1.1, 200, 9);
        let p = 3.0;
        // Heaviest 16 coordinates by |x| form Q.
        let mut idx: Vec<u64> = (0..64u64).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(x.value(i).abs()));
        let q: Vec<u64> = idx[..16].to_vec();
        let truth = x.subset_fp(&q, p);
        let alpha = truth / x.fp_moment(p);
        assert!(alpha > 0.9, "alpha {alpha}");
        let errs: Vec<f64> = (0..6u64)
            .map(|t| {
                let mut est = SubsetNormEstimator::new(
                    64,
                    SubsetNormParams {
                        p,
                        epsilon: 0.25,
                        alpha: 0.9,
                        repetitions: 64,
                    },
                    9_000 + t,
                );
                est.ingest_vector(&x);
                (est.query(&q) - truth).abs() / truth
            })
            .collect();
        assert!(mean(&errs) < 0.3, "mean rel err {} ({errs:?})", mean(&errs));
    }

    #[test]
    fn empty_query_estimates_zero_mass() {
        let x = zipf_vector(32, 1.0, 50, 3);
        let mut est = SubsetNormEstimator::new(
            32,
            SubsetNormParams {
                p: 3.0,
                epsilon: 0.3,
                alpha: 0.5,
                repetitions: 32,
            },
            77,
        );
        est.ingest_vector(&x);
        assert_eq!(est.query(&[]), 0.0);
    }

    #[test]
    fn rfds_forget_workflow() {
        // Forget 75% of entities post-stream; the kept set's moment must be
        // recovered from sketches built before Q was known.
        let x = zipf_vector(64, 0.9, 80, 21);
        let p = 3.0;
        let (kept, _) = rfds_split(64, 0.25, 22);
        let truth = x.subset_fp(&kept, p);
        let alpha = truth / x.fp_moment(p);
        let reps = ((4.0 / (alpha * 0.3 * 0.3)).ceil() as usize).min(256);
        let mut est = SubsetNormEstimator::new(
            64,
            SubsetNormParams {
                p,
                epsilon: 0.3,
                alpha,
                repetitions: reps,
            },
            23,
        );
        est.ingest_vector(&x);
        let got = est.query(&kept);
        let rel = (got - truth).abs() / truth;
        assert!(rel < 0.5, "rel err {rel} (alpha {alpha}, reps {reps})");
    }

    #[test]
    fn params_scale_reps_inversely_with_alpha_eps2() {
        let a = SubsetNormParams::for_universe(64, 3.0, 0.2, 0.5);
        let b = SubsetNormParams::for_universe(64, 3.0, 0.2, 0.25);
        let c = SubsetNormParams::for_universe(64, 3.0, 0.1, 0.5);
        assert_eq!(a.repetitions * 2, b.repetitions);
        assert_eq!(a.repetitions * 4, c.repetitions);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = SubsetNormParams::for_universe(64, 3.0, 0.2, 0.0);
    }
}
