//! **The paper's headline result**: perfect L_p sampling for `p > 2` on
//! turnstile streams (Theorems 1.2 / 2.6 / 2.10; Algorithms 1 and 2).
//!
//! Sampling-and-rejection: draw perfect L₂ samples, then accept a drawn
//! index `j` with probability
//!
//! ```text
//!   F̂₂ / (slack · n^{1−2/p} · F̂_p) · |x̂_j^{p−2}|
//! ```
//!
//! which converts the L₂ law `x_j²/F₂` into the L_p law `|x_j|^p/F_p`. The
//! correction factor is ≤ 1 once `F̂₂`, `F̂_p` are constant-factor
//! approximations (the `n^{1−2/p}` headroom is exactly Hölder's inequality:
//! `x_j^{p−2}F₂/F_p ≤ n^{1−2/p}`), and because the *same* `F̂₂/F̂_p` ratio
//! multiplies every attempt, any approximation error cancels in the
//! conditional output law — it only moves the acceptance rate.
//!
//! `x̂_j^{p−2}` comes from independent CountSketch replicas on the winning
//! L₂ instance's scaled vector (Corollary 2.3: the winner is a heavy hitter
//! there, so the estimates have small relative variance):
//! * integer `p`: the product of `p−2` independent group means
//!   (Algorithm 1) — exactly unbiased for `x_j^{p−2}`;
//! * fractional `p`: the truncated Taylor expansion of `|x|^{p−2}` around
//!   the anchor `y = ` the sampler's own estimate (Algorithm 2 /
//!   Lemma 2.7), with independent estimate groups supplying the
//!   `(x̂^{(a)} − y)` factors.

use pts_samplers::{LpLe2Params, PerfectLpLe2Sampler, Sample, TurnstileSampler};
use pts_sketch::{AmsF2, FpTaylor, FpTaylorParams, LinearSketch};
use pts_stream::Update;
use pts_util::derive_seed;
use pts_util::variates::keyed_unit;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// How `x̂^{p−2}` is estimated in the rejection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerEstimator {
    /// Algorithm 1: product of `p−2` independent estimate-group means
    /// (requires integer `p ≥ 3`).
    IntegerProduct,
    /// Algorithm 2: truncated Taylor expansion with the given number of
    /// terms `Q` (works for every real `p > 2`).
    Taylor {
        /// Number of Taylor terms (`Q = O(log n)` in the paper).
        terms: usize,
    },
}

/// Parameters for [`PerfectLpSampler`].
#[derive(Debug, Clone, Copy)]
pub struct PerfectLpParams {
    /// Moment order `p > 2`.
    pub p: f64,
    /// Number of inner perfect-L₂ attempts (`N = Θ(n^{1−2/p} polylog n)`).
    pub attempts: usize,
    /// Rejection headroom (the `8` of Algorithm 1 line 10); the effective
    /// denominator is `slack · n^{1−2/p}`.
    pub slack: f64,
    /// CountSketch replicas averaged per estimate group (the "polylog(n)
    /// instances" of Algorithm 1 line 8).
    pub reps_per_group: usize,
    /// The `x^{p−2}` estimator variant.
    pub estimator: PowerEstimator,
    /// Inner L₂ sampler configuration.
    pub l2: LpLe2Params,
}

impl PerfectLpParams {
    /// Paper-shaped defaults for universe `n` (integer `p` picks
    /// Algorithm 1's product estimator, fractional `p` the Taylor variant).
    ///
    /// # Panics
    /// Panics unless `p > 2`.
    pub fn for_universe(n: usize, p: f64) -> Self {
        assert!(p > 2.0, "the perfect sampler of Theorem 1.2 requires p > 2");
        let nf = n.max(4) as f64;
        let slack = 4.0;
        let attempts = ((2.0 * slack * nf.powf(1.0 - 2.0 / p) * nf.ln()).ceil() as usize).max(8);
        // The product estimator needs `round(p) − 2 ≥ 1` groups, so it is
        // only valid for integer `p ≥ 3`. Values just above the `p > 2`
        // gate (e.g. `p = 2 + 1e-10`) round to 2 and would yield **zero**
        // estimate groups — a degenerate, always-1 power estimate — so they
        // take the Taylor route like any other non-integer `p`.
        let is_integer = (p - p.round()).abs() < 1e-9 && p.round() >= 3.0;
        let estimator = if is_integer {
            PowerEstimator::IntegerProduct
        } else {
            // Q = O(log n) terms; the anchor is within ~10% of x_j, so the
            // truncation tail decays like 0.1^Q (Lemma 2.7) — 12 terms put
            // it below f64 resolution at any laptop n.
            PowerEstimator::Taylor {
                terms: (nf.log2().ceil() as usize + 2).min(12),
            }
        };
        let reps_per_group = 4;
        let groups = match estimator {
            PowerEstimator::IntegerProduct => (p.round() as usize) - 2,
            PowerEstimator::Taylor { terms } => terms,
        };
        let l2 = LpLe2Params::for_universe(n, 2.0).with_extra_estimators(groups * reps_per_group);
        Self {
            p,
            attempts,
            slack,
            reps_per_group,
            estimator,
            l2,
        }
    }

    /// Number of estimate groups implied by the estimator choice.
    pub fn groups(&self) -> usize {
        match self.estimator {
            PowerEstimator::IntegerProduct => (self.p.round() as usize) - 2,
            PowerEstimator::Taylor { terms } => terms,
        }
    }
}

impl Encode for PowerEstimator {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match *self {
            PowerEstimator::IntegerProduct => w.put_u8(0),
            PowerEstimator::Taylor { terms } => {
                w.put_u8(1);
                w.put_usize(terms);
            }
        }
        Ok(())
    }
}

impl Decode for PowerEstimator {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(PowerEstimator::IntegerProduct),
            1 => {
                let terms = r.get_usize()?;
                if !(1..=64).contains(&terms) {
                    return Err(WireError::Invalid("taylor term count"));
                }
                Ok(PowerEstimator::Taylor { terms })
            }
            _ => Err(WireError::Invalid("power estimator tag")),
        }
    }
}

impl Encode for PerfectLpParams {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_f64(self.p);
        w.put_usize(self.attempts);
        w.put_f64(self.slack);
        w.put_usize(self.reps_per_group);
        self.estimator.encode(w)?;
        self.l2.encode(w)
    }
}

impl Decode for PerfectLpParams {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = r.get_f64()?;
        let attempts = r.get_usize()?;
        let slack = r.get_f64()?;
        let reps_per_group = r.get_usize()?;
        let estimator = PowerEstimator::decode(r)?;
        let l2 = LpLe2Params::decode(r)?;
        // The constructor asserts these invariants; the decode path turns
        // each into an error so malformed payloads cannot reach a panic.
        if !(p.is_finite() && p > 2.0 && slack.is_finite()) {
            return Err(WireError::Invalid("perfect-lp moment order"));
        }
        if !(1..=1 << 24).contains(&attempts) || !(1..=1 << 12).contains(&reps_per_group) {
            return Err(WireError::Invalid("perfect-lp shape"));
        }
        if estimator == PowerEstimator::IntegerProduct
            && !((p - p.round()).abs() < 1e-9 && p.round() >= 3.0)
        {
            return Err(WireError::Invalid("integer estimator with fractional p"));
        }
        let params = Self {
            p,
            attempts,
            slack,
            reps_per_group,
            estimator,
            l2,
        };
        if params.l2.extra_estimators != params.groups() * params.reps_per_group {
            return Err(WireError::Invalid("estimator replica arity"));
        }
        Ok(params)
    }
}

/// Diagnostics of the most recent [`PerfectLpSampler::sample`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RejectionStats {
    /// Inner L₂ attempts that produced a candidate.
    pub candidates: u64,
    /// Candidates whose rejection probability exceeded 1 and was clamped
    /// (each clamp is a potential distortion event; Lemma 2.4 proves they
    /// are `1/poly(n)`-rare under well-calibrated moment estimates).
    pub clamps: u64,
    /// The attempt index that produced the accepted sample, if any.
    pub accepted_at: Option<usize>,
}

/// The perfect L_p sampler for `p > 2` (Algorithms 1 & 2).
#[derive(Debug, Clone)]
pub struct PerfectLpSampler {
    params: PerfectLpParams,
    universe: usize,
    attempts: Vec<PerfectLpLe2Sampler>,
    f2_est: AmsF2,
    fp_est: FpTaylor,
    accept_seed: u64,
    stats: RejectionStats,
}

impl PerfectLpSampler {
    /// Builds the sampler over universe `[0, n)`.
    ///
    /// # Panics
    /// Panics on inconsistent parameters (`p ≤ 2`, no attempts, integer
    /// estimator with fractional `p`).
    pub fn new(n: usize, params: PerfectLpParams, seed: u64) -> Self {
        assert!(params.p > 2.0, "p must exceed 2");
        assert!(params.attempts >= 1, "need at least one attempt");
        if params.estimator == PowerEstimator::IntegerProduct {
            assert!(
                (params.p - params.p.round()).abs() < 1e-9 && params.p.round() >= 3.0,
                "IntegerProduct requires integer p >= 3"
            );
        }
        assert_eq!(
            params.l2.extra_estimators,
            params.groups() * params.reps_per_group,
            "inner L2 sampler must carry groups×reps estimator replicas"
        );
        let attempts = (0..params.attempts)
            .map(|t| PerfectLpLe2Sampler::new(n, params.l2, derive_seed(seed, t as u64)))
            .collect();
        let f2_est = AmsF2::for_2_approx(n, derive_seed(seed, 0xF2E5));
        let fp_est = FpTaylor::new(
            n,
            FpTaylorParams::for_universe(n, params.p),
            derive_seed(seed, 0xF9E5),
        );
        Self {
            params,
            universe: n,
            attempts,
            f2_est,
            fp_est,
            accept_seed: derive_seed(seed, 0xACC3),
            stats: RejectionStats::default(),
        }
    }

    /// Diagnostics of the most recent `sample()` call.
    pub fn stats(&self) -> RejectionStats {
        self.stats
    }

    /// The sketch size this configuration would occupy, computed without
    /// allocating all `attempts` inner samplers (the size is deterministic
    /// in the parameters; used by the space-scaling experiment E2 where the
    /// largest configurations would needlessly allocate gigabytes).
    pub fn projected_space_bits(n: usize, params: PerfectLpParams) -> usize {
        let one_inner = PerfectLpLe2Sampler::new(n, params.l2, 0).space_bits();
        let f2 = AmsF2::for_2_approx(n, 0).space_bits();
        let fp = FpTaylor::new(n, FpTaylorParams::for_universe(n, params.p), 0).space_bits();
        params.attempts * one_inner + f2 + fp + 64
    }

    /// The generalized binomial coefficient `C(a, q)` for real `a`
    /// (the Taylor coefficients of Lemma 2.7; public for the truncation
    /// ablation A2).
    pub fn gen_binom(a: f64, q: usize) -> f64 {
        let mut acc = 1.0;
        for k in 0..q {
            acc *= (a - k as f64) / (k + 1) as f64;
        }
        acc
    }

    /// The truncated Taylor expansion of `x^a` around `y` with `terms`
    /// terms beyond the constant: `Σ_{q=0}^{terms} C(a,q) y^{a−q} (x−y)^q`
    /// (Lemma 2.7's estimator evaluated at exact inputs; the sampler's
    /// rejection step evaluates the same series with independent estimates
    /// in place of the `(x−y)` factors).
    pub fn taylor_power(a: f64, x: f64, y: f64, terms: usize) -> f64 {
        assert!(x > 0.0 && y > 0.0, "taylor_power is defined on positives");
        let mut total = 0.0;
        let mut factor = 1.0;
        for q in 0..=terms {
            total += Self::gen_binom(a, q) * y.powf(a - q as f64) * factor;
            factor *= x - y;
        }
        total
    }

    /// The `|x̂_j|^{p−2}` estimate from the winning attempt's replicas.
    fn power_estimate(&self, attempt: usize, j: u64, anchor: f64) -> f64 {
        let inner = &self.attempts[attempt];
        let reps = self.params.reps_per_group;
        let group_mean = |g: usize| inner.mean_estimate(g * reps, (g + 1) * reps, j);
        match self.params.estimator {
            PowerEstimator::IntegerProduct => {
                // Π over p−2 independent group means: unbiased for x^{p−2}.
                let groups = self.params.groups();
                let mut prod = 1.0;
                for g in 0..groups {
                    prod *= group_mean(g);
                }
                prod.abs()
            }
            PowerEstimator::Taylor { terms } => {
                // Truncated Taylor expansion of |x|^{p−2} around |anchor|,
                // with independent estimates supplying each (x̂ − y) factor
                // (Algorithm 2 line 13). Signs are pinned to the anchor so
                // the expansion runs on magnitudes.
                let a = self.params.p - 2.0;
                let sign = if anchor < 0.0 { -1.0 } else { 1.0 };
                let y = anchor.abs().max(f64::MIN_POSITIVE);
                let mut total = y.powf(a); // q = 0 term
                let mut factor_prod = 1.0;
                for q in 1..=terms {
                    let est = sign * group_mean(q - 1); // ≈ |x_j|
                    factor_prod *= est - y;
                    total += Self::gen_binom(a, q) * y.powf(a - q as f64) * factor_prod;
                }
                total.abs()
            }
        }
    }
}

impl TurnstileSampler for PerfectLpSampler {
    fn process(&mut self, u: Update) {
        if u.delta == 0 {
            return;
        }
        for inner in &mut self.attempts {
            inner.process(u);
        }
        self.f2_est.update(u.index, u.delta as f64);
        self.fp_est.update(u.index, u.delta as f64);
    }

    fn sample(&mut self) -> Option<Sample> {
        self.stats = RejectionStats::default();
        let f2_hat = self.f2_est.estimate().max(0.0);
        let fp_hat = self.fp_est.estimate();
        if fp_hat <= 0.0 || f2_hat <= 0.0 {
            return None;
        }
        // The shared correction base: F̂₂ / (slack · n^{1−2/p} · F̂_p).
        // Being shared across attempts, its error cancels in the output law.
        let base = f2_hat
            / (self.params.slack * (self.universe as f64).powf(1.0 - 2.0 / self.params.p) * fp_hat);
        for t in 0..self.attempts.len() {
            let Some(candidate) = self.attempts[t].sample() else {
                continue;
            };
            self.stats.candidates += 1;
            let power = self.power_estimate(t, candidate.index, candidate.estimate);
            let r = base * power;
            let r_clamped = if r > 1.0 {
                self.stats.clamps += 1;
                1.0
            } else {
                r
            };
            if keyed_unit(self.accept_seed, t as u64) < r_clamped {
                self.stats.accepted_at = Some(t);
                return Some(candidate);
            }
        }
        None
    }

    fn space_bits(&self) -> usize {
        self.attempts
            .iter()
            .map(TurnstileSampler::space_bits)
            .sum::<usize>()
            + self.f2_est.space_bits()
            + self.fp_est.space_bits()
            + 64
    }

    /// Merges a shard sampler built with the same parameters and seed —
    /// every component is a linear sketch, so a fleet of shards aggregates
    /// into exactly the sampler that saw the whole stream (§1.3's
    /// distributed-databases deployment).
    ///
    /// # Panics
    /// Panics if shards were built with different seeds or parameters.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.accept_seed, other.accept_seed, "seed mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        assert_eq!(
            self.attempts.len(),
            other.attempts.len(),
            "attempt mismatch"
        );
        for (a, b) in self.attempts.iter_mut().zip(&other.attempts) {
            a.merge(b);
        }
        self.f2_est.merge(&other.f2_est);
        self.fp_est.merge(&other.fp_est);
    }
}

impl Encode for PerfectLpSampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.params.encode(w)?;
        w.put_usize(self.universe);
        w.put_u64(self.accept_seed);
        for attempt in &self.attempts {
            attempt.encode(w)?;
        }
        self.f2_est.encode(w)?;
        self.fp_est.encode(w)
    }
}

impl Decode for PerfectLpSampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let params = PerfectLpParams::decode(r)?;
        let universe = r.get_usize()?;
        if universe < 2 {
            return Err(WireError::Invalid("perfect-lp universe"));
        }
        let accept_seed = r.get_u64()?;
        // Each inner attempt is ≥ 60 wire bytes; reject attempt counts the
        // input cannot hold before reserving the vector.
        if params.attempts.saturating_mul(60) > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut attempts = Vec::with_capacity(params.attempts);
        for _ in 0..params.attempts {
            attempts.push(PerfectLpLe2Sampler::decode(r)?);
        }
        let f2_est = AmsF2::decode(r)?;
        let fp_est = FpTaylor::decode(r)?;
        Ok(Self {
            params,
            universe,
            attempts,
            f2_est,
            fp_est,
            accept_seed,
            // Last-call diagnostics are transient; `sample()` resets them
            // before reading, so restoring defaults preserves bit-identical
            // behavior going forward.
            stats: RejectionStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::zipf_vector;
    use pts_stream::FrequencyVector;
    use pts_util::stats::tv_distance;

    fn run_distribution(
        x: &FrequencyVector,
        p: f64,
        trials: u64,
        seed0: u64,
    ) -> (Vec<u64>, u64, u64) {
        let n = x.n();
        let params = PerfectLpParams::for_universe(n, p);
        let mut counts = vec![0u64; n];
        let mut fails = 0;
        let mut clamps = 0;
        for t in 0..trials {
            let mut s = PerfectLpSampler::new(n, params, seed0 + t * 7919);
            s.ingest_vector(x);
            match s.sample() {
                Some(sample) => counts[sample.index as usize] += 1,
                None => fails += 1,
            }
            clamps += s.stats().clamps;
        }
        (counts, fails, clamps)
    }

    #[test]
    fn integer_p_law_small_vector() {
        let x = FrequencyVector::from_values(vec![4, -8, 12, 2, 0, 6, -10, 3]);
        let weights = x.lp_weights(3.0);
        let (counts, fails, clamps) = run_distribution(&x, 3.0, 1_200, 1);
        let accepted: u64 = counts.iter().sum();
        assert!(accepted > 900, "accepted {accepted}, fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.06, "tv {tv}");
        assert!(clamps < accepted / 10, "clamps {clamps}");
    }

    #[test]
    fn integer_p4_law() {
        let x = FrequencyVector::from_values(vec![3, 9, -6, 12, 1, 0]);
        let weights = x.lp_weights(4.0);
        let (counts, fails, _) = run_distribution(&x, 4.0, 1_000, 50);
        let accepted: u64 = counts.iter().sum();
        assert!(accepted > 700, "accepted {accepted}, fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.07, "tv {tv}");
    }

    #[test]
    fn fractional_p_law() {
        let x = FrequencyVector::from_values(vec![4, -8, 12, 2, 0, 6, -10, 3]);
        let weights = x.lp_weights(2.5);
        let (counts, fails, _) = run_distribution(&x, 2.5, 1_000, 99);
        let accepted: u64 = counts.iter().sum();
        assert!(accepted > 700, "accepted {accepted}, fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.07, "tv {tv}");
    }

    #[test]
    fn estimates_track_sampled_value() {
        let x = zipf_vector(32, 1.1, 100, 7);
        let params = PerfectLpParams::for_universe(32, 3.0);
        let mut good = 0;
        let mut total = 0;
        for t in 0..60u64 {
            let mut s = PerfectLpSampler::new(32, params, 10_000 + t);
            s.ingest_vector(&x);
            if let Some(sample) = s.sample() {
                total += 1;
                let truth = x.value(sample.index) as f64;
                if (sample.estimate - truth).abs() / truth.abs().max(1.0) < 0.4 {
                    good += 1;
                }
            }
        }
        assert!(total >= 40, "total {total}");
        assert!(good * 10 >= total * 9, "good {good}/{total}");
    }

    #[test]
    fn heavy_coordinate_dominates_for_large_p() {
        // p = 4 on a vector whose top coordinate holds ~97% of F4.
        let x = FrequencyVector::from_values(vec![20, 8, 7, 6, 5, 5, 4, 4]);
        let share = (20f64).powi(4) / x.fp_moment(4.0);
        let (counts, _, _) = run_distribution(&x, 4.0, 400, 321);
        let accepted: u64 = counts.iter().sum();
        let top_rate = counts[0] as f64 / accepted as f64;
        assert!(
            (top_rate - share).abs() < 0.07,
            "top rate {top_rate} vs share {share}"
        );
    }

    #[test]
    fn gen_binom_matches_integer_binomials() {
        assert_eq!(PerfectLpSampler::gen_binom(5.0, 2), 10.0);
        assert_eq!(PerfectLpSampler::gen_binom(5.0, 0), 1.0);
        // C(0.5, 2) = 0.5·(−0.5)/2 = −0.125.
        assert!((PerfectLpSampler::gen_binom(0.5, 2) + 0.125).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_fails() {
        let params = PerfectLpParams::for_universe(8, 3.0);
        let mut s = PerfectLpSampler::new(8, params, 5);
        assert!(s.sample().is_none());
    }

    #[test]
    #[should_panic(expected = "p > 2")]
    fn rejects_small_p() {
        let _ = PerfectLpParams::for_universe(8, 2.0);
    }

    #[test]
    fn p_just_above_two_gets_nondegenerate_taylor_estimator() {
        // Regression: `p = 2 + 1e-10` passes the `p > 2` gate and rounds to
        // an "integer" within the 1e-9 tolerance, but the product estimator
        // would then have `round(p) − 2 = 0` groups — a constant power
        // estimate that silently breaks the rejection step. The boundary
        // must fall back to the Taylor estimator with ≥ 1 group.
        for p in [2.0 + 1e-10, 2.0 + 9e-10] {
            let params = PerfectLpParams::for_universe(64, p);
            assert!(
                matches!(params.estimator, PowerEstimator::Taylor { .. }),
                "p = {p} must take the Taylor route, got {:?}",
                params.estimator
            );
            assert!(params.groups() >= 1, "p = {p}: degenerate group count");
            assert_eq!(
                params.l2.extra_estimators,
                params.groups() * params.reps_per_group
            );
        }
        // True integers stay on Algorithm 1's product estimator.
        let p3 = PerfectLpParams::for_universe(64, 3.0);
        assert_eq!(p3.estimator, PowerEstimator::IntegerProduct);
        assert_eq!(p3.groups(), 1);
        // An integer reached from below (still within rounding tolerance)
        // is an integer: it must both classify as IntegerProduct *and*
        // construct a working sampler.
        let nudged = PerfectLpParams::for_universe(64, 3.0 - 1e-10);
        assert_eq!(nudged.estimator, PowerEstimator::IntegerProduct);
        assert_eq!(nudged.groups(), 1);
        let _ = PerfectLpSampler::new(64, nudged, 1);
    }

    #[test]
    fn p_just_above_two_sampler_works_end_to_end() {
        // The boundary configuration must build and sample; its law is
        // within noise of L2 (p − 2 ≈ 0), so just check it answers sanely.
        let x = FrequencyVector::from_values(vec![4, -8, 12, 0, 6]);
        let params = PerfectLpParams::for_universe(5, 2.0 + 1e-10);
        let mut accepted = 0;
        for t in 0..40u64 {
            let mut s = PerfectLpSampler::new(5, params, 9_000 + t);
            s.ingest_vector(&x);
            if let Some(sample) = s.sample() {
                accepted += 1;
                assert_ne!(sample.index, 3, "zero coordinate sampled");
            }
        }
        assert!(accepted > 10, "accepted {accepted}/40");
    }

    #[test]
    fn shard_merge_matches_whole_stream() {
        let x = zipf_vector(16, 1.0, 40, 31);
        let y = zipf_vector(16, 1.0, 40, 32);
        let params = PerfectLpParams::for_universe(16, 3.0);
        let mut whole = PerfectLpSampler::new(16, params, 55);
        whole.ingest_vector(&x.add(&y));
        let mut a = PerfectLpSampler::new(16, params, 55);
        a.ingest_vector(&x);
        let b = {
            let mut b = PerfectLpSampler::new(16, params, 55);
            b.ingest_vector(&y);
            b
        };
        a.merge(&b);
        match (whole.sample(), a.sample()) {
            (None, None) => {}
            (Some(sa), Some(sb)) => assert_eq!(sa.index, sb.index),
            (sa, sb) => panic!("merge diverged: {sa:?} vs {sb:?}"),
        }
    }

    #[test]
    fn projected_space_matches_actual() {
        let params = PerfectLpParams::for_universe(32, 3.0);
        let actual = PerfectLpSampler::new(32, params, 9).space_bits();
        let projected = PerfectLpSampler::projected_space_bits(32, params);
        assert_eq!(actual, projected);
    }

    #[test]
    fn space_grows_sublinearly_in_universe() {
        // The dominant term is attempts × CS tables; attempts scale as
        // n^{1−2/p} ln n, far below n for p = 3.
        let small = PerfectLpSampler::new(64, PerfectLpParams::for_universe(64, 3.0), 1);
        let big = PerfectLpSampler::new(512, PerfectLpParams::for_universe(512, 3.0), 1);
        let ratio = big.space_bits() as f64 / small.space_bits() as f64;
        // Universe grew 8×; n^{1/3} · ln n · log² n growth stays well below
        // the linear 8× (measured ≈ 8.6 owing to the bucket-rounding steps
        // at small n; the clean exponent fit is experiment E2's job).
        assert!(ratio < 8.0 * 8.0f64.powf(1.0 / 3.0), "space ratio {ratio}");
    }
}
