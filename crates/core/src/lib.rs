//! # pts-core
//!
//! The paper's contributions — *Perfect Sampling in Turnstile Streams
//! Beyond Small Moments* (PODS 2025) — implemented over the substrate
//! crates:
//!
//! | Module | Paper result |
//! |--------|--------------|
//! | [`perfect`] | Perfect L_p sampler, `p > 2` (Thms 1.2/2.6/2.10; Algs 1–2) |
//! | [`polynomial`] | Perfect polynomial sampler (Thm 1.5/2.14; Alg 3) |
//! | [`approximate`] | Approximate L_p sampler with fast update (Thm 1.3/3.21; Alg 4) |
//! | [`subset_norm`] | Post-stream subset-norm estimation / RFDS (Thm 1.6; Alg 5) |
//! | [`gsampler`] | Log / cap / bounded-G samplers (Thms 5.5–5.7; Algs 6–8) |
//! | [`lower_bound`] | The Ω(n^{1−2/p} log n) distinguishing protocol (Thm 1.4/4.3) |
//!
//! All samplers implement `pts_samplers::TurnstileSampler`: feed turnstile
//! updates, then call `sample()` once — `None` is the paper's FAIL symbol ⊥
//! whose probability is part of each theorem's contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod approximate;
pub mod gsampler;
pub mod lower_bound;
pub mod perfect;
pub mod polynomial;
pub mod subset_norm;

pub use approximate::{ApproxLpBatch, ApproxLpParams, ApproxLpSampler};
pub use gsampler::{GSpec, RejectionGSampler};
pub use perfect::{PerfectLpParams, PerfectLpSampler, PowerEstimator};
pub use polynomial::{Polynomial, PolynomialParams, PolynomialSampler};
pub use subset_norm::{SubsetNormEstimator, SubsetNormParams};
