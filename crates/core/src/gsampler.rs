//! Perfect G-samplers for bounded functions (§5.2–5.3; Algorithms 6, 7, 8).
//!
//! The rejection framework of Theorem 5.7: a perfect L₀ sample reveals a
//! uniformly random non-zero coordinate *together with its exact value*
//! `x_i`; accepting it with probability `G(x_i)/H` (for any upper bound
//! `H ≥ max G`) converts the uniform law into the `G(x_i)/Σ_j G(x_j)` law
//! with zero distortion beyond L₀'s own `1/poly(n)`. `O(H/Q)` repetitions
//! guarantee a sample when `G ≥ Q` on the support.
//!
//! Instantiations shipped here:
//! * `log`: `G(z) = log(1+|z|)`, `H = log(1+m)` (Algorithm 6, Theorem 5.5);
//! * `cap`: `G(z) = min(T, |z|^p)`, `H = T` (Algorithm 7, Theorem 5.6);
//! * M-estimators (Huber / Fair / L1−L2) via the general framework — the
//!   functions \[JWZ22\] handles only on insertion-only streams, now on
//!   turnstile streams.

use pts_samplers::{L0Params, PerfectL0Sampler, Sample, TurnstileSampler};
use pts_stream::Update;
use pts_util::derive_seed;
use pts_util::variates::keyed_unit;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// A non-negative measurement function `G` with `G(0) = 0`.
pub type GFunction = std::sync::Arc<dyn Fn(f64) -> f64 + Send + Sync>;

/// The wire identity of a G-function: enough to rebuild the closure of any
/// *named* constructor. `G` itself is opaque — this is what makes a
/// rejection sampler checkpointable at all. Samplers built from arbitrary
/// user closures carry [`GSpec::Custom`] and refuse to encode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GSpec {
    /// `G(z) = log(1+|z|)` (Algorithm 6).
    Log,
    /// `G(z) = min(T, |z|^p)` (Algorithm 7).
    Cap {
        /// The cap threshold `T`.
        threshold_t: f64,
        /// The moment order `p`.
        p: f64,
    },
    /// The Huber M-estimator with knee `τ`.
    Huber {
        /// The quadratic/linear crossover `τ`.
        tau: f64,
    },
    /// The Fair M-estimator with scale `τ`.
    Fair {
        /// The scale parameter `τ`.
        tau: f64,
    },
    /// The soft-cap `G(z) = 1 − e^{−τ|z|}`.
    SoftCap {
        /// The decay rate `τ`.
        tau: f64,
    },
    /// The L1−L2 estimator `G(z) = 2(√(1+z²/2) − 1)`.
    L1L2,
    /// An arbitrary user closure — not wire-encodable.
    Custom,
}

impl GSpec {
    /// Rebuilds the measurement closure and display label this spec
    /// describes; `None` for [`GSpec::Custom`].
    fn instantiate(&self) -> Option<(GFunction, &'static str)> {
        match *self {
            GSpec::Log => Some((
                std::sync::Arc::new(|z: f64| (1.0 + z.abs()).ln()),
                "log(1+|z|)",
            )),
            GSpec::Cap { threshold_t, p } => Some((
                std::sync::Arc::new(move |z: f64| z.abs().powf(p).min(threshold_t)),
                "min(T,|z|^p)",
            )),
            GSpec::Huber { tau } => Some((
                std::sync::Arc::new(move |z: f64| {
                    let a = z.abs();
                    if a <= tau {
                        a * a / (2.0 * tau)
                    } else {
                        a - tau / 2.0
                    }
                }),
                "huber",
            )),
            GSpec::Fair { tau } => Some((
                std::sync::Arc::new(move |z: f64| {
                    let a = z.abs();
                    tau * a - tau * tau * (1.0 + a / tau).ln()
                }),
                "fair",
            )),
            GSpec::SoftCap { tau } => Some((
                std::sync::Arc::new(move |z: f64| 1.0 - (-tau * z.abs()).exp()),
                "soft-cap",
            )),
            GSpec::L1L2 => Some((
                std::sync::Arc::new(|z: f64| 2.0 * ((1.0 + z * z / 2.0).sqrt() - 1.0)),
                "l1-l2",
            )),
            GSpec::Custom => None,
        }
    }
}

/// The general rejection G-sampler (Algorithm 8).
pub struct RejectionGSampler {
    g: GFunction,
    upper_h: f64,
    l0_samples: Vec<PerfectL0Sampler>,
    accept_seed: u64,
    label: &'static str,
    spec: GSpec,
}

impl Clone for RejectionGSampler {
    fn clone(&self) -> Self {
        Self {
            g: std::sync::Arc::clone(&self.g),
            upper_h: self.upper_h,
            l0_samples: self.l0_samples.clone(),
            accept_seed: self.accept_seed,
            label: self.label,
            spec: self.spec,
        }
    }
}

impl std::fmt::Debug for RejectionGSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RejectionGSampler")
            .field("label", &self.label)
            .field("upper_h", &self.upper_h)
            .field("repetitions", &self.l0_samples.len())
            .finish()
    }
}

impl RejectionGSampler {
    /// Builds the sampler over universe `[0, n)` with `repetitions`
    /// independent L₀ samplers and acceptance `G(x)/H`.
    ///
    /// # Panics
    /// Panics if `H ≤ 0` or `repetitions == 0`.
    pub fn new(n: usize, g: GFunction, upper_h: f64, repetitions: usize, seed: u64) -> Self {
        Self::with_spec(n, g, upper_h, repetitions, seed, "custom", GSpec::Custom)
    }

    fn with_spec(
        n: usize,
        g: GFunction,
        upper_h: f64,
        repetitions: usize,
        seed: u64,
        label: &'static str,
        spec: GSpec,
    ) -> Self {
        assert!(upper_h > 0.0, "upper bound H must be positive");
        assert!(repetitions >= 1, "need at least one L0 repetition");
        let l0_samples = (0..repetitions)
            .map(|r| PerfectL0Sampler::new(n, L0Params::default(), derive_seed(seed, r as u64)))
            .collect();
        Self {
            g,
            upper_h,
            l0_samples,
            accept_seed: derive_seed(seed, 0x6ACC),
            label,
            spec,
        }
    }

    /// Builds the sampler from a wire-encodable [`GSpec`] (the closure and
    /// label come from the spec, so the value round-trips byte-exactly).
    fn from_spec(n: usize, spec: GSpec, upper_h: f64, repetitions: usize, seed: u64) -> Self {
        let (g, label) = spec.instantiate().expect("named spec");
        Self::with_spec(n, g, upper_h, repetitions, seed, label, spec)
    }

    /// Algorithm 6: the logarithmic sampler `G(z) = log(1+|z|)`.
    ///
    /// `stream_bound_m` bounds the magnitude any coordinate can reach (the
    /// paper's stream length `m`), giving `H = log(1+m)`; acceptance is at
    /// least `log 2 / log(1+m)`, so `O(log m)` repetitions suffice.
    pub fn log_sampler(n: usize, stream_bound_m: u64, seed: u64) -> Self {
        assert!(stream_bound_m >= 1);
        let h = (1.0 + stream_bound_m as f64).ln();
        let reps = ((4.0 * h / std::f64::consts::LN_2).ceil() as usize).max(8);
        Self::from_spec(n, GSpec::Log, h, reps, seed)
    }

    /// Algorithm 7: the cap sampler `G(z) = min(T, |z|^p)`, `H = T`;
    /// acceptance is at least `1/T` on integer streams, so `O(T)`
    /// repetitions suffice.
    pub fn cap_sampler(n: usize, threshold_t: f64, p: f64, seed: u64) -> Self {
        assert!(threshold_t >= 1.0, "cap threshold must be >= 1");
        assert!(p > 0.0);
        let reps = ((4.0 * threshold_t).ceil() as usize).max(8);
        Self::from_spec(n, GSpec::Cap { threshold_t, p }, threshold_t, reps, seed)
    }

    /// The Huber estimator `G(z) = z²/(2τ)` for `|z| ≤ τ`, else `|z| − τ/2`,
    /// bounded by its value at the stream bound `m`.
    pub fn huber_sampler(n: usize, tau: f64, stream_bound_m: u64, seed: u64) -> Self {
        assert!(tau > 0.0);
        let spec = GSpec::Huber { tau };
        let (g, _) = spec.instantiate().expect("named spec");
        let h = g(stream_bound_m as f64);
        let q = g(1.0); // minimum over non-zero integer values
        let reps = ((3.0 * h / q).ceil() as usize).clamp(8, 4096);
        Self::from_spec(n, spec, h, reps, seed)
    }

    /// The Fair estimator `G(z) = τ|z| − τ² log(1 + |z|/τ)`.
    pub fn fair_sampler(n: usize, tau: f64, stream_bound_m: u64, seed: u64) -> Self {
        assert!(tau > 0.0);
        let spec = GSpec::Fair { tau };
        let (g, _) = spec.instantiate().expect("named spec");
        let h = g(stream_bound_m as f64);
        let q = g(1.0);
        assert!(q > 0.0, "fair estimator degenerate at this tau");
        let reps = ((3.0 * h / q).ceil() as usize).clamp(8, 4096);
        Self::from_spec(n, spec, h, reps, seed)
    }

    /// The soft-cap function `G(z) = 1 − e^{−τ|z|}` (the \[PW25\] family's
    /// flagship, there limited to insertion-only streams with a random
    /// oracle; here on general turnstile streams). `H = 1` always, and
    /// `G(1) = 1 − e^{−τ}` lower-bounds acceptance on integer streams.
    pub fn soft_cap_sampler(n: usize, tau: f64, seed: u64) -> Self {
        assert!(tau > 0.0);
        let q = 1.0 - (-tau).exp();
        let reps = ((3.0 / q).ceil() as usize).clamp(8, 4096);
        Self::from_spec(n, GSpec::SoftCap { tau }, 1.0, reps, seed)
    }

    /// The L1−L2 estimator `G(z) = 2(√(1+z²/2) − 1)`.
    pub fn l1l2_sampler(n: usize, stream_bound_m: u64, seed: u64) -> Self {
        let spec = GSpec::L1L2;
        let (g, _) = spec.instantiate().expect("named spec");
        let h = g(stream_bound_m as f64);
        let q = g(1.0);
        let reps = ((3.0 * h / q).ceil() as usize).clamp(8, 4096);
        Self::from_spec(n, spec, h, reps, seed)
    }

    /// The wire identity of this sampler's G-function ([`GSpec::Custom`]
    /// for closures passed to [`RejectionGSampler::new`], which cannot be
    /// checkpointed).
    pub fn spec(&self) -> GSpec {
        self.spec
    }

    /// Number of L₀ repetitions held.
    pub fn repetitions(&self) -> usize {
        self.l0_samples.len()
    }

    /// The configured upper bound `H`.
    pub fn upper_bound(&self) -> f64 {
        self.upper_h
    }
}

impl TurnstileSampler for RejectionGSampler {
    fn process(&mut self, u: Update) {
        for s in &mut self.l0_samples {
            s.process(u);
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        for r in 0..self.l0_samples.len() {
            let Some(candidate) = self.l0_samples[r].sample() else {
                continue;
            };
            // L0 gives the exact value, so G evaluates exactly; acceptance
            // G(x)/H needs no clamping beyond guarding H mis-specification.
            let gval = (self.g)(candidate.estimate);
            debug_assert!(gval >= 0.0, "G must be non-negative");
            let r_acc = (gval / self.upper_h).min(1.0);
            if keyed_unit(self.accept_seed, r as u64) < r_acc {
                return Some(candidate);
            }
        }
        None
    }

    fn space_bits(&self) -> usize {
        self.l0_samples
            .iter()
            .map(TurnstileSampler::space_bits)
            .sum::<usize>()
            + 64
    }

    /// Merges a same-seeded shard sampler: the underlying L₀ repetitions
    /// are linear sketches, and `G`/`H` are construction-time constants.
    /// `G` itself is an opaque closure that cannot be compared, so the
    /// acceptance bound `H`, the label, and the repetition count stand in
    /// as the configuration fingerprint.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.accept_seed, other.accept_seed, "seed mismatch");
        assert_eq!(self.upper_h, other.upper_h, "acceptance bound mismatch");
        assert_eq!(self.label, other.label, "G-function mismatch");
        assert_eq!(
            self.l0_samples.len(),
            other.l0_samples.len(),
            "repetition mismatch"
        );
        for (a, b) in self.l0_samples.iter_mut().zip(&other.l0_samples) {
            a.merge(b);
        }
    }
}

impl Encode for GSpec {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match *self {
            GSpec::Log => w.put_u8(0),
            GSpec::Cap { threshold_t, p } => {
                w.put_u8(1);
                w.put_f64(threshold_t);
                w.put_f64(p);
            }
            GSpec::Huber { tau } => {
                w.put_u8(2);
                w.put_f64(tau);
            }
            GSpec::Fair { tau } => {
                w.put_u8(3);
                w.put_f64(tau);
            }
            GSpec::SoftCap { tau } => {
                w.put_u8(4);
                w.put_f64(tau);
            }
            GSpec::L1L2 => w.put_u8(5),
            GSpec::Custom => {
                return Err(WireError::Unsupported(
                    "custom G-function closures cannot cross the wire",
                ))
            }
        }
        Ok(())
    }
}

impl Decode for GSpec {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let spec = match r.get_u8()? {
            0 => GSpec::Log,
            1 => GSpec::Cap {
                threshold_t: r.get_f64()?,
                p: r.get_f64()?,
            },
            2 => GSpec::Huber { tau: r.get_f64()? },
            3 => GSpec::Fair { tau: r.get_f64()? },
            4 => GSpec::SoftCap { tau: r.get_f64()? },
            5 => GSpec::L1L2,
            _ => return Err(WireError::Invalid("g-spec tag")),
        };
        Ok(spec)
    }
}

impl Encode for RejectionGSampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.spec.encode(w)?; // fails here for Custom — nothing partial
        w.put_f64(self.upper_h);
        w.put_u64(self.accept_seed);
        w.put_usize(self.l0_samples.len());
        for l0 in &self.l0_samples {
            l0.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for RejectionGSampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let spec = GSpec::decode(r)?;
        let (g, label) = spec
            .instantiate()
            .ok_or(WireError::Invalid("custom g-spec on the wire"))?;
        let upper_h = r.get_f64()?;
        if !(upper_h.is_finite() && upper_h > 0.0) {
            return Err(WireError::Invalid("g-sampler upper bound"));
        }
        let accept_seed = r.get_u64()?;
        let reps = r.get_len(32)?;
        if !(1..=1 << 16).contains(&reps) {
            return Err(WireError::Invalid("g-sampler repetition count"));
        }
        let mut l0_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            l0_samples.push(PerfectL0Sampler::decode(r)?);
        }
        Ok(Self {
            g,
            upper_h,
            l0_samples,
            accept_seed,
            label,
            spec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::FrequencyVector;
    use pts_util::stats::tv_distance;

    fn g_distribution(
        x: &FrequencyVector,
        build: impl Fn(u64) -> RejectionGSampler,
        trials: u64,
    ) -> (Vec<u64>, u64) {
        let mut counts = vec![0u64; x.n()];
        let mut fails = 0;
        for t in 0..trials {
            let mut s = build(t);
            s.ingest_vector(x);
            match s.sample() {
                Some(sample) => {
                    assert_eq!(
                        sample.estimate,
                        x.value(sample.index) as f64,
                        "L0 must return exact values"
                    );
                    counts[sample.index as usize] += 1;
                }
                None => fails += 1,
            }
        }
        (counts, fails)
    }

    #[test]
    fn log_sampler_follows_log_law() {
        let x = FrequencyVector::from_values(vec![1, 10, 100, 1000, 0, -50]);
        let weights: Vec<f64> = x
            .values()
            .iter()
            .map(|&v| (1.0 + (v as f64).abs()).ln())
            .collect();
        let (counts, fails) = g_distribution(
            &x,
            |t| RejectionGSampler::log_sampler(6, 1000, 900 + t),
            8_000,
        );
        let accepted: u64 = counts.iter().sum();
        assert!(fails < 8_000 / 10, "fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.03, "tv {tv} over {accepted} samples");
    }

    #[test]
    fn cap_sampler_follows_capped_law() {
        // T = 8, p = 2: values 1,2,3,10 → G = 1, 4, 8, 8.
        let x = FrequencyVector::from_values(vec![1, 2, -3, 10, 0]);
        let weights = [1.0, 4.0, 8.0, 8.0, 0.0];
        let (counts, fails) = g_distribution(
            &x,
            |t| RejectionGSampler::cap_sampler(5, 8.0, 2.0, 300 + t),
            8_000,
        );
        assert!(fails < 8_000 / 10, "fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.03, "tv {tv}");
    }

    #[test]
    fn huber_sampler_follows_huber_law() {
        let tau = 3.0;
        let huber = |z: f64| {
            let a = z.abs();
            if a <= tau {
                a * a / (2.0 * tau)
            } else {
                a - tau / 2.0
            }
        };
        let x = FrequencyVector::from_values(vec![1, -2, 5, 20, 0, 3]);
        let weights: Vec<f64> = x.values().iter().map(|&v| huber(v as f64)).collect();
        let (counts, fails) = g_distribution(
            &x,
            |t| RejectionGSampler::huber_sampler(6, tau, 20, 500 + t),
            8_000,
        );
        assert!(fails < 8_000 / 5, "fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.03, "tv {tv}");
    }

    #[test]
    fn fair_and_l1l2_accept_and_sample() {
        let x = FrequencyVector::from_values(vec![2, -7, 13, 0]);
        for build in [
            |t| RejectionGSampler::fair_sampler(4, 2.0, 13, 40 + t),
            |t| RejectionGSampler::l1l2_sampler(4, 13, 80 + t),
        ] {
            let (counts, fails) = g_distribution(&x, build, 500);
            let accepted: u64 = counts.iter().sum();
            assert!(accepted > 350, "accepted {accepted}, fails {fails}");
            assert_eq!(counts[3], 0, "zero coordinate must never be sampled");
        }
    }

    #[test]
    fn soft_cap_follows_saturating_law() {
        // τ = 1: G(1) ≈ 0.632, G(3) ≈ 0.950, G(50) ≈ 1 — big values saturate
        // toward uniform, unlike any L_p law.
        let x = FrequencyVector::from_values(vec![1, 3, -50, 0]);
        let tau = 1.0;
        let weights: Vec<f64> = x
            .values()
            .iter()
            .map(|&v| 1.0 - (-tau * (v as f64).abs()).exp())
            .collect();
        let (counts, fails) = g_distribution(
            &x,
            |t| RejectionGSampler::soft_cap_sampler(4, tau, 700 + t),
            8_000,
        );
        assert!(fails < 8_000 / 10, "fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.03, "tv {tv}");
        // The two saturated coordinates must be nearly equally likely even
        // though their magnitudes differ 16×.
        let got: u64 = counts.iter().sum();
        let r3 = counts[1] as f64 / got as f64;
        let r50 = counts[2] as f64 / got as f64;
        assert!(
            (r3 - r50).abs() < 0.05,
            "saturation violated: {r3} vs {r50}"
        );
    }

    #[test]
    fn deletions_are_respected() {
        // Insert a large value then delete it; G-law must reflect the final
        // vector only — this is the turnstile capability \[JWZ22\] lacks.
        let mut s = RejectionGSampler::log_sampler(8, 1000, 77);
        s.process(Update::new(2, 500));
        s.process(Update::new(5, 3));
        s.process(Update::new(2, -500));
        let mut found_5 = false;
        for _ in 0..20 {
            if let Some(sample) = s.sample() {
                assert_eq!(sample.index, 5);
                found_5 = true;
                break;
            }
        }
        assert!(found_5, "survivor must be sampled within 20 queries");
    }

    #[test]
    fn zero_vector_fails() {
        let mut s = RejectionGSampler::cap_sampler(8, 4.0, 2.0, 9);
        assert!(s.sample().is_none());
    }

    #[test]
    fn repetitions_scale_with_bounds() {
        let small = RejectionGSampler::cap_sampler(8, 2.0, 2.0, 1);
        let large = RejectionGSampler::cap_sampler(8, 64.0, 2.0, 1);
        assert!(large.repetitions() > 10 * small.repetitions());
        assert_eq!(large.upper_bound(), 64.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_h() {
        let _ = RejectionGSampler::new(8, std::sync::Arc::new(|z| z.abs()), 0.0, 4, 1);
    }
}
