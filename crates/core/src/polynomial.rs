//! **Perfect polynomial sampling** (Theorem 1.5 / 2.14; Algorithm 3) — the
//! first perfect sampler for a class of functions that is *not*
//! scale-invariant.
//!
//! For `G(z) = Σ_{d∈[D]} α_d |z|^{p_d}` with `0 < p_1 < … < p_D = p`,
//! draw perfect L_p samples (p the top degree) and accept index `j` with
//! probability `Σ_d α_d |x̂_j|^{p_d−p} / (slack·D·M)`. Every exponent
//! `p_d − p ≤ 0`, so on integer-valued streams (`|x_j| ≥ 1`) each term is at
//! most `α_d ≤ M` and the probability is well-defined; the acceptance
//! reweights `|x_j|^p` into `G(x_j)` exactly.
//!
//! Scale matters: `G(2x)/G(x)` varies across coordinates unless `G` is a
//! single power, so the output law of this sampler *changes* when the input
//! is scaled — experiment E8 demonstrates it (and that the sampler tracks
//! the changed law), which no L_p sampler can do.

use crate::perfect::{PerfectLpParams, PerfectLpSampler};
use pts_samplers::{LpLe2Batch, LpLe2Params, Sample, TurnstileSampler};
use pts_stream::Update;
use pts_util::derive_seed;
use pts_util::variates::keyed_unit;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// A sampling polynomial `G(z) = Σ_d α_d |z|^{p_d}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// `(α_d, p_d)` pairs, strictly increasing in `p_d`, all `α_d > 0`.
    terms: Vec<(f64, f64)>,
}

impl Polynomial {
    /// Builds a polynomial from `(coefficient, power)` pairs.
    ///
    /// # Panics
    /// Panics unless powers are strictly increasing and positive and all
    /// coefficients are positive.
    pub fn new(terms: Vec<(f64, f64)>) -> Self {
        assert!(!terms.is_empty(), "polynomial needs at least one term");
        let mut prev = 0.0;
        for &(alpha, power) in &terms {
            assert!(alpha > 0.0, "coefficients must be positive");
            assert!(
                power > prev,
                "powers must be strictly increasing and positive"
            );
            prev = power;
        }
        Self { terms }
    }

    /// The terms `(α_d, p_d)`.
    pub fn terms(&self) -> &[(f64, f64)] {
        &self.terms
    }

    /// The leading power `p = p_D`.
    pub fn degree(&self) -> f64 {
        self.terms.last().expect("non-empty").1
    }

    /// The number of terms `D`.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The largest coefficient `M`.
    pub fn max_coeff(&self) -> f64 {
        self.terms.iter().map(|&(a, _)| a).fold(0.0, f64::max)
    }

    /// Evaluates `G(z) = Σ_d α_d |z|^{p_d}` (so `G(0) = 0`).
    pub fn eval(&self, z: f64) -> f64 {
        let az = z.abs();
        if az == 0.0 {
            return 0.0;
        }
        self.terms.iter().map(|&(a, p)| a * az.powf(p)).sum()
    }
}

/// The inner L_p engine: Algorithm 1/2 for `p > 2`, the JW18 sampler below.
#[derive(Debug, Clone)]
enum InnerLp {
    High(Box<PerfectLpSampler>),
    Low(LpLe2Batch),
}

impl InnerLp {
    fn process(&mut self, u: Update) {
        match self {
            InnerLp::High(s) => s.process(u),
            InnerLp::Low(s) => s.process(u),
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        match self {
            InnerLp::High(s) => s.sample(),
            InnerLp::Low(s) => s.sample(),
        }
    }

    fn space_bits(&self) -> usize {
        match self {
            InnerLp::High(s) => s.space_bits(),
            InnerLp::Low(s) => s.space_bits(),
        }
    }
}

/// Parameters for [`PolynomialSampler`].
#[derive(Debug, Clone)]
pub struct PolynomialParams {
    /// The polynomial `G`.
    pub poly: Polynomial,
    /// Number of inner L_p samples (`N = O(log n)`; acceptance is `Ω(1)`).
    pub samples: usize,
    /// Acceptance headroom (the `5` of Algorithm 3 line 7).
    pub slack: f64,
}

impl PolynomialParams {
    /// Defaults for universe `n`.
    ///
    /// The acceptance probability per inner sample is at least
    /// `α_D / (slack·D·M)` (Lemma 2.12's `Ω(1)`, with the polynomial's
    /// constants spelled out), so the inner-sample count scales with its
    /// inverse times the usual `O(log n)`.
    pub fn for_universe(n: usize, poly: Polynomial) -> Self {
        let slack = 1.0;
        let d = poly.num_terms() as f64;
        let m = poly.max_coeff();
        let alpha_d = poly.terms().last().expect("non-empty").0;
        let accept_inv = (slack * d * m / alpha_d).max(1.0);
        let samples = ((((n.max(4) as f64).ln() + 4.0) * accept_inv).ceil() as usize).clamp(6, 256);
        Self {
            poly,
            samples,
            slack,
        }
    }
}

/// The perfect polynomial sampler (Algorithm 3).
#[derive(Debug, Clone)]
pub struct PolynomialSampler {
    params: PolynomialParams,
    inners: Vec<InnerLp>,
    accept_seed: u64,
}

impl PolynomialSampler {
    /// Builds the sampler over universe `[0, n)`.
    pub fn new(n: usize, params: PolynomialParams, seed: u64) -> Self {
        assert!(params.samples >= 1, "need at least one inner sample");
        assert!(params.slack >= 1.0, "slack must be at least 1");
        let p = params.poly.degree();
        let inners = (0..params.samples)
            .map(|t| {
                let s = derive_seed(seed, t as u64);
                if p > 2.0 {
                    InnerLp::High(Box::new(PerfectLpSampler::new(
                        n,
                        PerfectLpParams::for_universe(n, p),
                        s,
                    )))
                } else {
                    InnerLp::Low(LpLe2Batch::new(n, LpLe2Params::for_universe(n, p), 6, s))
                }
            })
            .collect();
        Self {
            params,
            inners,
            accept_seed: derive_seed(seed, 0xACCE),
        }
    }

    /// The polynomial being sampled.
    pub fn polynomial(&self) -> &Polynomial {
        &self.params.poly
    }
}

impl TurnstileSampler for PolynomialSampler {
    fn process(&mut self, u: Update) {
        for inner in &mut self.inners {
            inner.process(u);
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        let p = self.params.poly.degree();
        let d = self.params.poly.num_terms() as f64;
        let m = self.params.poly.max_coeff();
        let denom = self.params.slack * d * m;
        for t in 0..self.inners.len() {
            let Some(candidate) = self.inners[t].sample() else {
                continue;
            };
            // Acceptance: Σ_d α_d |x̂|^{p_d − p} / (slack·D·M). For |x̂| ≥ 1
            // every term is ≤ α_d so the ratio is a probability.
            let mag = candidate.estimate.abs().max(1.0);
            let weight: f64 = self
                .params
                .poly
                .terms()
                .iter()
                .map(|&(alpha, pd)| alpha * mag.powf(pd - p))
                .sum();
            let r = (weight / denom).min(1.0);
            if keyed_unit(self.accept_seed, t as u64) < r {
                return Some(candidate);
            }
        }
        None
    }

    fn space_bits(&self) -> usize {
        self.inners.iter().map(InnerLp::space_bits).sum::<usize>() + 64
    }
}

impl Encode for Polynomial {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.terms.len());
        for &(alpha, power) in &self.terms {
            w.put_f64(alpha);
            w.put_f64(power);
        }
        Ok(())
    }
}

impl Decode for Polynomial {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_len(16)?;
        if !(1..=64).contains(&len) {
            return Err(WireError::Invalid("polynomial term count"));
        }
        let mut terms = Vec::with_capacity(len);
        let mut prev = 0.0;
        for _ in 0..len {
            let alpha = r.get_f64()?;
            let power = r.get_f64()?;
            // The constructor's panicking invariants, as decode errors.
            if !(alpha.is_finite() && alpha > 0.0 && power.is_finite() && power > prev) {
                return Err(WireError::Invalid("polynomial terms"));
            }
            prev = power;
            terms.push((alpha, power));
        }
        Ok(Self { terms })
    }
}

impl Encode for PolynomialSampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.params.poly.encode(w)?;
        w.put_f64(self.params.slack);
        w.put_u64(self.accept_seed);
        w.put_usize(self.inners.len());
        for inner in &self.inners {
            match inner {
                InnerLp::High(s) => {
                    w.put_u8(0);
                    s.encode(w)?;
                }
                InnerLp::Low(s) => {
                    w.put_u8(1);
                    s.encode(w)?;
                }
            }
        }
        Ok(())
    }
}

impl Decode for PolynomialSampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let poly = Polynomial::decode(r)?;
        let slack = r.get_f64()?;
        if !(slack.is_finite() && slack >= 1.0) {
            return Err(WireError::Invalid("polynomial slack"));
        }
        let accept_seed = r.get_u64()?;
        let samples = r.get_len(32)?;
        if !(1..=4096).contains(&samples) {
            return Err(WireError::Invalid("polynomial inner count"));
        }
        let mut inners = Vec::with_capacity(samples);
        for _ in 0..samples {
            inners.push(match r.get_u8()? {
                0 => InnerLp::High(Box::new(PerfectLpSampler::decode(r)?)),
                1 => InnerLp::Low(LpLe2Batch::decode(r)?),
                _ => return Err(WireError::Invalid("inner sampler tag")),
            });
        }
        Ok(Self {
            params: PolynomialParams {
                poly,
                samples,
                slack,
            },
            inners,
            accept_seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::FrequencyVector;
    use pts_util::stats::tv_distance;

    #[test]
    fn polynomial_validation() {
        let g = Polynomial::new(vec![(1.0, 2.0), (3.0, 3.0)]);
        assert_eq!(g.degree(), 3.0);
        assert_eq!(g.num_terms(), 2);
        assert_eq!(g.max_coeff(), 3.0);
        assert_eq!(g.eval(0.0), 0.0);
        assert!((g.eval(2.0) - (4.0 + 24.0)).abs() < 1e-12);
        assert!((g.eval(-2.0) - g.eval(2.0)).abs() < 1e-12, "even in |z|");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_powers() {
        let _ = Polynomial::new(vec![(1.0, 3.0), (1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_coeff() {
        let _ = Polynomial::new(vec![(0.0, 2.0)]);
    }

    fn poly_distribution(
        x: &FrequencyVector,
        poly: Polynomial,
        trials: u64,
        seed0: u64,
    ) -> (Vec<u64>, u64) {
        let n = x.n();
        let params = PolynomialParams::for_universe(n, poly);
        let mut counts = vec![0u64; n];
        let mut fails = 0;
        for t in 0..trials {
            let mut s = PolynomialSampler::new(n, params.clone(), seed0 + t * 31);
            s.ingest_vector(x);
            match s.sample() {
                Some(sample) => counts[sample.index as usize] += 1,
                None => fails += 1,
            }
        }
        (counts, fails)
    }

    #[test]
    fn follows_polynomial_law_low_degree() {
        // G(z) = |z| + 2 z²  (degree ≤ 2 → JW18 inner engine).
        let g = Polynomial::new(vec![(1.0, 1.0), (2.0, 2.0)]);
        let x = FrequencyVector::from_values(vec![1, -3, 5, 2, 0, 4]);
        let weights: Vec<f64> = x.values().iter().map(|&v| g.eval(v as f64)).collect();
        let (counts, fails) = poly_distribution(&x, g, 3_000, 11);
        let accepted: u64 = counts.iter().sum();
        assert!(accepted > 2_000, "accepted {accepted} fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.05, "tv {tv}");
    }

    #[test]
    fn follows_polynomial_law_high_degree() {
        // G(z) = z² + 3|z|³ (degree 3 → Algorithm 1 inner engine).
        let g = Polynomial::new(vec![(1.0, 2.0), (3.0, 3.0)]);
        let x = FrequencyVector::from_values(vec![2, -4, 6, 1, 0, 3]);
        let weights: Vec<f64> = x.values().iter().map(|&v| g.eval(v as f64)).collect();
        let (counts, fails) = poly_distribution(&x, g, 400, 77);
        let accepted: u64 = counts.iter().sum();
        assert!(accepted > 330, "accepted {accepted} fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.1, "tv {tv}");
    }

    #[test]
    fn law_is_not_scale_invariant() {
        // The defining feature (E8): doubling the vector shifts mass toward
        // the high-degree term, changing the *normalized* law. Compare the
        // ideal laws first, then check the sampler tracks the scaled law.
        let g = Polynomial::new(vec![(1.0, 1.0), (0.2, 2.0)]);
        let x1 = FrequencyVector::from_values(vec![1, 8, 3, 0]);
        let x2 = FrequencyVector::from_values(vec![8, 64, 24, 0]);
        let w1: Vec<f64> = x1.values().iter().map(|&v| g.eval(v as f64)).collect();
        let w2: Vec<f64> = x2.values().iter().map(|&v| g.eval(v as f64)).collect();
        let t1: f64 = w1.iter().sum();
        let t2: f64 = w2.iter().sum();
        // Ideal laws differ measurably between x and 2x.
        let ideal_shift: f64 = w1
            .iter()
            .zip(&w2)
            .map(|(a, b)| (a / t1 - b / t2).abs())
            .sum::<f64>()
            / 2.0;
        assert!(ideal_shift > 0.02, "shift {ideal_shift}");
        // Sampler on the scaled vector matches the scaled law, not the
        // unscaled one.
        let (counts, _) = poly_distribution(&x2, g, 2_000, 201);
        let tv_scaled = tv_distance(&counts, &w2);
        let tv_unscaled = tv_distance(&counts, &w1);
        assert!(tv_scaled < 0.06, "tv vs own law {tv_scaled}");
        assert!(
            tv_unscaled > tv_scaled + ideal_shift / 2.0,
            "scaled {tv_scaled} vs unscaled {tv_unscaled}"
        );
    }

    #[test]
    fn zero_vector_fails() {
        let g = Polynomial::new(vec![(1.0, 3.0)]);
        let mut s = PolynomialSampler::new(8, PolynomialParams::for_universe(8, g), 5);
        assert!(s.sample().is_none());
    }
}
