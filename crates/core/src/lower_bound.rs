//! The sketching lower bound, operationally (§4; Theorems 1.4 / 4.3).
//!
//! A lower bound cannot be "run", but its *reduction* can: Theorem 4.3 shows
//! an approximate L_p sampler distinguishes the hard pair of Definition 4.1
//! (`α = N(0, I_n)` vs `β = ` Gaussian + one planted spike of size
//! `C·E[‖x‖_p]`) — classify **β** iff two independent samples from the
//! sketch return the *same index*. Theorem 4.2 says any linear sketch that
//! distinguishes with probability 0.6 needs `Ω(n^{1−2/p} log n)` dimensions;
//! experiment E7 therefore runs this protocol while shrinking the sampler's
//! stage-1 width below `n^{1−2/p}` and watches the success probability
//! degrade — the empirical face of the bound.

use crate::approximate::{ApproxLpBatch, ApproxLpParams};
use pts_samplers::TurnstileSampler;
use pts_stream::hard::{draw_alpha, draw_beta, quantize, HardDraw};
use pts_util::{derive_seed, Xoshiro256pp};

/// Outcome of one distinguishing trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Ground truth: was the draw from β?
    pub truth_beta: bool,
    /// The protocol's classification.
    pub classified_beta: bool,
}

impl TrialOutcome {
    /// Whether the protocol classified correctly.
    pub fn correct(&self) -> bool {
        self.truth_beta == self.classified_beta
    }
}

/// Configuration of the distinguishing protocol.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolConfig {
    /// Moment order `p > 2`.
    pub p: f64,
    /// The spike multiplier `C` of Definition 4.1.
    pub spike_c: f64,
    /// Quantization scale mapping the real draws onto the integer grid.
    pub quant_scale: f64,
    /// Sampler parameters — `cs1_buckets` is the "sketching dimension" knob
    /// the experiment sweeps.
    pub sampler: ApproxLpParams,
}

impl ProtocolConfig {
    /// Defaults for universe `n` at the sampler's native dimension.
    pub fn for_universe(n: usize, p: f64) -> Self {
        Self {
            p,
            spike_c: 4.0,
            quant_scale: 64.0,
            sampler: ApproxLpParams::for_universe(n, p, 0.3),
        }
    }

    /// The same configuration with the stage-1 width overridden — the
    /// dimension sweep of experiment E7.
    pub fn with_cs1_buckets(mut self, buckets: usize) -> Self {
        self.sampler.cs1_buckets = buckets.max(4);
        self
    }
}

/// Runs the two-sample protocol of Theorem 4.3 on one draw: classify β iff
/// both independent samplers succeed and agree on the index. Each "sampler"
/// is a success-boosted batch so the FAIL probability meets the ≤0.1
/// premise of the theorem.
pub fn classify(draw: &HardDraw, n: usize, cfg: &ProtocolConfig, seed: u64) -> bool {
    let x = quantize(&draw.values, cfg.quant_scale);
    let mut first = ApproxLpBatch::new(n, cfg.sampler, 6, derive_seed(seed, 1));
    let mut second = ApproxLpBatch::new(n, cfg.sampler, 6, derive_seed(seed, 2));
    for (i, v) in x.iter_nonzero() {
        first.process(pts_stream::Update::new(i, v));
        second.process(pts_stream::Update::new(i, v));
    }
    match (first.sample(), second.sample()) {
        (Some(a), Some(b)) => a.index == b.index,
        _ => false,
    }
}

/// Runs `trials` draws (half α, half β) and returns the accuracy.
pub fn distinguishing_accuracy(n: usize, cfg: &ProtocolConfig, trials: usize, seed: u64) -> f64 {
    assert!(trials >= 2, "need at least one trial per distribution");
    let mut rng = Xoshiro256pp::new(derive_seed(seed, 0xD15));
    let mut correct = 0usize;
    for t in 0..trials {
        let truth_beta = t % 2 == 1;
        let draw = if truth_beta {
            draw_beta(n, cfg.spike_c, cfg.p, &mut rng)
        } else {
            draw_alpha(n, &mut rng)
        };
        let classified_beta = classify(&draw, n, cfg, derive_seed(seed, 1000 + t as u64));
        if classified_beta == truth_beta {
            correct += 1;
        }
    }
    correct as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_util::Xoshiro256pp;

    #[test]
    fn beta_draws_are_recognized() {
        let n = 128;
        let cfg = ProtocolConfig::for_universe(n, 4.0);
        let mut rng = Xoshiro256pp::new(1);
        let mut hits = 0;
        let trials = 30;
        for t in 0..trials {
            let draw = draw_beta(n, cfg.spike_c, cfg.p, &mut rng);
            if classify(&draw, n, &cfg, 100 + t) {
                hits += 1;
            }
        }
        // The planted spike holds ≈ all of F_p: both samplers should land on
        // it and agree.
        assert!(hits >= trials * 7 / 10, "hits {hits}/{trials}");
    }

    #[test]
    fn alpha_draws_are_rarely_misclassified() {
        let n = 128;
        let cfg = ProtocolConfig::for_universe(n, 4.0);
        let mut rng = Xoshiro256pp::new(2);
        let mut false_beta = 0;
        let trials = 30;
        for t in 0..trials {
            let draw = draw_alpha(n, &mut rng);
            if classify(&draw, n, &cfg, 500 + t) {
                false_beta += 1;
            }
        }
        // Collision probability on a flat Gaussian vector is tiny.
        assert!(false_beta <= trials / 5, "false β {false_beta}/{trials}");
    }

    #[test]
    fn full_dimension_accuracy_beats_threshold() {
        let n = 128;
        let cfg = ProtocolConfig::for_universe(n, 4.0);
        let acc = distinguishing_accuracy(n, &cfg, 40, 3);
        assert!(acc >= 0.6, "accuracy {acc} (Theorem 4.3's operating point)");
    }

    #[test]
    fn starved_dimension_degrades_accuracy() {
        // Shrinking the stage-1 width far below n^{1−2/p} must hurt: the
        // sampler can no longer isolate the spike reliably.
        let n = 128;
        let full = ProtocolConfig::for_universe(n, 4.0);
        let starved = ProtocolConfig::for_universe(n, 4.0).with_cs1_buckets(4);
        let acc_full = distinguishing_accuracy(n, &full, 40, 4);
        let acc_starved = distinguishing_accuracy(n, &starved, 40, 4);
        assert!(
            acc_starved <= acc_full + 0.05,
            "full {acc_full} vs starved {acc_starved}"
        );
    }

    #[test]
    fn trial_outcome_accessors() {
        let t = TrialOutcome {
            truth_beta: true,
            classified_beta: false,
        };
        assert!(!t.correct());
    }
}
