use pts_core::approximate::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_stream::gen::zipf_vector;
use pts_util::stats::{max_relative_bias, tv_distance};

#[test]
#[ignore]
fn probe_eps_scaling() {
    let n = 32;
    let p = 3.0;
    let x = zipf_vector(n, 1.1, 60, 101);
    let weights = x.lp_weights(p);
    for eps in [0.4f64, 0.2, 0.1, 0.05] {
        let params = ApproxLpParams::for_universe(n, p, eps);
        let trials = 12_000u64;
        let mut counts = vec![0u64; n];
        let mut fails = 0u64;
        for t in 0..trials {
            let mut s = ApproxLpSampler::new(n, params, 0xFC_000 + t * 11);
            s.ingest_vector(&x);
            match s.sample() {
                Some(smp) => counts[smp.index as usize] += 1,
                None => fails += 1,
            }
        }
        println!(
            "eps={eps}: fail={:.3} tv={:.4} maxbias={:.3}",
            fails as f64 / trials as f64,
            tv_distance(&counts, &weights),
            max_relative_bias(&counts, &weights, 0.02)
        );
    }
}
