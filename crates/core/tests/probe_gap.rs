use pts_core::approximate::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_stream::gen::zipf_vector;
use pts_util::variates::keyed_exponential;

#[test]
#[ignore]
fn probe_gap_internals() {
    let n = 32usize;
    let p = 3.0;
    let x = zipf_vector(n, 1.1, 60, 101);
    // identify heavy index
    let heavy = (0..n as u64).max_by_key(|&i| x.value(i).abs()).unwrap();
    let params = ApproxLpParams::for_universe(n, p, 0.3);
    let m = (n as f64).powf(params.dup_c);
    // conditional pass rates by true winner
    let mut pass = [0u64; 2];
    let mut tot = [0u64; 2];
    for t in 0..30_000u64 {
        let seed = 0xFB_000 + t * 7;
        let mut s = ApproxLpSampler::new(n, params, seed);
        s.ingest_vector(&x);
        // true scaled argmax: v_i = x_i (M/e_i)^{1/p} using the sampler's seed derivation
        let e_seed = pts_util::derive_seed(seed, 0xE);
        let mut best = (0u64, f64::MIN);
        for i in 0..n as u64 {
            let e = keyed_exponential(e_seed, i);
            let v = (x.value(i).abs() as f64) * (m / e).powf(1.0 / p);
            if v > best.1 {
                best = (i, v);
            }
        }
        let cls = if best.0 == heavy { 0 } else { 1 };
        tot[cls] += 1;
        let out = s.sample();
        if let Some(smp) = out {
            if smp.index == best.0 {
                pass[cls] += 1;
            } else {
                // argmax flip: count separately
                tot[cls] -= 1; // exclude from pass-rate accounting
                println!("FLIP: true={} got={} (class {})", best.0, smp.index, cls);
            }
        }
    }
    println!(
        "heavy: pass {}/{} = {:.4}",
        pass[0],
        tot[0],
        pass[0] as f64 / tot[0] as f64
    );
    println!(
        "light: pass {}/{} = {:.4}",
        pass[1],
        tot[1],
        pass[1] as f64 / tot[1] as f64
    );
}
