use pts_core::approximate::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_stream::gen::zipf_vector;

#[test]
#[ignore]
fn probe_per_index() {
    let n = 32;
    let p = 3.0;
    let x = zipf_vector(n, 1.1, 60, 101);
    let weights = x.lp_weights(p);
    let mass: f64 = weights.iter().sum();
    let params = ApproxLpParams::for_universe(n, p, 0.3);
    let trials = 30_000u64;
    let mut counts = vec![0u64; n];
    let mut got = 0u64;
    for t in 0..trials {
        let mut s = ApproxLpSampler::new(n, params, 0xFB_000 + t * 7);
        s.ingest_vector(&x);
        if let Some(smp) = s.sample() {
            counts[smp.index as usize] += 1;
            got += 1;
        }
    }
    let mut rows: Vec<(usize, f64, f64)> = (0..n)
        .map(|i| {
            let ideal = weights[i] / mass;
            let emp = counts[i] as f64 / got as f64;
            (i, ideal, emp)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, ideal, emp) in rows.iter().take(12) {
        println!(
            "i={i:>3} |x|={:>3} ideal={ideal:.4} emp={emp:.4} rel={:+.3}",
            x.value(*i as u64).abs(),
            (emp - ideal) / ideal
        );
    }
}
