use pts_core::approximate::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_stream::gen::zipf_vector;
use pts_util::stats::{chi_square_test, max_relative_bias, tv_distance};

#[test]
#[ignore]
fn probe_threshold_factor() {
    let n = 32;
    let p = 3.0;
    let x = zipf_vector(n, 1.1, 60, 101);
    let weights = x.lp_weights(p);
    let mass: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / mass).collect();
    for factor in [0.5f64, 1.0, 1.5, 2.0] {
        let mut params = ApproxLpParams::for_universe(n, p, 0.3);
        params.threshold_factor = factor;
        let trials = 6000u64;
        let mut counts = vec![0u64; n];
        let mut fails = 0u64;
        for t in 0..trials {
            let mut s = ApproxLpSampler::new(n, params, 0xFA_000 + t * 131);
            s.ingest_vector(&x);
            match s.sample() {
                Some(smp) => counts[smp.index as usize] += 1,
                None => fails += 1,
            }
        }
        let tv = tv_distance(&counts, &weights);
        let bias = max_relative_bias(&counts, &weights, 0.02);
        let chi = chi_square_test(&counts, &probs, 5.0);
        println!(
            "factor={factor}: fail={:.3} tv={tv:.4} bias={bias:.3} chi2p={:.2e}",
            fails as f64 / trials as f64,
            chi.p_value
        );
    }
}
