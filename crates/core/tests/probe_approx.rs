use pts_core::approximate::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_stream::FrequencyVector;

#[test]
#[ignore]
fn probe_approx_internals() {
    let x = FrequencyVector::from_values(vec![4, -8, 12, 2, 0, 6, -10, 3]);
    let n = 8;
    let params = ApproxLpParams::for_universe(n, 3.0, 0.3);
    println!("params: {params:?}");
    for t in 0..5u64 {
        let mut s = ApproxLpSampler::new(n, params, 1000 + t);
        s.ingest_vector(&x);
        // reach into internals via debug of sample steps: replicate logic
        let out = s.sample();
        println!("t={t} out={out:?} copies={} ", s.copies());
    }
}
