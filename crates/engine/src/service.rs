//! The narrow engine surface a network front-end drives.
//!
//! `pts-server` hosts an engine behind a socket, and the server should not
//! grow engine internals (nor the engine grow socket concerns).
//! [`SamplingService`] is the boundary: exactly the operations the service
//! protocol (`pts_util::protocol`) can express, object-shaped enough that
//! the server is generic over *which* engine front-end — sequential
//! [`crate::ShardedEngine`] or threaded [`crate::ConcurrentEngine`] —
//! happens to serve the traffic.
//!
//! The trait deliberately re-exposes engine operations under service
//! semantics:
//!
//! * state-changing and state-reporting calls take the receiver the
//!   protocol loop actually holds (`&mut self` behind a lock);
//! * checkpoint/restore move **bytes**, not writers, because the protocol
//!   ships checkpoints as response payloads;
//! * restore *replaces* the receiver in place, so a server can apply a
//!   `Restore` request without tearing down its accept loop.

use crate::engine::EngineStats;
use crate::snapshot::EngineSnapshot;
use pts_samplers::Sample;
use pts_stream::Update;
use pts_util::protocol::ServiceStats;
use pts_util::wire::WireError;

/// Everything a request/response front-end may ask of an engine.
///
/// Implementations exist for both engine front-ends; a server written
/// against this trait cannot reach around it into engine internals.
pub trait SamplingService {
    /// The universe bound `n`: every ingested index must lie in `[0, n)`.
    ///
    /// Servers validate request indices against this *before* calling
    /// [`SamplingService::ingest_batch`], converting what would be an
    /// engine panic into an in-band protocol error.
    fn universe(&self) -> usize;

    /// Applies a batch of turnstile updates.
    ///
    /// # Panics
    /// Panics if an update addresses a coordinate outside the universe —
    /// callers validate against [`SamplingService::universe`] first.
    fn ingest_batch(&mut self, batch: &[Update]);

    /// Draws one sample from the global law `G(x_i)/Σ_j G(x_j)`; `None` is
    /// the paper's ⊥ (an honest bounded-probability outcome, not an
    /// error).
    fn sample(&mut self) -> Option<Sample>;

    /// Captures the compact mergeable net vector.
    fn snapshot(&self) -> EngineSnapshot;

    /// The engine's running counters.
    fn stats(&self) -> EngineStats;

    /// The exact global `G`-mass `Σ_j G(x_j)`.
    fn mass(&self) -> f64;

    /// Number of non-zero coordinates.
    fn support(&self) -> usize;

    /// The universe, counters, mass, and support as one protocol-shaped
    /// report (the wire-version-2 `Stats` response body).
    fn service_stats(&self) -> ServiceStats {
        let stats = self.stats();
        ServiceStats {
            universe: self.universe() as u64,
            updates: stats.updates,
            batches: stats.batches,
            samples: stats.samples,
            fails: stats.fails,
            merges: stats.merges,
            mass: self.mass(),
            support: self.support() as u64,
            // Local-view fields: the engine has no notion of requests or
            // process uptime; `pts-server` fills these when it answers a
            // Stats request (never on the wire — see PROTOCOL.md §3).
            requests_served: 0,
            uptime_secs: 0,
        }
    }

    /// Serializes the engine's complete state as one framed checkpoint
    /// payload (see `DESIGN.md` S29). `&mut self` because the concurrent
    /// front-end must flush to quiescence first.
    fn checkpoint_bytes(&mut self) -> std::io::Result<Vec<u8>>;

    /// Replaces this engine's state with a previously captured checkpoint.
    /// Malformed or wrong-factory bytes leave the engine **unchanged** and
    /// return the [`WireError`].
    fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError>;
}

/// Both front-ends implement the service surface by delegation; the bounds
/// are exactly what checkpoint/restore require of the factory.
mod impls {
    use super::*;
    use crate::concurrent::ConcurrentEngine;
    use crate::engine::ShardedEngine;
    use crate::factory::SamplerFactory;
    use pts_util::wire::{Decode, Encode};

    impl<F> SamplingService for ShardedEngine<F>
    where
        F: SamplerFactory + Encode + Decode,
        F::Sampler: Encode + Decode,
    {
        fn universe(&self) -> usize {
            self.config().universe
        }

        fn ingest_batch(&mut self, batch: &[Update]) {
            ShardedEngine::ingest_batch(self, batch);
        }

        fn sample(&mut self) -> Option<Sample> {
            ShardedEngine::sample(self)
        }

        fn snapshot(&self) -> EngineSnapshot {
            ShardedEngine::snapshot(self)
        }

        fn stats(&self) -> EngineStats {
            ShardedEngine::stats(self)
        }

        fn mass(&self) -> f64 {
            ShardedEngine::mass(self)
        }

        fn support(&self) -> usize {
            ShardedEngine::support(self)
        }

        fn checkpoint_bytes(&mut self) -> std::io::Result<Vec<u8>> {
            let mut bytes = Vec::new();
            ShardedEngine::checkpoint(self, &mut bytes)?;
            Ok(bytes)
        }

        fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
            *self = ShardedEngine::restore(&mut &bytes[..])?;
            Ok(())
        }
    }

    impl<F> SamplingService for ConcurrentEngine<F>
    where
        F: SamplerFactory + Encode + Decode + Send + 'static,
        F::Sampler: Encode + Decode + Send + 'static,
    {
        fn universe(&self) -> usize {
            self.config().universe
        }

        fn ingest_batch(&mut self, batch: &[Update]) {
            ConcurrentEngine::ingest_batch(self, batch);
        }

        fn sample(&mut self) -> Option<Sample> {
            ConcurrentEngine::sample(self)
        }

        fn snapshot(&self) -> EngineSnapshot {
            ConcurrentEngine::snapshot(self)
        }

        fn stats(&self) -> EngineStats {
            ConcurrentEngine::stats(self)
        }

        fn mass(&self) -> f64 {
            ConcurrentEngine::mass(self)
        }

        fn support(&self) -> usize {
            ConcurrentEngine::support(self)
        }

        fn checkpoint_bytes(&mut self) -> std::io::Result<Vec<u8>> {
            let mut bytes = Vec::new();
            ConcurrentEngine::checkpoint(self, &mut bytes)?;
            Ok(bytes)
        }

        fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
            *self = ConcurrentEngine::restore(&mut &bytes[..])?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::ShardedEngine;
    use crate::factory::L0Factory;
    use crate::ConcurrentEngine;

    /// A driver written only against the trait: both front-ends serve it,
    /// and checkpoint → restore round-trips through bytes.
    fn drive<S: SamplingService>(engine: &mut S) {
        assert_eq!(engine.universe(), 32);
        engine.ingest_batch(&[Update::new(3, 5), Update::new(17, -2)]);
        let s = engine.sample().expect("non-zero state samples");
        assert!(s.index == 3 || s.index == 17);
        let report = engine.service_stats();
        assert_eq!(report.universe, 32);
        assert_eq!(report.updates, 2);
        assert_eq!(report.support, 2);
        assert!(report.mass > 0.0);
        assert_eq!(report.samples + report.fails, 1);

        let bytes = engine.checkpoint_bytes().expect("encodable factory");
        engine.ingest_batch(&[Update::new(3, -5)]);
        assert_eq!(engine.support(), 1);
        // Restore rolls the extra ingest back.
        engine
            .restore_bytes(&bytes)
            .expect("own checkpoint restores");
        assert_eq!(engine.support(), 2);
        assert_eq!(engine.snapshot().entries(), &[(3, 5), (17, -2)]);

        // Garbage neither panics nor clobbers state.
        assert!(engine.restore_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert_eq!(engine.support(), 2);
    }

    #[test]
    fn both_front_ends_serve_the_trait() {
        let config = EngineConfig::new(32).shards(2).pool_size(2).seed(9);
        drive(&mut ShardedEngine::new(config, L0Factory::default()));
        drive(&mut ConcurrentEngine::new(config, L0Factory::default()));
    }
}
