//! # pts-engine
//!
//! A sharded, mergeable, **always-queryable** sampling engine over the
//! WXZ25 perfect samplers — the serving layer that turns the paper's
//! one-shot, single-threaded sampler objects into a continuously-ingesting
//! service (DESIGN.md, "Engine architecture").
//!
//! Three properties of the substrate make the design correct:
//!
//! * **Linearity** — every sampler is a linear sketch
//!   (`sketch(x+y) = sketch(x) ⊕ sketch(y)`), so hash-partitioned shards,
//!   merged snapshots, and replayed compact state all reproduce exactly the
//!   state of one sampler that saw the whole stream.
//! * **Perfectness** — the in-shard law is exactly `G(x_i)/mass(shard)`, so
//!   composing it with a mass-proportional shard pick yields the global law
//!   `G(x_i)/Σ_j G(x_j)` for any shard count, up to the per-shard FAIL
//!   factor `(1 − δ_s^k)` the pool suppresses (see [`engine`] docs).
//! * **Seed-determinism** — instances are cheap to respawn from a compact
//!   net vector with fresh seeds, which converts one-shot samplers into a
//!   pool serving unlimited queries over the stream's lifetime (the
//!   repeated-draw semantics of \[JWZ21\] and the query-at-any-time
//!   semantics of \[HTY14\], engineered rather than re-proved).
//!
//! ## Data path
//!
//! ```text
//!            ingest_batch(&[Update])
//!                     │
//!              [ ShardRouter ]        hash-partition + per-shard
//!                /    │    \          reorder & coalesce
//!            shard₀ shard₁ … shard_S
//!            │ pool │ pool │ pool     k one-shot samplers each,
//!            │ +net │ +net │ +net     lazily respawned from `net`
//!                     │
//!         sample() ── mass-weighted shard pick, in-shard draw
//!         snapshot()/merge() ── compact exact state, router-agnostic
//! ```
//!
//! Two front-ends drive this data path: [`ShardedEngine`] applies the
//! per-shard runs sequentially, and [`ConcurrentEngine`] owns one worker
//! thread per shard and fans them out over channels — same seeds, same
//! plans, bit-identical outputs (see the [`concurrent`] module docs for
//! the consistency model).
//!
//! ## Quickstart
//!
//! ```
//! use pts_engine::{EngineConfig, L0Factory, ShardedEngine};
//! use pts_stream::Update;
//!
//! let mut engine = ShardedEngine::new(
//!     EngineConfig::new(1 << 10).shards(4).pool_size(2).seed(7),
//!     L0Factory::default(),
//! );
//! engine.ingest_batch(&[Update::new(3, 5), Update::new(900, -2)]);
//! let s = engine.sample().expect("non-zero state samples");
//! assert!(s.index == 3 || s.index == 900);
//! // Still streaming? Keep querying — instances respawn as consumed.
//! engine.ingest_batch(&[Update::new(3, -5)]);
//! assert_eq!(engine.sample().unwrap().index, 900);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod concurrent;
pub mod config;
pub mod engine;
pub mod factory;
mod obs;
pub mod pool;
pub mod router;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod worker;

pub use concurrent::ConcurrentEngine;
pub use config::EngineConfig;
pub use engine::{pick_by_mass, EngineStats, ShardedEngine};
pub use factory::{L0Factory, LogGFactory, LpLe2Factory, PerfectLpFactory, SamplerFactory};
pub use pool::SamplerPool;
pub use router::ShardRouter;
pub use service::SamplingService;
pub use shard::{Shard, ShardState};
pub use snapshot::EngineSnapshot;
pub use worker::ShardReport;
