//! Engine snapshots: the merge layer's wire format.
//!
//! A snapshot is the engine's compact exact state — the sparse net
//! frequency vector of everything it has ingested — flattened across
//! shards. Merging a snapshot into another engine routes the entries
//! through that engine's own ingest path, so by linearity
//! `merge(snapshot(A)) ≡ ingest(stream(A))`: two engines that each saw half
//! a stream combine into exactly the engine that saw all of it. Because the
//! payload is router-agnostic, the two engines do **not** need the same
//! shard count — a 16-shard ingest tier can snapshot into a 2-shard
//! query tier.

use pts_stream::{FrequencyVector, Update};

/// A compact, mergeable capture of an engine's ingested state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    universe: usize,
    /// Sorted sparse `(index, net value)` entries.
    entries: Vec<(u64, i64)>,
}

impl EngineSnapshot {
    /// Builds a snapshot from per-shard entry iterators (crate-internal).
    pub(crate) fn from_entries(universe: usize, mut entries: Vec<(u64, i64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        entries.retain(|&(_, v)| v != 0);
        Self { universe, entries }
    }

    /// The universe size the snapshot was taken over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of non-zero coordinates captured.
    pub fn support(&self) -> usize {
        self.entries.len()
    }

    /// The sorted sparse entries.
    pub fn entries(&self) -> &[(u64, i64)] {
        &self.entries
    }

    /// The snapshot as a bulk-update sequence (one update per non-zero).
    pub fn to_updates(&self) -> Vec<Update> {
        self.entries
            .iter()
            .map(|&(i, v)| Update::new(i, v))
            .collect()
    }

    /// The snapshot as a dense exact frequency vector.
    pub fn to_vector(&self) -> FrequencyVector {
        let mut x = FrequencyVector::zeros(self.universe);
        for &(i, v) in &self.entries {
            x.apply(Update::new(i, v));
        }
        x
    }

    /// Size of the serialized payload in bits (128 per entry).
    pub fn space_bits(&self) -> usize {
        self.entries.len() * 128 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_sorted_and_nonzero() {
        let s = EngineSnapshot::from_entries(16, vec![(9, 2), (1, -3), (4, 0)]);
        assert_eq!(s.entries(), &[(1, -3), (9, 2)]);
        assert_eq!(s.support(), 2);
        assert_eq!(s.universe(), 16);
    }

    #[test]
    fn vector_roundtrip() {
        let s = EngineSnapshot::from_entries(8, vec![(2, 5), (7, -1)]);
        let x = s.to_vector();
        assert_eq!(x.value(2), 5);
        assert_eq!(x.value(7), -1);
        assert_eq!(x.f0(), 2);
        assert_eq!(s.to_updates().len(), 2);
    }
}
