//! Engine snapshots: the merge layer's wire format.
//!
//! A snapshot is the engine's compact exact state — the sparse net
//! frequency vector of everything it has ingested — flattened across
//! shards. Merging a snapshot into another engine routes the entries
//! through that engine's own ingest path, so by linearity
//! `merge(snapshot(A)) ≡ ingest(stream(A))`: two engines that each saw half
//! a stream combine into exactly the engine that saw all of it. Because the
//! payload is router-agnostic, the two engines do **not** need the same
//! shard count — a 16-shard ingest tier can snapshot into a 2-shard
//! query tier.

use pts_stream::{FrequencyVector, Update};
use pts_util::wire::{
    read_frame, write_frame, Decode, Encode, WireError, WireReader, WireWriter, KIND_SNAPSHOT,
};

/// A compact, mergeable capture of an engine's ingested state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    universe: usize,
    /// Sorted sparse `(index, net value)` entries.
    entries: Vec<(u64, i64)>,
}

impl EngineSnapshot {
    /// Builds a snapshot from per-shard entry iterators (crate-internal).
    pub(crate) fn from_entries(universe: usize, mut entries: Vec<(u64, i64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        entries.retain(|&(_, v)| v != 0);
        Self { universe, entries }
    }

    /// The universe size the snapshot was taken over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of non-zero coordinates captured.
    pub fn support(&self) -> usize {
        self.entries.len()
    }

    /// The sorted sparse entries.
    pub fn entries(&self) -> &[(u64, i64)] {
        &self.entries
    }

    /// The snapshot as a bulk-update sequence (one update per non-zero).
    pub fn to_updates(&self) -> Vec<Update> {
        self.entries
            .iter()
            .map(|&(i, v)| Update::new(i, v))
            .collect()
    }

    /// The snapshot as a dense exact frequency vector.
    pub fn to_vector(&self) -> FrequencyVector {
        let mut x = FrequencyVector::zeros(self.universe);
        for &(i, v) in &self.entries {
            x.apply(Update::new(i, v));
        }
        x
    }

    /// Size of the serialized payload in bits (128 per entry).
    pub fn space_bits(&self) -> usize {
        self.entries.len() * 128 + 64
    }

    /// The snapshot as a framed, checksummed wire payload — what actually
    /// leaves the machine. Entries are gap+zigzag varint coded, so the byte
    /// count tracks the true information content (≈ support · (Δindex +
    /// value) bytes), usually far below the 128-bit-per-entry accounting of
    /// [`EngineSnapshot::space_bits`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = WireWriter::new();
        self.encode(&mut payload).expect("snapshot always encodes");
        let mut out = Vec::with_capacity(payload.len() + 16);
        write_frame(KIND_SNAPSHOT, payload.as_bytes(), &mut out).expect("vec write");
        out
    }

    /// Decodes a payload produced by [`EngineSnapshot::to_bytes`].
    /// Truncated, corrupted, or version-bumped bytes return a
    /// [`WireError`]; decode never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let payload = read_frame(KIND_SNAPSHOT, &mut &bytes[..])?;
        Self::from_wire_bytes(&payload)
    }
}

impl Encode for EngineSnapshot {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.universe);
        w.put_usize(self.entries.len());
        let mut prev = 0u64;
        for (k, &(i, v)) in self.entries.iter().enumerate() {
            w.put_u64(if k == 0 { i } else { i - prev - 1 });
            w.put_i64(v);
            prev = i;
        }
        Ok(())
    }
}

impl Decode for EngineSnapshot {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let universe = r.get_usize()?;
        if universe < 2 {
            return Err(WireError::Invalid("snapshot universe"));
        }
        let support = r.get_len(2)?;
        let mut entries = Vec::with_capacity(support);
        let mut prev = 0u64;
        for k in 0..support {
            let gap = r.get_u64()?;
            let i = if k == 0 {
                gap
            } else {
                prev.checked_add(gap)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(WireError::Invalid("snapshot gap overflow"))?
            };
            let v = r.get_i64()?;
            if v == 0 {
                return Err(WireError::Invalid("zero entry in snapshot"));
            }
            if (i as u128) >= universe as u128 {
                return Err(WireError::Invalid("snapshot entry outside universe"));
            }
            entries.push((i, v));
            prev = i;
        }
        Ok(Self { universe, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_sorted_and_nonzero() {
        let s = EngineSnapshot::from_entries(16, vec![(9, 2), (1, -3), (4, 0)]);
        assert_eq!(s.entries(), &[(1, -3), (9, 2)]);
        assert_eq!(s.support(), 2);
        assert_eq!(s.universe(), 16);
    }

    #[test]
    fn vector_roundtrip() {
        let s = EngineSnapshot::from_entries(8, vec![(2, 5), (7, -1)]);
        let x = s.to_vector();
        assert_eq!(x.value(2), 5);
        assert_eq!(x.value(7), -1);
        assert_eq!(x.f0(), 2);
        assert_eq!(s.to_updates().len(), 2);
    }
}
