//! The concurrent front-end: per-shard worker threads behind the same
//! two-stage sampling engine.
//!
//! [`ConcurrentEngine`] is [`crate::ShardedEngine`]'s thread-parallel
//! sibling. The decomposition is identical — a [`ShardRouter`] plans each
//! batch into per-shard coalesced runs — but instead of applying the runs
//! one after another, the engine owns one worker thread per shard
//! ([`crate::worker`]) and fans the runs out over `std::sync::mpsc`
//! channels. Linearity is what makes this safe: per-shard application
//! commutes across shards (disjoint coordinate slices), so any interleaving
//! of shard-local work reproduces exactly the sequential engine's state.
//!
//! ## Consistency model
//!
//! * **Per-shard FIFO.** A worker processes its queue in order, so every
//!   query enqueued after a set of applies observes all of them.
//! * **Cross-shard consistent cuts.** All engine methods take `&mut self`,
//!   so no applies race a query: at query time every apply of every prior
//!   batch is already *enqueued*, and per-shard FIFO turns the
//!   gather-masses step of [`ConcurrentEngine::sample`] into a consistent
//!   snapshot of per-shard `G`-masses — the same masses the sequential
//!   engine would report.
//! * **Pipelined ingest.** `ingest_batch` returns once the batch is
//!   enqueued (bounded in-flight depth, recycled buffers), overlapping
//!   router planning of batch `k+1` with shard application of batch `k`.
//!   Call [`ConcurrentEngine::flush`] to wait for quiescence — benchmarks
//!   must, before stopping the clock.
//!
//! Determinism: given the same config, factory, and call sequence, the
//! concurrent engine produces **bit-identical** samples, masses, snapshots,
//! and stats to `ShardedEngine` (property-tested in
//! `tests/concurrent_equivalence.rs`) — threads change *when* shard state
//! advances, never *what* it advances to.
//!
//! ```
//! use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
//! use pts_stream::Update;
//!
//! let mut engine = ConcurrentEngine::new(
//!     EngineConfig::new(1 << 10).shards(4).pool_size(2).seed(7),
//!     L0Factory::default(),
//! );
//! engine.ingest_batch(&[Update::new(3, 5), Update::new(900, -2)]);
//! let s = engine.sample().expect("non-zero state samples");
//! assert!(s.index == 3 || s.index == 900);
//! engine.prime(); // parallel pool catch-up across all shards
//! ```

use crate::config::EngineConfig;
use crate::engine::{EngineImage, EngineStats};
use crate::factory::SamplerFactory;
use crate::obs::obs;
use crate::router::ShardRouter;
use crate::shard::Shard;
use crate::snapshot::EngineSnapshot;
use crate::worker::{Request, ShardReport, ShardWorker};
use pts_samplers::Sample;
use pts_stream::{Stream, Update};
use pts_util::wire::{Decode, Encode, WireError};
use pts_util::{derive_seed, Xoshiro256pp};
use std::sync::mpsc::{channel, Receiver, Sender};

/// How many per-shard runs may be in flight before `ingest_batch` blocks
/// on acknowledgements (as a multiple of the shard count — i.e. this many
/// batches deep). Bounds queue memory without stalling the pipeline.
const MAX_BATCHES_IN_FLIGHT: usize = 4;

/// A sharded engine whose shards live on worker threads.
///
/// Same API and same outputs as [`crate::ShardedEngine`] (see the module
/// docs for the determinism contract); ingest is pipelined across per-shard
/// workers, and pool catch-up ([`ConcurrentEngine::prime`]) runs on all
/// shards in parallel.
#[derive(Debug)]
pub struct ConcurrentEngine<F: SamplerFactory> {
    config: EngineConfig,
    factory: F,
    router: ShardRouter,
    workers: Vec<ShardWorker>,
    /// Scatter scratch for router planning (buffers are moved out to
    /// workers and replaced from `spare`).
    plan: Vec<Vec<Update>>,
    /// Cleared run buffers returned by workers, awaiting reuse.
    spare: Vec<Vec<Update>>,
    /// Acknowledgement channel: workers return emptied run buffers here.
    ack_tx: Sender<Vec<Update>>,
    ack_rx: Receiver<Vec<Update>>,
    /// Runs enqueued but not yet acknowledged.
    in_flight: usize,
    /// Drives shard selection at query time (same stream as the sequential
    /// engine, so selections agree draw for draw).
    rng: Xoshiro256pp,
    stats: EngineStats,
}

impl<F> ConcurrentEngine<F>
where
    F: SamplerFactory + Send + 'static + Encode,
    F::Sampler: Send + 'static + Encode,
{
    /// Builds the engine and spawns one worker thread per shard. Shard
    /// seeds match [`crate::ShardedEngine::new`] exactly.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn new(config: EngineConfig, factory: F) -> Self {
        config.validate();
        let router = ShardRouter::new(config.shards, derive_seed(config.seed, 0x5A4D));
        let workers = (0..config.shards)
            .map(|s| {
                ShardWorker::spawn(Shard::new(
                    factory.clone(),
                    config.universe,
                    config.pool_size,
                    derive_seed(config.seed, 0x10_000 + s as u64),
                ))
            })
            .collect();
        let plan = (0..config.shards).map(|_| Vec::new()).collect();
        let (ack_tx, ack_rx) = channel();
        let rng = Xoshiro256pp::from_seed_stream(config.seed, 0xD4A3);
        Self {
            config,
            factory,
            router,
            workers,
            plan,
            spare: Vec::new(),
            ack_tx,
            ack_rx,
            in_flight: 0,
            rng,
            stats: EngineStats::default(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The sampler factory.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// Running counters. Ingest counters advance at enqueue time; queued
    /// work is reflected in shard state once applied (see
    /// [`ConcurrentEngine::flush`]).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Ingests a batch of turnstile updates: planned into per-shard runs on
    /// the caller thread, applied on the shard workers. Returns once the
    /// batch is enqueued (bounded pipeline depth) — per-shard FIFO makes
    /// every later query observe it.
    ///
    /// # Panics
    /// Panics if any update addresses a coordinate outside the universe.
    pub fn ingest_batch(&mut self, batch: &[Update]) {
        self.apply_batch(batch);
        self.stats.updates += batch.len() as u64;
        self.stats.batches += 1;
        let o = obs();
        o.ingest_updates.add(batch.len() as u64);
        o.ingest_batches.inc();
    }

    /// Plans and fans out a batch without touching the ingest counters
    /// (shared by stream ingest and snapshot merging).
    fn apply_batch(&mut self, batch: &[Update]) {
        assert!(
            batch
                .iter()
                .all(|u| (u.index as usize) < self.config.universe),
            "update outside universe"
        );
        self.router.plan_batch(batch, &mut self.plan);
        for s in 0..self.workers.len() {
            if self.plan[s].is_empty() {
                continue;
            }
            let run = std::mem::replace(&mut self.plan[s], self.spare.pop().unwrap_or_default());
            self.workers[s].send(Request::Apply {
                run,
                done: self.ack_tx.clone(),
            });
            self.in_flight += 1;
        }
        // Recycle whatever is already done, then enforce the pipeline bound.
        while let Ok(buf) = self.ack_rx.try_recv() {
            self.in_flight -= 1;
            self.spare.push(buf);
        }
        let cap = MAX_BATCHES_IN_FLIGHT * self.workers.len();
        while self.in_flight > cap {
            let buf = self.ack_rx.recv().expect("shard worker thread died");
            self.in_flight -= 1;
            self.spare.push(buf);
        }
    }

    /// Blocks until every enqueued run has been applied to its shard.
    /// Queries do not need this (per-shard FIFO already orders them after
    /// prior applies); throughput measurements do, before stopping the
    /// clock.
    pub fn flush(&mut self) {
        while self.in_flight > 0 {
            let buf = self.ack_rx.recv().expect("shard worker thread died");
            self.in_flight -= 1;
            self.spare.push(buf);
        }
    }

    /// Ingests a single update (a one-element batch; prefer
    /// [`ConcurrentEngine::ingest_batch`] on the hot path).
    pub fn process(&mut self, u: Update) {
        self.ingest_batch(&[u]);
    }

    /// Ingests a whole stream in batches of `batch_len`.
    pub fn ingest_stream(&mut self, stream: &Stream, batch_len: usize) {
        for chunk in stream.batches(batch_len) {
            self.ingest_batch(chunk);
        }
    }

    /// Gathers one consistent report per shard: requests fan out first,
    /// then replies are collected in shard order, so shards compute their
    /// reports concurrently.
    fn reports(&self) -> Vec<ShardReport> {
        let receivers: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                let (reply, rx) = channel();
                w.send(Request::Report { reply });
                rx
            })
            .collect();
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker thread died"))
            .collect()
    }

    /// Gathers the per-shard masses only — the query hot path, so it uses
    /// the lightweight [`Request::Mass`] rather than a full report (whose
    /// `space_bits` walks every live sampler's sketch tree).
    fn masses(&self) -> Vec<f64> {
        let receivers: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                let (reply, rx) = channel();
                w.send(Request::Mass { reply });
                rx
            })
            .collect();
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker thread died"))
            .collect()
    }

    /// The exact global `G`-mass `Σ_j G(x_j)` of everything ingested.
    pub fn mass(&self) -> f64 {
        self.masses().iter().sum()
    }

    /// Per-shard masses (diagnostics; order matches shard ids).
    pub fn shard_masses(&self) -> Vec<f64> {
        self.masses()
    }

    /// Number of non-zero coordinates across all shards.
    pub fn support(&self) -> usize {
        self.reports().iter().map(|r| r.support).sum()
    }

    /// Draws one sample from the global law `G(x_i)/Σ_j G(x_j)` — the same
    /// two-stage draw as [`crate::ShardedEngine::sample`]: the consistent
    /// per-shard mass snapshot weights the shard pick, then the chosen
    /// shard's worker draws from its pool. Returns `None` on the zero
    /// vector or when the chosen shard's entire pool FAILs.
    pub fn sample(&mut self) -> Option<Sample> {
        let sw = pts_obs::Stopwatch::start();
        let masses = self.masses();
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Shard pick ∝ mass — literally the sequential engine's code.
        let chosen = crate::engine::pick_by_mass(&mut self.rng, &masses, total);
        let (reply, rx) = channel();
        self.workers[chosen].send(Request::Draw { reply });
        let out = rx.recv().expect("shard worker thread died");
        let o = obs();
        o.draw_ns.observe_elapsed(sw);
        match out {
            Some(_) => self.stats.samples += 1,
            None => {
                self.stats.fails += 1;
                o.draw_fail.inc();
            }
        }
        out
    }

    /// Eagerly respawns every consumed pool slot, **in parallel across
    /// shards** — each worker replays its own net vector concurrently,
    /// which is exactly the serial hot spot of the sequential engine's lazy
    /// respawn path. Returns the number of slots refilled.
    pub fn prime(&mut self) -> usize {
        let receivers: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                let (reply, rx) = channel();
                w.send(Request::Prime { reply });
                rx
            })
            .collect();
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker thread died"))
            .sum()
    }

    /// Serializes the engine's complete state — same payload as
    /// [`crate::ShardedEngine::checkpoint`], so either front-end can
    /// restore it. Shards encode their own state on their worker threads,
    /// in parallel.
    ///
    /// **Quiescence guarantee (documented, release-mode-checked).**
    /// [`ConcurrentEngine::flush`] is the engine's only quiescence point,
    /// and `checkpoint` invokes it first: every enqueued run is applied
    /// before any shard serializes, so a checkpoint can never observe a
    /// torn shard. (Per-shard FIFO alone already orders each shard's
    /// encoding after its pending applies; the flush additionally pins the
    /// *stats* counters to the shard state so the restored engine's
    /// counters match its contents.) Because all engine methods take
    /// `&mut self`, no ingest can race this call on a correctly shared
    /// engine — but a server path funnels checkpoint requests from remote
    /// clients, so the guarantee is verified in release builds too: if a
    /// run is somehow still in flight after the flush, `checkpoint`
    /// returns an [`std::io::ErrorKind::InvalidData`] error (carrying a
    /// [`WireError`]) instead of serializing a torn state — never a
    /// `debug_assert` that release builds would skip.
    pub fn checkpoint<W: std::io::Write>(&mut self, sink: &mut W) -> std::io::Result<()> {
        self.flush();
        if self.in_flight != 0 {
            return Err(WireError::Invalid(
                "checkpoint requires quiescence: runs still in flight after flush",
            )
            .into());
        }
        let receivers: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                let (reply, rx) = channel();
                w.send(Request::Checkpoint { reply });
                rx
            })
            .collect();
        let states = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker thread died"));
        // Collect first: lazily interleaving recv with sink writes would
        // hold the frame open across worker round-trips for no benefit.
        let states: Vec<Result<Vec<u8>, WireError>> = states.collect();
        let mut counted = pts_obs::CountingWriter::new(sink);
        EngineImage::write_checkpoint(
            self.config,
            &self.factory,
            &self.rng,
            self.stats,
            states.into_iter(),
            &mut counted,
        )?;
        obs().checkpoint_bytes.add(counted.count());
        Ok(())
    }

    /// Rebuilds a concurrent engine from a checkpoint written by either
    /// front-end: shards are decoded, then moved onto fresh worker threads.
    /// Malformed input returns a [`WireError`] and never panics.
    pub fn restore<R: std::io::Read>(src: &mut R) -> Result<Self, WireError>
    where
        F: Decode,
        F::Sampler: Decode,
    {
        let mut counted = pts_obs::CountingReader::new(src);
        let image: EngineImage<F> = EngineImage::read_checkpoint(&mut counted)?;
        obs().restore_bytes.add(counted.count());
        let router = ShardRouter::new(image.config.shards, derive_seed(image.config.seed, 0x5A4D));
        let workers = image.shards.into_iter().map(ShardWorker::spawn).collect();
        let plan = (0..image.config.shards).map(|_| Vec::new()).collect();
        let (ack_tx, ack_rx) = channel();
        Ok(Self {
            config: image.config,
            factory: image.factory,
            router,
            workers,
            plan,
            spare: Vec::new(),
            ack_tx,
            ack_rx,
            in_flight: 0,
            rng: image.rng,
            stats: image.stats,
        })
    }

    /// Captures the engine's compact exact state for shipping to another
    /// engine (see [`EngineSnapshot`]); shards serialize their slices
    /// concurrently.
    ///
    /// Consistency: snapshot requests ride the same per-shard FIFO queues
    /// as applies, so the capture reflects every batch enqueued before the
    /// call even while ingest is still pipelined. For a *full-state*
    /// capture with pinned counters, use [`ConcurrentEngine::checkpoint`],
    /// which flushes to quiescence first.
    pub fn snapshot(&self) -> EngineSnapshot {
        let receivers: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                let (reply, rx) = channel();
                w.send(Request::Entries { reply });
                rx
            })
            .collect();
        let entries: Vec<(u64, i64)> = receivers
            .into_iter()
            .flat_map(|rx| rx.recv().expect("shard worker thread died"))
            .collect();
        EngineSnapshot::from_entries(self.config.universe, entries)
    }

    /// Merges another engine's snapshot into this one (see
    /// [`crate::ShardedEngine::merge`] — identical semantics and identical
    /// resulting state).
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn merge(&mut self, snapshot: &EngineSnapshot) {
        assert_eq!(
            self.config.universe,
            snapshot.universe(),
            "universe mismatch"
        );
        let updates = snapshot.to_updates();
        for chunk in updates.chunks(4096) {
            self.apply_batch(chunk);
        }
        self.stats.merges += 1;
        obs().merges.inc();
    }

    /// Total respawns (lazy and eager) across all shard pools.
    pub fn respawns(&self) -> u64 {
        self.reports().iter().map(|r| r.respawns).sum()
    }

    /// Engine state size in bits: live sampler sketches plus compact state.
    pub fn space_bits(&self) -> usize {
        self.reports().iter().map(|r| r.space_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{L0Factory, LpLe2Factory};
    use pts_stream::FrequencyVector;

    fn config(n: usize, shards: usize) -> EngineConfig {
        EngineConfig::new(n).shards(shards).pool_size(2).seed(11)
    }

    #[test]
    fn ingest_and_mass_match_ground_truth() {
        let f = LpLe2Factory::for_universe(64, 2.0);
        let mut e = ConcurrentEngine::new(config(64, 4), f);
        let x = pts_stream::gen::zipf_vector(64, 1.0, 50, 21);
        let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
        e.ingest_batch(&updates);
        assert!((e.mass() - x.f2()).abs() < 1e-6 * x.f2());
        assert_eq!(e.support(), x.f0());
        assert_eq!(e.stats().updates, updates.len() as u64);
    }

    #[test]
    fn queries_observe_enqueued_ingest_without_flush() {
        let f = L0Factory::default();
        let mut e = ConcurrentEngine::new(config(32, 2), f);
        // Many tiny batches deep into the pipeline, then query immediately:
        // per-shard FIFO must make every one visible.
        for i in 0..32u64 {
            e.ingest_batch(&[Update::new(i, 1)]);
        }
        assert_eq!(e.support(), 32);
        e.flush();
        assert_eq!(e.support(), 32);
    }

    #[test]
    fn sample_mid_stream_and_repeatedly() {
        let f = L0Factory::default();
        let mut e = ConcurrentEngine::new(config(32, 2), f);
        e.ingest_batch(&[Update::new(3, 5), Update::new(17, -2)]);
        let s1 = e.sample().expect("non-zero state must sample");
        assert!(s1.index == 3 || s1.index == 17);
        e.ingest_batch(&[Update::new(3, -5)]);
        for _ in 0..8 {
            let s = e.sample().expect("index 17 survives");
            assert_eq!(s.index, 17);
            assert_eq!(s.estimate, -2.0);
        }
        assert!(e.respawns() > 0, "repeated draws must trigger respawns");
    }

    #[test]
    fn prime_refills_all_shards_in_parallel() {
        let f = L0Factory::default();
        let mut e = ConcurrentEngine::new(config(64, 4), f);
        let updates: Vec<Update> = (0..64).map(|i| Update::new(i, 1 + i as i64)).collect();
        e.ingest_batch(&updates);
        // Consume instances across shards, then catch up everywhere at once.
        for _ in 0..8 {
            let _ = e.sample();
        }
        let refilled = e.prime();
        assert!(refilled > 0, "consumed slots must refill");
        assert_eq!(e.prime(), 0, "second prime finds a full pool");
    }

    #[test]
    fn zero_vector_returns_none() {
        let f = L0Factory::default();
        let mut e = ConcurrentEngine::new(config(16, 2), f);
        assert!(e.sample().is_none());
        e.ingest_batch(&[Update::new(4, 9), Update::new(4, -9)]);
        assert!(e.sample().is_none());
        assert_eq!(e.mass(), 0.0);
    }

    #[test]
    fn snapshot_merge_round_trips_across_engine_kinds() {
        let f = L0Factory::default();
        let x = pts_stream::gen::zipf_vector(64, 1.1, 40, 31);
        let mut a = ConcurrentEngine::new(config(64, 4), f);
        let xu: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
        a.ingest_batch(&xu);
        // Concurrent → sequential and back: both directions are exact.
        let snap = a.snapshot();
        let mut seq = crate::ShardedEngine::new(config(64, 2).seed(99), f);
        seq.merge(&snap);
        assert_eq!(seq.snapshot().to_vector(), x);
        let mut back = ConcurrentEngine::new(config(64, 1).seed(7), f);
        back.merge(&seq.snapshot());
        assert_eq!(back.snapshot().to_vector(), x);
        assert_eq!(back.stats().merges, 1);
        assert_eq!(back.stats().updates, 0, "merges are not ingested updates");
    }

    #[test]
    fn deep_pipeline_is_bounded_and_flushes() {
        let f = L0Factory::default();
        let mut e = ConcurrentEngine::new(config(256, 4), f);
        let x = FrequencyVector::from_values({
            let mut v = vec![0i64; 256];
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = (i as i64 % 5) - 2;
            }
            v
        });
        let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
        for _ in 0..50 {
            e.ingest_batch(&updates);
            let negated: Vec<Update> = updates
                .iter()
                .map(|u| Update::new(u.index, -u.delta))
                .collect();
            e.ingest_batch(&negated);
        }
        e.flush();
        assert_eq!(e.support(), 0, "everything cancelled");
        assert_eq!(e.mass(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_updates_rejected() {
        let f = L0Factory::default();
        let mut e = ConcurrentEngine::new(config(16, 2), f);
        e.ingest_batch(&[Update::new(16, 1)]);
    }
}
