//! One shard: a sampler pool plus the compact exact state that makes the
//! pool respawnable and the shard's `G`-mass known.
//!
//! The shard keeps the *net frequency vector of its own slice of the
//! universe* as a sparse map. This single structure serves three roles:
//!
//! 1. **Replay buffer** for lazy respawn — a fresh sampler instance catches
//!    up by ingesting the net vector, which by linearity is exactly the
//!    state it would have reached streaming from the start.
//! 2. **Mass oracle** for the merge layer — the exact `Σ_i G(x_i)` over the
//!    shard's slice, maintained incrementally per update, is the weight the
//!    engine uses to pick a shard before sampling within it.
//! 3. **Snapshot payload** — the entries are what `snapshot()` ships to a
//!    coordinator.
//!
//! ## Ownership model
//!
//! A shard **owns everything it needs to evolve**: its factory copy, its
//! universe bound, its pool, and its net state. Nothing outside the shard
//! may mutate the net vector or the live instances — every mutation goes
//! through [`Shard::apply_run`] (which advances compact state, mass, and
//! live instances *in lockstep*) or [`Shard::draw`]/[`Shard::prime`] (which
//! only consume/respawn pool instances and never touch the net state).
//! This is what makes a shard a unit of concurrency: hand the whole value
//! to a worker thread and the lockstep invariant cannot be violated from
//! outside. The [`ShardState`] trait is the narrow, object-safe,
//! `Send`-able surface the concurrent front-end's workers drive.
//!
//! Space accounting: the sparse net state is `O(nnz)` for the shard's
//! slice — this is the price of always-queryable respawn, paid once per
//! shard regardless of pool size, and it is the engine's only non-sketch
//! state.

use crate::factory::SamplerFactory;
use crate::pool::SamplerPool;
use pts_samplers::Sample;
use pts_stream::Update;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// The narrow surface a shard exposes to a driver that owns it exclusively
/// (the sequential engine, or one worker thread of the concurrent engine).
///
/// Everything a worker can be asked to do is here and nothing more: apply a
/// coalesced run, draw, eagerly respawn the pool, and report state. The
/// `Send` supertrait is the point — any implementor can be moved onto a
/// worker thread wholesale.
pub trait ShardState: Send {
    /// Applies a coalesced run of updates to compact state, mass, and every
    /// live pool instance, in lockstep.
    fn apply_run(&mut self, run: &[Update]);

    /// Draws one sample from the shard's slice (⊥ retried across the pool).
    fn draw(&mut self) -> Option<Sample>;

    /// Eagerly respawns every consumed pool slot from the net state,
    /// returning how many slots were refilled.
    fn prime(&mut self) -> usize;

    /// The exact `G`-mass of the slice.
    fn mass(&self) -> f64;

    /// Number of non-zero coordinates in the slice.
    fn support(&self) -> usize;

    /// The sparse net entries (sorted by index), materialized for shipping.
    fn snapshot_entries(&self) -> Vec<(u64, i64)>;

    /// Lazy respawns performed by the pool (eager refills included).
    fn respawns(&self) -> u64;

    /// Live pool instances.
    fn live(&self) -> usize;

    /// Sketch bits of live instances plus compact-state bits.
    fn space_bits(&self) -> usize;

    /// The shard's complete wire encoding (factory, net vector, mass, pool
    /// with live instances) — what a checkpoint ships per shard. Produced
    /// on the owning thread, so the concurrent front-end serializes shards
    /// in parallel with zero copying of live state.
    fn encode_state(&self) -> Result<Vec<u8>, WireError>;
}

/// A shard: factory + pool + compact state + incremental mass.
#[derive(Debug, Clone)]
pub struct Shard<F: SamplerFactory> {
    factory: F,
    universe: usize,
    pool: SamplerPool<F::Sampler>,
    /// Sparse net values of this shard's slice (zero entries removed).
    net: BTreeMap<u64, i64>,
    /// Incrementally maintained `Σ_i G(x_i)` over the slice.
    mass: f64,
}

impl<F: SamplerFactory> Shard<F> {
    /// A shard with a primed pool of `pool_size` instances, owning its copy
    /// of the factory.
    pub fn new(factory: F, universe: usize, pool_size: usize, seed: u64) -> Self {
        let mut pool = SamplerPool::new(pool_size, seed);
        let net = BTreeMap::new();
        pool.prime(&factory, universe, &net);
        Self {
            factory,
            universe,
            pool,
            net,
            mass: 0.0,
        }
    }

    /// Applies a coalesced run of updates: compact state, mass, and every
    /// live pool instance advance together.
    pub fn apply_run(&mut self, run: &[Update]) {
        for &u in run {
            debug_assert!(u.delta != 0, "router must drop zero deltas");
            let old = self.net.get(&u.index).copied().unwrap_or(0);
            let new = old + u.delta;
            self.mass += self.factory.weight(new) - self.factory.weight(old);
            if new == 0 {
                self.net.remove(&u.index);
            } else {
                self.net.insert(u.index, new);
            }
            self.pool.process_live(u);
        }
    }

    /// The exact `G`-mass of this shard's slice. Incremental float updates
    /// can leave ~ulp-scale residue once the true mass returns to zero, so
    /// an empty slice reports exactly zero.
    pub fn mass(&self) -> f64 {
        if self.net.is_empty() {
            0.0
        } else {
            self.mass.max(0.0)
        }
    }

    /// Number of non-zero coordinates in the slice.
    pub fn support(&self) -> usize {
        self.net.len()
    }

    /// The universe bound this shard was built over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of pool slots (live or consumed).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The sparse net entries (sorted by index).
    pub fn entries(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.net.iter().map(|(&i, &v)| (i, v))
    }

    /// Draws one sample from this shard's slice (⊥ retried across the
    /// pool; consumed instances respawn lazily from the compact state).
    pub fn draw(&mut self) -> Option<Sample> {
        self.pool.draw(&self.factory, self.universe, &self.net)
    }

    /// Eagerly respawns every consumed pool slot by replaying the net
    /// vector (the same catch-up a lazy respawn would do at the next draw,
    /// done now so draws find live instances). Returns the number of slots
    /// refilled.
    pub fn prime(&mut self) -> usize {
        self.pool.refill(&self.factory, self.universe, &self.net)
    }

    /// Lazy respawns performed by this shard's pool.
    pub fn respawns(&self) -> u64 {
        self.pool.respawns()
    }

    /// Live pool instances.
    pub fn live(&self) -> usize {
        self.pool.live()
    }

    /// Sketch bits of live instances plus compact-state bits (128 per
    /// entry: index + value).
    pub fn space_bits(&self) -> usize {
        self.pool.space_bits() + self.net.len() * 128
    }
}

impl<F> Encode for Shard<F>
where
    F: SamplerFactory + Encode,
    F::Sampler: Encode,
{
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.factory.encode(w)?;
        w.put_usize(self.universe);
        // Raw bits: the incrementally maintained mass carries its exact
        // float history, which recomputation from `net` would not.
        w.put_f64(self.mass);
        w.put_usize(self.net.len());
        let mut prev = 0u64;
        for (k, (&i, &v)) in self.net.iter().enumerate() {
            w.put_u64(if k == 0 { i } else { i - prev - 1 });
            w.put_i64(v);
            prev = i;
        }
        self.pool.encode(w)
    }
}

impl<F> Decode for Shard<F>
where
    F: SamplerFactory + Decode,
    F::Sampler: Decode,
{
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let factory = F::decode(r)?;
        let universe = r.get_usize()?;
        if universe < 2 {
            return Err(WireError::Invalid("shard universe"));
        }
        let mass = r.get_f64()?;
        let support = r.get_len(2)?;
        let mut net = BTreeMap::new();
        let mut prev = 0u64;
        for k in 0..support {
            let gap = r.get_u64()?;
            let i = if k == 0 {
                gap
            } else {
                prev.checked_add(gap)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(WireError::Invalid("net-vector gap overflow"))?
            };
            let v = r.get_i64()?;
            if v == 0 {
                return Err(WireError::Invalid("zero entry in net vector"));
            }
            // Out-of-universe entries would panic later in dense
            // materialization (`snapshot().to_vector()`); the never-panic
            // decode contract requires rejecting them here.
            if (i as u128) >= universe as u128 {
                return Err(WireError::Invalid("net entry outside universe"));
            }
            net.insert(i, v);
            prev = i;
        }
        let pool = SamplerPool::decode(r)?;
        Ok(Self {
            factory,
            universe,
            pool,
            net,
            mass,
        })
    }
}

impl<F> ShardState for Shard<F>
where
    F: SamplerFactory + Send + Encode,
    F::Sampler: Send + Encode,
{
    fn apply_run(&mut self, run: &[Update]) {
        Shard::apply_run(self, run);
    }

    fn draw(&mut self) -> Option<Sample> {
        Shard::draw(self)
    }

    fn prime(&mut self) -> usize {
        Shard::prime(self)
    }

    fn mass(&self) -> f64 {
        Shard::mass(self)
    }

    fn support(&self) -> usize {
        Shard::support(self)
    }

    fn snapshot_entries(&self) -> Vec<(u64, i64)> {
        self.entries().collect()
    }

    fn respawns(&self) -> u64 {
        Shard::respawns(self)
    }

    fn live(&self) -> usize {
        Shard::live(self)
    }

    fn space_bits(&self) -> usize {
        Shard::space_bits(self)
    }

    fn encode_state(&self) -> Result<Vec<u8>, WireError> {
        self.to_wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{L0Factory, LpLe2Factory};

    #[test]
    fn mass_tracks_updates_incrementally() {
        let f = LpLe2Factory::for_universe(64, 2.0);
        let mut shard = Shard::new(f, 64, 1, 3);
        shard.apply_run(&[Update::new(5, 3)]);
        assert!((shard.mass() - 9.0).abs() < 1e-9);
        shard.apply_run(&[Update::new(5, -1), Update::new(9, 2)]);
        assert!((shard.mass() - (4.0 + 4.0)).abs() < 1e-9);
        // Full cancellation: support and mass return to exactly zero.
        shard.apply_run(&[Update::new(5, -2), Update::new(9, -2)]);
        assert_eq!(shard.support(), 0);
        assert_eq!(shard.mass(), 0.0);
    }

    #[test]
    fn entries_are_net_values() {
        let f = L0Factory::default();
        let mut shard = Shard::new(f, 32, 1, 4);
        shard.apply_run(&[Update::new(8, 10)]);
        shard.apply_run(&[Update::new(8, -3), Update::new(2, 1)]);
        let got: Vec<(u64, i64)> = shard.entries().collect();
        assert_eq!(got, vec![(2, 1), (8, 7)]);
    }

    #[test]
    fn draw_returns_exact_values_for_l0() {
        let f = L0Factory::default();
        let mut shard = Shard::new(f, 32, 2, 5);
        shard.apply_run(&[Update::new(3, -4), Update::new(21, 6)]);
        for _ in 0..10 {
            let s = shard.draw().expect("sparse slice must sample");
            let want = if s.index == 3 { -4.0 } else { 6.0 };
            assert_eq!(s.estimate, want);
        }
    }

    #[test]
    fn prime_refills_consumed_slots() {
        let f = L0Factory::default();
        let mut shard = Shard::new(f, 32, 2, 6);
        shard.apply_run(&[Update::new(4, 9)]);
        assert_eq!(shard.live(), 2);
        let _ = shard.draw();
        let _ = shard.draw();
        assert_eq!(shard.live(), 0);
        // Eager catch-up: both slots respawn from the net state now.
        assert_eq!(shard.prime(), 2);
        assert_eq!(shard.live(), 2);
        assert_eq!(shard.respawns(), 2);
        // The refilled instances reflect the net vector exactly.
        let s = shard.draw().expect("primed instance samples");
        assert_eq!(s.index, 4);
        assert_eq!(s.estimate, 9.0);
    }

    #[test]
    fn shard_is_usable_through_the_narrow_trait() {
        fn drive<C: ShardState>(cell: &mut C) -> Option<Sample> {
            cell.apply_run(&[Update::new(7, 2)]);
            cell.prime();
            assert_eq!(cell.support(), 1);
            assert_eq!(cell.snapshot_entries(), vec![(7, 2)]);
            cell.draw()
        }
        let f = L0Factory::default();
        let mut shard = Shard::new(f, 16, 1, 8);
        let s = drive(&mut shard).expect("must sample");
        assert_eq!(s.index, 7);
    }
}
