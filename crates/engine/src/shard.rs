//! One shard: a sampler pool plus the compact exact state that makes the
//! pool respawnable and the shard's `G`-mass known.
//!
//! The shard keeps the *net frequency vector of its own slice of the
//! universe* as a sparse map. This single structure serves three roles:
//!
//! 1. **Replay buffer** for lazy respawn — a fresh sampler instance catches
//!    up by ingesting the net vector, which by linearity is exactly the
//!    state it would have reached streaming from the start.
//! 2. **Mass oracle** for the merge layer — the exact `Σ_i G(x_i)` over the
//!    shard's slice, maintained incrementally per update, is the weight the
//!    engine uses to pick a shard before sampling within it.
//! 3. **Snapshot payload** — the entries are what `snapshot()` ships to a
//!    coordinator.
//!
//! Space accounting: the sparse net state is `O(nnz)` for the shard's
//! slice — this is the price of always-queryable respawn, paid once per
//! shard regardless of pool size, and it is the engine's only non-sketch
//! state.

use crate::factory::SamplerFactory;
use crate::pool::SamplerPool;
use pts_samplers::Sample;
use pts_stream::Update;
use std::collections::BTreeMap;

/// A shard: pool + compact state + incremental mass.
#[derive(Debug, Clone)]
pub struct Shard<S> {
    pool: SamplerPool<S>,
    /// Sparse net values of this shard's slice (zero entries removed).
    net: BTreeMap<u64, i64>,
    /// Incrementally maintained `Σ_i G(x_i)` over the slice.
    mass: f64,
}

impl<S: pts_samplers::TurnstileSampler> Shard<S> {
    /// A shard with a primed pool of `pool_size` instances.
    pub fn new<F>(factory: &F, universe: usize, pool_size: usize, seed: u64) -> Self
    where
        F: SamplerFactory<Sampler = S>,
    {
        let mut pool = SamplerPool::new(pool_size, seed);
        let net = BTreeMap::new();
        pool.prime(factory, universe, &net);
        Self {
            pool,
            net,
            mass: 0.0,
        }
    }

    /// Applies a coalesced run of updates: compact state, mass, and every
    /// live pool instance advance together.
    pub fn apply_run<F>(&mut self, run: &[Update], factory: &F)
    where
        F: SamplerFactory<Sampler = S>,
    {
        for &u in run {
            debug_assert!(u.delta != 0, "router must drop zero deltas");
            let old = self.net.get(&u.index).copied().unwrap_or(0);
            let new = old + u.delta;
            self.mass += factory.weight(new) - factory.weight(old);
            if new == 0 {
                self.net.remove(&u.index);
            } else {
                self.net.insert(u.index, new);
            }
            self.pool.process_live(u);
        }
    }

    /// The exact `G`-mass of this shard's slice. Incremental float updates
    /// can leave ~ulp-scale residue once the true mass returns to zero, so
    /// an empty slice reports exactly zero.
    pub fn mass(&self) -> f64 {
        if self.net.is_empty() {
            0.0
        } else {
            self.mass.max(0.0)
        }
    }

    /// Number of non-zero coordinates in the slice.
    pub fn support(&self) -> usize {
        self.net.len()
    }

    /// The sparse net entries (sorted by index).
    pub fn entries(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.net.iter().map(|(&i, &v)| (i, v))
    }

    /// Draws one sample from this shard's slice (⊥ retried across the
    /// pool; consumed instances respawn lazily from the compact state).
    pub fn draw<F>(&mut self, factory: &F, universe: usize) -> Option<Sample>
    where
        F: SamplerFactory<Sampler = S>,
    {
        self.pool.draw(factory, universe, &self.net)
    }

    /// Lazy respawns performed by this shard's pool.
    pub fn respawns(&self) -> u64 {
        self.pool.respawns()
    }

    /// Live pool instances.
    pub fn live(&self) -> usize {
        self.pool.live()
    }

    /// Sketch bits of live instances plus compact-state bits (128 per
    /// entry: index + value).
    pub fn space_bits(&self) -> usize {
        self.pool.space_bits() + self.net.len() * 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{L0Factory, LpLe2Factory};

    #[test]
    fn mass_tracks_updates_incrementally() {
        let f = LpLe2Factory::for_universe(64, 2.0);
        let mut shard: Shard<_> = Shard::new(&f, 64, 1, 3);
        shard.apply_run(&[Update::new(5, 3)], &f);
        assert!((shard.mass() - 9.0).abs() < 1e-9);
        shard.apply_run(&[Update::new(5, -1), Update::new(9, 2)], &f);
        assert!((shard.mass() - (4.0 + 4.0)).abs() < 1e-9);
        // Full cancellation: support and mass return to exactly zero.
        shard.apply_run(&[Update::new(5, -2), Update::new(9, -2)], &f);
        assert_eq!(shard.support(), 0);
        assert_eq!(shard.mass(), 0.0);
    }

    #[test]
    fn entries_are_net_values() {
        let f = L0Factory::default();
        let mut shard: Shard<_> = Shard::new(&f, 32, 1, 4);
        shard.apply_run(&[Update::new(8, 10)], &f);
        shard.apply_run(&[Update::new(8, -3), Update::new(2, 1)], &f);
        let got: Vec<(u64, i64)> = shard.entries().collect();
        assert_eq!(got, vec![(2, 1), (8, 7)]);
    }

    #[test]
    fn draw_returns_exact_values_for_l0() {
        let f = L0Factory::default();
        let mut shard: Shard<_> = Shard::new(&f, 32, 2, 5);
        shard.apply_run(&[Update::new(3, -4), Update::new(21, 6)], &f);
        for _ in 0..10 {
            let s = shard.draw(&f, 32).expect("sparse slice must sample");
            let want = if s.index == 3 { -4.0 } else { 6.0 };
            assert_eq!(s.estimate, want);
        }
    }
}
