//! Per-shard sampler pools: always-queryable sampling from one-shot
//! samplers.
//!
//! The paper's samplers are one-shot objects — construct, ingest, query
//! *once* (re-querying the same instance replays the same randomness and
//! returns a correlated answer). A [`SamplerPool`] turns them into a
//! repeatedly-queryable resource: it holds `k` independently seeded
//! instances, a draw *consumes* the instance it touches, and consumed slots
//! respawn **lazily** — a fresh instance with a fresh seed catches up from
//! the shard's compact vector state the next time the slot is needed.
//! Linearity makes catch-up exact: ingesting the net vector reproduces
//! precisely the state the instance would have had streaming from the
//! start. FAIL (⊥) is absorbed by retrying across the pool within one draw.

use crate::factory::SamplerFactory;
use pts_samplers::{Sample, TurnstileSampler};
use pts_stream::Update;
use pts_util::derive_seed;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// A pool of `k` independently seeded one-shot sampler instances.
#[derive(Debug, Clone)]
pub struct SamplerPool<S> {
    /// `None` marks a consumed slot awaiting lazy respawn.
    slots: Vec<Option<S>>,
    /// Base seed of this pool's seed stream.
    seed: u64,
    /// Monotone counter: every spawned instance gets a never-reused seed.
    spawned: u64,
    /// Round-robin start position for draws.
    cursor: usize,
    /// Number of lazy respawns performed (diagnostics).
    respawns: u64,
}

impl<S: TurnstileSampler> SamplerPool<S> {
    /// An empty pool of `k` slots; instances are spawned eagerly by
    /// [`SamplerPool::prime`] or lazily at first draw.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "pool needs at least one slot");
        Self {
            slots: (0..k).map(|_| None).collect(),
            seed,
            spawned: 0,
            cursor: 0,
            respawns: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has no slots (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of currently live (unconsumed) instances.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Lazy respawns performed so far.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Spawns every empty slot from the current `net` state (called at
    /// construction so first draws are cheap).
    pub fn prime<F>(&mut self, factory: &F, universe: usize, net: &BTreeMap<u64, i64>)
    where
        F: SamplerFactory<Sampler = S>,
    {
        for j in 0..self.slots.len() {
            if self.slots[j].is_none() {
                self.slots[j] = Some(self.spawn(factory, universe, net));
            }
        }
    }

    /// Eagerly respawns every consumed slot from the current `net` state,
    /// returning how many slots were refilled. Semantically this is the same
    /// catch-up a lazy respawn performs at the next draw — done now, off the
    /// query path, so the refills count toward [`SamplerPool::respawns`].
    /// The concurrent engine fans this out across shard workers, which is
    /// what turns the serial replay-the-whole-net-vector hot spot into a
    /// parallel one.
    pub fn refill<F>(&mut self, factory: &F, universe: usize, net: &BTreeMap<u64, i64>) -> usize
    where
        F: SamplerFactory<Sampler = S>,
    {
        let mut refilled = 0;
        for j in 0..self.slots.len() {
            if self.slots[j].is_none() {
                self.slots[j] = Some(self.spawn(factory, universe, net));
                refilled += 1;
                crate::obs::obs().pool_replayed.observe(net.len() as u64);
            }
        }
        self.respawns += refilled as u64;
        crate::obs::obs().pool_respawns.add(refilled as u64);
        refilled
    }

    /// Builds a fresh instance with a never-reused seed and catches it up
    /// from the compact net state (exact, by linearity).
    fn spawn<F>(&mut self, factory: &F, universe: usize, net: &BTreeMap<u64, i64>) -> S
    where
        F: SamplerFactory<Sampler = S>,
    {
        let instance_seed = derive_seed(self.seed, self.spawned);
        self.spawned += 1;
        let mut s = factory.build(universe, instance_seed);
        for (&i, &v) in net {
            s.process(Update::new(i, v));
        }
        s
    }

    /// Feeds one update to every live instance (consumed slots are skipped —
    /// they will catch up from the net state when respawned).
    #[inline]
    pub fn process_live(&mut self, u: Update) {
        for slot in self.slots.iter_mut().flatten() {
            slot.process(u);
        }
    }

    /// Draws one sample, consuming up to `k` instances: each tried instance
    /// is spent whether it answers or FAILs (its randomness is revealed
    /// either way), and ⊥ is absorbed by moving to the next slot. Consumed
    /// slots respawn lazily from `net` when the rotation next reaches them.
    pub fn draw<F>(
        &mut self,
        factory: &F,
        universe: usize,
        net: &BTreeMap<u64, i64>,
    ) -> Option<Sample>
    where
        F: SamplerFactory<Sampler = S>,
    {
        for _ in 0..self.slots.len() {
            let j = self.cursor;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let mut instance = match self.slots[j].take() {
                Some(live) => live,
                None => {
                    self.respawns += 1;
                    let o = crate::obs::obs();
                    o.pool_respawns.inc();
                    o.pool_replayed.observe(net.len() as u64);
                    self.spawn(factory, universe, net)
                }
            };
            if let Some(sample) = instance.sample() {
                return Some(sample);
            }
        }
        None
    }

    /// Total sketch size of the live instances, in bits.
    pub fn space_bits(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(TurnstileSampler::space_bits)
            .sum()
    }
}

impl<S: TurnstileSampler + Encode> Encode for SamplerPool<S> {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(self.seed);
        w.put_u64(self.spawned);
        w.put_usize(self.cursor);
        w.put_u64(self.respawns);
        w.put_usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(instance) => {
                    w.put_bool(true);
                    instance.encode(w)?;
                }
                None => w.put_bool(false),
            }
        }
        Ok(())
    }
}

impl<S: TurnstileSampler + Decode> Decode for SamplerPool<S> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let seed = r.get_u64()?;
        let spawned = r.get_u64()?;
        let cursor = r.get_usize()?;
        let respawns = r.get_u64()?;
        let k = r.get_len(1)?;
        if !(1..=1 << 16).contains(&k) || cursor >= k {
            return Err(WireError::Invalid("pool shape"));
        }
        let mut slots = Vec::with_capacity(k);
        for _ in 0..k {
            slots.push(if r.get_bool()? {
                Some(S::decode(r)?)
            } else {
                None
            });
        }
        Ok(Self {
            slots,
            seed,
            spawned,
            cursor,
            respawns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::L0Factory;

    fn net_of(entries: &[(u64, i64)]) -> BTreeMap<u64, i64> {
        entries.iter().copied().collect()
    }

    #[test]
    fn draws_consume_and_respawn() {
        let f = L0Factory::default();
        let net = net_of(&[(3, 5), (9, -2)]);
        let mut pool: SamplerPool<_> = SamplerPool::new(2, 77);
        pool.prime(&f, 16, &net);
        assert_eq!(pool.live(), 2);
        // First two draws consume the primed instances...
        assert!(pool.draw(&f, 16, &net).is_some());
        assert!(pool.draw(&f, 16, &net).is_some());
        assert_eq!(pool.live(), 0);
        // ...and the third forces a lazy respawn that catches up from `net`.
        let s = pool.draw(&f, 16, &net).expect("respawned instance samples");
        assert!(s.index == 3 || s.index == 9);
        assert!(pool.respawns() >= 1);
    }

    #[test]
    fn respawned_instances_are_independent() {
        // Across many draws both support points must appear: every respawn
        // uses a fresh seed, so draws are not locked to one coordinate.
        let f = L0Factory::default();
        let net = net_of(&[(1, 4), (11, 4)]);
        let mut pool: SamplerPool<_> = SamplerPool::new(1, 5);
        let mut seen = [false; 16];
        for _ in 0..40 {
            if let Some(s) = pool.draw(&f, 16, &net) {
                seen[s.index as usize] = true;
            }
        }
        assert!(seen[1] && seen[11], "draws locked to one coordinate");
    }

    #[test]
    fn refill_respawns_only_consumed_slots() {
        let f = L0Factory::default();
        let net = net_of(&[(2, 3)]);
        let mut pool: SamplerPool<_> = SamplerPool::new(3, 13);
        pool.prime(&f, 16, &net);
        assert_eq!(pool.refill(&f, 16, &net), 0, "full pool needs no refill");
        assert!(pool.draw(&f, 16, &net).is_some());
        assert!(pool.draw(&f, 16, &net).is_some());
        assert_eq!(pool.live(), 1);
        assert_eq!(pool.refill(&f, 16, &net), 2);
        assert_eq!(pool.live(), 3);
        assert_eq!(pool.respawns(), 2, "eager refills count as respawns");
    }

    #[test]
    fn live_instances_track_updates() {
        let f = L0Factory::default();
        let mut net = BTreeMap::new();
        let mut pool: SamplerPool<_> = SamplerPool::new(1, 9);
        pool.prime(&f, 16, &net);
        pool.process_live(Update::new(7, 3));
        net.insert(7, 3);
        let s = pool.draw(&f, 16, &net).expect("must sample");
        assert_eq!(s.index, 7);
        assert_eq!(s.estimate, 3.0);
    }
}
