//! Per-shard worker threads: the concurrency unit of the
//! [`crate::ConcurrentEngine`].
//!
//! One worker owns one [`ShardState`] exclusively and drives it from a
//! `std::sync::mpsc` request queue. Exclusive ownership is the whole
//! concurrency story: a shard's net vector and its live pool instances only
//! ever mutate in lockstep inside `apply_run`, and because exactly one
//! thread holds the shard, no lock is needed to preserve that invariant —
//! the channel *is* the synchronization. Requests from the front-end are
//! processed strictly in FIFO order, which gives the engine sequential
//! consistency per shard for free: a mass/draw/entries request enqueued
//! after a set of applies observes all of them.
//!
//! Shutdown is by hang-up: dropping the request sender ends the worker's
//! `recv` loop, and the `ShardWorker` drop impl joins the thread.

use crate::shard::ShardState;
use pts_samplers::Sample;
use pts_stream::Update;
use pts_util::wire::WireError;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A point-in-time report of one shard's state, produced on its worker
/// thread after all previously enqueued work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardReport {
    /// The exact `G`-mass of the shard's slice.
    pub mass: f64,
    /// Non-zero coordinates in the slice.
    pub support: usize,
    /// Respawns performed by the shard's pool (lazy and eager).
    pub respawns: u64,
    /// Live pool instances.
    pub live: usize,
    /// Sketch bits of live instances plus compact-state bits.
    pub space_bits: usize,
}

/// A request to a shard worker. Replies go through the sender embedded in
/// the request, so the front-end decides per call whether to block.
pub(crate) enum Request {
    /// Apply a coalesced run. The emptied buffer is returned through `done`
    /// both as a completion acknowledgement (backpressure) and so the
    /// front-end can recycle the allocation.
    Apply {
        /// The coalesced per-shard run.
        run: Vec<Update>,
        /// Receives the cleared buffer when the run has been applied.
        done: Sender<Vec<Update>>,
    },
    /// Report just the shard's `G`-mass — the query hot path. A full
    /// [`Request::Report`] walks every live sampler's sketch tree for
    /// `space_bits`, which is far too expensive to pay per draw.
    Mass { reply: Sender<f64> },
    /// Eagerly respawn consumed pool slots; replies with the refill count.
    Prime { reply: Sender<usize> },
    /// Draw one sample from the shard.
    Draw { reply: Sender<Option<Sample>> },
    /// Report mass/support/respawns/live/space.
    Report { reply: Sender<ShardReport> },
    /// Ship the shard's sparse net entries.
    Entries { reply: Sender<Vec<(u64, i64)>> },
    /// Serialize the shard's complete state (net, mass, pool, live
    /// instances) for a checkpoint. FIFO ordering makes the encoding
    /// consistent with every previously enqueued apply.
    Checkpoint {
        reply: Sender<Result<Vec<u8>, WireError>>,
    },
}

/// Handle to one spawned shard worker: the request sender plus the join
/// handle. Dropping the handle hangs up the channel and joins the thread.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    tx: Option<Sender<Request>>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Moves `shard` onto a fresh worker thread and returns its handle.
    pub fn spawn<C: ShardState + 'static>(shard: C) -> Self {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = channel();
        let handle = std::thread::Builder::new()
            .name("pts-shard-worker".into())
            .spawn(move || run_loop(shard, rx))
            .expect("failed to spawn shard worker thread");
        Self {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Enqueues a request; panics if the worker died (it only dies if a
    /// shard operation panicked, which the engine's pre-validation rules
    /// out for well-formed input).
    pub fn send(&self, req: Request) {
        self.tx
            .as_ref()
            .expect("worker already shut down")
            .send(req)
            .expect("shard worker thread died");
    }

    /// Convenience round-trip: report the shard's current state.
    #[cfg(test)]
    pub fn report(&self) -> ShardReport {
        let (reply, rx) = channel();
        self.send(Request::Report { reply });
        rx.recv().expect("shard worker thread died")
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // Hang up, then join. The worker drains any queued applies first
        // (their `done` sends may fail harmlessly if the engine is gone).
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The worker loop: exclusive shard ownership, FIFO request processing.
fn run_loop<C: ShardState>(mut shard: C, rx: Receiver<Request>) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Apply { mut run, done } => {
                shard.apply_run(&run);
                run.clear();
                // The engine may already have dropped its receiver
                // (shutdown with work in flight) — that is fine.
                let _ = done.send(run);
            }
            Request::Mass { reply } => {
                let _ = reply.send(shard.mass());
            }
            Request::Prime { reply } => {
                let _ = reply.send(shard.prime());
            }
            Request::Draw { reply } => {
                let _ = reply.send(shard.draw());
            }
            Request::Report { reply } => {
                let _ = reply.send(ShardReport {
                    mass: shard.mass(),
                    support: shard.support(),
                    respawns: shard.respawns(),
                    live: shard.live(),
                    space_bits: shard.space_bits(),
                });
            }
            Request::Entries { reply } => {
                let _ = reply.send(shard.snapshot_entries());
            }
            Request::Checkpoint { reply } => {
                let _ = reply.send(shard.encode_state());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::L0Factory;
    use crate::shard::Shard;

    fn worker() -> ShardWorker {
        ShardWorker::spawn(Shard::new(L0Factory::default(), 32, 2, 7))
    }

    #[test]
    fn fifo_apply_then_report_sees_all_updates() {
        let w = worker();
        let (done, done_rx) = channel();
        for i in 0..10u64 {
            w.send(Request::Apply {
                run: vec![Update::new(i, (i + 1) as i64)],
                done: done.clone(),
            });
        }
        // The report is enqueued after every apply, so FIFO guarantees it
        // observes all of them — without waiting on the acks first.
        let r = w.report();
        assert_eq!(r.support, 10);
        assert_eq!(r.live, 2);
        // All ten buffers come back cleared for recycling.
        for _ in 0..10 {
            assert!(done_rx.recv().unwrap().is_empty());
        }
    }

    #[test]
    fn draw_and_prime_round_trips() {
        let w = worker();
        let (done, done_rx) = channel();
        w.send(Request::Apply {
            run: vec![Update::new(3, 5)],
            done,
        });
        done_rx.recv().unwrap();
        let (reply, rx) = channel();
        w.send(Request::Draw { reply });
        let s = rx.recv().unwrap().expect("non-zero shard samples");
        assert_eq!(s.index, 3);
        let (reply, rx) = channel();
        w.send(Request::Prime { reply });
        assert_eq!(rx.recv().unwrap(), 1, "one consumed slot refilled");
    }

    #[test]
    fn entries_ship_the_net_state() {
        let w = worker();
        let (done, done_rx) = channel();
        w.send(Request::Apply {
            run: vec![Update::new(8, 4), Update::new(1, -2)],
            done,
        });
        done_rx.recv().unwrap();
        let (reply, rx) = channel();
        w.send(Request::Entries { reply });
        assert_eq!(rx.recv().unwrap(), vec![(1, -2), (8, 4)]);
    }

    #[test]
    fn drop_joins_cleanly_with_work_in_flight() {
        let w = worker();
        let (done, _done_rx) = channel();
        for i in 0..100u64 {
            w.send(Request::Apply {
                run: vec![Update::new(i % 32, 1)],
                done: done.clone(),
            });
        }
        drop(w); // must not hang or panic
    }
}
