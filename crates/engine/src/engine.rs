//! The sharded engine: continuously-ingesting, continuously-queryable
//! perfect sampling.
//!
//! The two-stage draw is what makes sharding *correct* rather than merely
//! fast. A query first picks a shard with probability proportional to the
//! shard's exact `G`-mass, then draws within the shard from its pool:
//!
//! ```text
//! Pr[i] = (mass_s / Σ_t mass_t) · G(x_i) / mass_s = G(x_i) / Σ_j G(x_j)
//! ```
//!
//! — the global law, for any shard count, whenever every shard pool
//! answers. The one caveat is ⊥: a shard's FAIL probability `δ_s` depends
//! on its slice (denser slices fail more), so *conditioned on success* the
//! law carries a per-shard factor `(1 − δ_s^k)`. No retry scheme removes
//! this (re-picking a shard renormalizes to the same weighting), which is
//! why `sample()` returns ⊥ honestly instead of silently re-picking; the
//! pool's within-shard retries drive the residual bias to `δ^k`, which is
//! what the `S ∈ {1, 2, 8}` chi-squared property tests bound in practice.

use crate::config::EngineConfig;
use crate::factory::SamplerFactory;
use crate::obs::obs;
use crate::router::ShardRouter;
use crate::shard::Shard;
use crate::snapshot::EngineSnapshot;
use pts_samplers::Sample;
use pts_stream::{Stream, Update};
use pts_util::wire::{
    read_frame, write_frame, Decode, Encode, WireError, WireReader, WireWriter, KIND_ENGINE,
};
use pts_util::{derive_seed, Xoshiro256pp};
use std::io::{Read, Write};

/// Mass-proportional pick over `masses`: the first stage of every
/// two-stage draw in this stack. Both engine front-ends use it to choose
/// a shard, and the `pts-cluster` coordinator uses the *same code* to
/// choose a node — the bit-identical contracts (concurrent vs sequential,
/// restored cluster vs uninterrupted control) ride on this arithmetic
/// being one implementation, not copies kept in sync by hand: one RNG
/// draw scaled by `total`, then a left-to-right subtraction scan with the
/// last entry absorbing any floating-point residue.
///
/// `total` must be the caller's sum of `masses` (passed in, not
/// recomputed, so the caller's zero-total early-out and the pick agree on
/// the same value). `masses` must be non-empty.
pub fn pick_by_mass(rng: &mut Xoshiro256pp, masses: &[f64], total: f64) -> usize {
    let mut r = rng.next_f64() * total;
    let mut chosen = masses.len() - 1;
    for (s, &mass) in masses.iter().enumerate() {
        r -= mass;
        if r < 0.0 {
            chosen = s;
            break;
        }
    }
    chosen
}

/// Running counters exposed for benches and monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Updates ingested (pre-coalescing).
    pub updates: u64,
    /// Batches ingested.
    pub batches: u64,
    /// Successful samples served.
    pub samples: u64,
    /// Queries that returned ⊥ after exhausting a shard's pool.
    pub fails: u64,
    /// Snapshots merged in (their entries do not count as ingested
    /// updates).
    pub merges: u64,
}

impl Encode for EngineStats {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(self.updates);
        w.put_u64(self.batches);
        w.put_u64(self.samples);
        w.put_u64(self.fails);
        w.put_u64(self.merges);
        Ok(())
    }
}

impl Decode for EngineStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            updates: r.get_u64()?,
            batches: r.get_u64()?,
            samples: r.get_u64()?,
            fails: r.get_u64()?,
            merges: r.get_u64()?,
        })
    }
}

/// The decoded interior of an engine checkpoint — shared by both
/// front-ends, which is what makes checkpoints interchangeable: a
/// `ShardedEngine` can restore a `ConcurrentEngine`'s file and vice versa.
pub(crate) struct EngineImage<F: SamplerFactory> {
    pub config: EngineConfig,
    pub factory: F,
    pub rng: Xoshiro256pp,
    pub stats: EngineStats,
    pub shards: Vec<Shard<F>>,
}

impl<F: SamplerFactory> EngineImage<F> {
    /// Serializes the common checkpoint payload. `shard_state` yields each
    /// shard's own wire bytes (produced inline by the sequential engine,
    /// gathered from worker threads by the concurrent one).
    pub(crate) fn write_checkpoint<W: Write>(
        config: EngineConfig,
        factory: &F,
        rng: &Xoshiro256pp,
        stats: EngineStats,
        shard_state: impl Iterator<Item = Result<Vec<u8>, WireError>>,
        sink: &mut W,
    ) -> std::io::Result<()>
    where
        F: Encode,
    {
        let mut payload = WireWriter::new();
        config.encode(&mut payload)?;
        factory.encode(&mut payload)?;
        rng.encode(&mut payload)?;
        stats.encode(&mut payload)?;
        let mut count = 0usize;
        for bytes in shard_state {
            payload.put_bytes(&bytes?);
            count += 1;
        }
        debug_assert_eq!(count, config.shards, "one state blob per shard");
        write_frame(KIND_ENGINE, payload.as_bytes(), sink)
    }

    /// Reads and validates the common checkpoint payload.
    pub(crate) fn read_checkpoint<R: Read>(src: &mut R) -> Result<Self, WireError>
    where
        F: Decode,
        F::Sampler: Decode,
    {
        let payload = read_frame(KIND_ENGINE, src)?;
        let mut r = WireReader::new(&payload);
        let config = EngineConfig::decode(&mut r)?;
        let factory = F::decode(&mut r)?;
        let rng = Xoshiro256pp::decode(&mut r)?;
        let stats = EngineStats::decode(&mut r)?;
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let shard: Shard<F> = Shard::decode(&mut r)?;
            if shard.universe() != config.universe {
                return Err(WireError::Invalid("shard universe mismatch"));
            }
            if shard.pool_len() != config.pool_size {
                return Err(WireError::Invalid("shard pool-size mismatch"));
            }
            shards.push(shard);
        }
        r.finish()?;
        Ok(Self {
            config,
            factory,
            rng,
            stats,
            shards,
        })
    }
}

/// A sharded, mergeable, always-queryable sampling engine.
///
/// See the crate docs for the architecture; the short version:
/// [`ShardRouter`] hash-partitions updates across [`Shard`]s, each shard
/// holds a pool of independently seeded one-shot samplers plus the compact
/// exact state that respawns them, and queries compose a mass-weighted
/// shard pick with an in-shard draw.
#[derive(Debug, Clone)]
pub struct ShardedEngine<F: SamplerFactory> {
    config: EngineConfig,
    factory: F,
    router: ShardRouter,
    shards: Vec<Shard<F>>,
    /// Reusable per-shard scatter buffers for batched ingest.
    plan: Vec<Vec<Update>>,
    /// Drives shard selection at query time.
    rng: Xoshiro256pp,
    stats: EngineStats,
}

impl<F: SamplerFactory> ShardedEngine<F> {
    /// Builds an engine: `S` shards, each with a primed pool of `k`
    /// samplers over the full universe `[0, n)`.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn new(config: EngineConfig, factory: F) -> Self {
        config.validate();
        let router = ShardRouter::new(config.shards, derive_seed(config.seed, 0x5A4D));
        let shards = (0..config.shards)
            .map(|s| {
                Shard::new(
                    factory.clone(),
                    config.universe,
                    config.pool_size,
                    derive_seed(config.seed, 0x10_000 + s as u64),
                )
            })
            .collect();
        let plan = (0..config.shards).map(|_| Vec::new()).collect();
        let rng = Xoshiro256pp::from_seed_stream(config.seed, 0xD4A3);
        Self {
            config,
            factory,
            router,
            shards,
            plan,
            rng,
            stats: EngineStats::default(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The sampler factory.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// Running counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Ingests a batch of turnstile updates: routed to shards, reordered
    /// and coalesced per shard, then applied to compact state and live
    /// pool instances. This is the engine's hot path.
    ///
    /// # Panics
    /// Panics if any update addresses a coordinate outside the universe.
    pub fn ingest_batch(&mut self, batch: &[Update]) {
        self.apply_batch(batch);
        self.stats.updates += batch.len() as u64;
        self.stats.batches += 1;
        let o = obs();
        o.ingest_updates.add(batch.len() as u64);
        o.ingest_batches.inc();
    }

    /// Routes and applies a batch without touching the ingest counters
    /// (shared by stream ingest and snapshot merging).
    fn apply_batch(&mut self, batch: &[Update]) {
        assert!(
            batch
                .iter()
                .all(|u| (u.index as usize) < self.config.universe),
            "update outside universe"
        );
        self.router.plan_batch(batch, &mut self.plan);
        for (shard, run) in self.shards.iter_mut().zip(&self.plan) {
            shard.apply_run(run);
        }
    }

    /// Ingests a single update (a one-element batch; prefer
    /// [`ShardedEngine::ingest_batch`] on the hot path).
    pub fn process(&mut self, u: Update) {
        self.ingest_batch(&[u]);
    }

    /// Ingests a whole stream in batches of `batch_len`.
    pub fn ingest_stream(&mut self, stream: &Stream, batch_len: usize) {
        for chunk in stream.batches(batch_len) {
            self.ingest_batch(chunk);
        }
    }

    /// The exact global `G`-mass `Σ_j G(x_j)` of everything ingested.
    pub fn mass(&self) -> f64 {
        self.shards.iter().map(Shard::mass).sum()
    }

    /// Per-shard masses (diagnostics; order matches shard ids).
    pub fn shard_masses(&self) -> Vec<f64> {
        self.shards.iter().map(Shard::mass).collect()
    }

    /// Number of non-zero coordinates across all shards.
    pub fn support(&self) -> usize {
        self.shards.iter().map(Shard::support).sum()
    }

    /// Draws one sample from the global law `G(x_i)/Σ_j G(x_j)` — at any
    /// point of the stream, as many times as desired.
    ///
    /// Two-stage: shard ∝ exact mass, then the shard's pool draws (⊥
    /// retried across the pool; consumed instances respawn lazily). Returns
    /// `None` on the zero vector or when the chosen shard's entire pool
    /// FAILs (bounded probability, part of the samplers' contract; see the
    /// module docs for the `δ_s^k` conditional-law caveat this implies).
    pub fn sample(&mut self) -> Option<Sample> {
        let sw = pts_obs::Stopwatch::start();
        let masses: Vec<f64> = self.shards.iter().map(Shard::mass).collect();
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let chosen = pick_by_mass(&mut self.rng, &masses, total);
        let out = self.shards[chosen].draw();
        let o = obs();
        o.draw_ns.observe_elapsed(sw);
        match out {
            Some(_) => self.stats.samples += 1,
            None => {
                self.stats.fails += 1;
                o.draw_fail.inc();
            }
        }
        out
    }

    /// Captures the engine's compact exact state for shipping to another
    /// engine (see [`EngineSnapshot`]).
    pub fn snapshot(&self) -> EngineSnapshot {
        let entries: Vec<(u64, i64)> = self.shards.iter().flat_map(|s| s.entries()).collect();
        EngineSnapshot::from_entries(self.config.universe, entries)
    }

    /// Merges another engine's snapshot into this one. By linearity this is
    /// exactly equivalent to having ingested the other engine's stream;
    /// shard counts need not match because entries re-route through this
    /// engine's own router. Merged entries are tracked in
    /// [`EngineStats::merges`], not in the ingest counters.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn merge(&mut self, snapshot: &EngineSnapshot) {
        assert_eq!(
            self.config.universe,
            snapshot.universe(),
            "universe mismatch"
        );
        // Bounded batches keep the scatter buffers' peak size independent
        // of snapshot support.
        let updates = snapshot.to_updates();
        for chunk in updates.chunks(4096) {
            self.apply_batch(chunk);
        }
        self.stats.merges += 1;
        obs().merges.inc();
    }

    /// Serializes the engine's **complete** state — config, factory, query
    /// RNG, stats, and every shard's net vector, mass, and pool (live
    /// sampler instances included, bit-for-bit) — as one framed,
    /// checksummed wire payload.
    ///
    /// The restored engine ([`ShardedEngine::restore`]) is bit-identical
    /// going forward: the same subsequent call sequence produces the same
    /// draws, masses, and snapshots as the uninterrupted original. The
    /// payload is front-end-agnostic — a [`crate::ConcurrentEngine`] can
    /// restore it too.
    pub fn checkpoint<W: std::io::Write>(&self, sink: &mut W) -> std::io::Result<()>
    where
        F: Encode,
        F::Sampler: Encode,
    {
        let mut counted = pts_obs::CountingWriter::new(sink);
        EngineImage::write_checkpoint(
            self.config,
            &self.factory,
            &self.rng,
            self.stats,
            self.shards.iter().map(Encode::to_wire_bytes),
            &mut counted,
        )?;
        obs().checkpoint_bytes.add(counted.count());
        Ok(())
    }

    /// Rebuilds an engine from a [`ShardedEngine::checkpoint`] payload
    /// (written by either front-end). Malformed input — truncation,
    /// corruption, a bumped format version, a different factory type —
    /// returns a [`WireError`] and never panics.
    pub fn restore<R: std::io::Read>(src: &mut R) -> Result<Self, WireError>
    where
        F: Decode,
        F::Sampler: Decode,
    {
        let mut counted = pts_obs::CountingReader::new(src);
        let image: EngineImage<F> = EngineImage::read_checkpoint(&mut counted)?;
        obs().restore_bytes.add(counted.count());
        let router = ShardRouter::new(image.config.shards, derive_seed(image.config.seed, 0x5A4D));
        let plan = (0..image.config.shards).map(|_| Vec::new()).collect();
        Ok(Self {
            config: image.config,
            factory: image.factory,
            router,
            shards: image.shards,
            plan,
            rng: image.rng,
            stats: image.stats,
        })
    }

    /// Eagerly respawns every consumed pool slot in every shard (the same
    /// catch-up a lazy respawn performs at the next draw, done now so a
    /// query burst finds live instances). Returns the number of slots
    /// refilled; the concurrent engine runs the same catch-up across all
    /// shards in parallel.
    pub fn prime(&mut self) -> usize {
        self.shards.iter_mut().map(Shard::prime).sum()
    }

    /// Total lazy respawns across all shard pools.
    pub fn respawns(&self) -> u64 {
        self.shards.iter().map(Shard::respawns).sum()
    }

    /// Engine state size in bits: live sampler sketches plus compact state.
    pub fn space_bits(&self) -> usize {
        self.shards.iter().map(Shard::space_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{L0Factory, LpLe2Factory};
    use pts_stream::FrequencyVector;

    fn config(n: usize, shards: usize) -> EngineConfig {
        EngineConfig::new(n).shards(shards).pool_size(2).seed(11)
    }

    #[test]
    fn ingest_and_mass_match_ground_truth() {
        let f = LpLe2Factory::for_universe(64, 2.0);
        let mut e = ShardedEngine::new(config(64, 4), f);
        let x = pts_stream::gen::zipf_vector(64, 1.0, 50, 21);
        let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
        e.ingest_batch(&updates);
        assert!((e.mass() - x.f2()).abs() < 1e-6 * x.f2());
        assert_eq!(e.support(), x.f0());
        assert_eq!(e.stats().updates, updates.len() as u64);
    }

    #[test]
    fn sample_mid_stream_and_repeatedly() {
        let f = L0Factory::default();
        let mut e = ShardedEngine::new(config(32, 2), f);
        e.ingest_batch(&[Update::new(3, 5), Update::new(17, -2)]);
        // Query mid-stream...
        let s1 = e.sample().expect("non-zero state must sample");
        assert!(s1.index == 3 || s1.index == 17);
        // ...keep streaming, query again (many times — pool respawns).
        e.ingest_batch(&[Update::new(3, -5)]);
        for _ in 0..8 {
            let s = e.sample().expect("index 17 survives");
            assert_eq!(s.index, 17);
            assert_eq!(s.estimate, -2.0);
        }
        assert!(e.respawns() > 0, "repeated draws must trigger respawns");
    }

    #[test]
    fn zero_vector_returns_none() {
        let f = L0Factory::default();
        let mut e = ShardedEngine::new(config(16, 2), f);
        assert!(e.sample().is_none());
        e.ingest_batch(&[Update::new(4, 9), Update::new(4, -9)]);
        assert!(e.sample().is_none());
        assert_eq!(e.mass(), 0.0);
    }

    #[test]
    fn snapshot_merge_equals_direct_ingest() {
        let f = L0Factory::default();
        let x = pts_stream::gen::zipf_vector(64, 1.1, 40, 31);
        let y = pts_stream::gen::zipf_vector(64, 1.1, 40, 32);

        // Engine A sees x, engine B sees y (different shard count!).
        let mut a = ShardedEngine::new(config(64, 4), f);
        let xu: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
        a.ingest_batch(&xu);
        let mut b = ShardedEngine::new(config(64, 2).seed(99), f);
        let yu: Vec<Update> = y.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
        b.ingest_batch(&yu);

        // A absorbs B; its state must equal x + y exactly, and merged
        // entries must not masquerade as ingested updates.
        let ingested_before = a.stats().updates;
        a.merge(&b.snapshot());
        assert_eq!(a.snapshot().to_vector(), x.add(&y));
        assert_eq!(a.stats().updates, ingested_before);
        assert_eq!(a.stats().merges, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_fresh_engine() {
        let f = L0Factory::default();
        let mut e = ShardedEngine::new(config(32, 8), f);
        e.ingest_batch(&[Update::new(1, 7), Update::new(30, -4), Update::new(9, 2)]);
        let snap = e.snapshot();
        let mut fresh = ShardedEngine::new(config(32, 1), f);
        fresh.merge(&snap);
        assert_eq!(fresh.snapshot(), snap);
        let want = FrequencyVector::from_values({
            let mut v = vec![0i64; 32];
            v[1] = 7;
            v[30] = -4;
            v[9] = 2;
            v
        });
        assert_eq!(fresh.snapshot().to_vector(), want);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_updates_rejected() {
        let f = L0Factory::default();
        let mut e = ShardedEngine::new(config(16, 2), f);
        e.ingest_batch(&[Update::new(16, 1)]);
    }
}
