//! Engine instrumentation: pre-registered `pts-obs` handles.
//!
//! One struct of `Copy` handles, registered once behind a `OnceLock`, so
//! the hot paths (per-batch ingest, per-draw sampling, per-respawn
//! replay) pay one `&'static` deref plus a relaxed atomic — never a
//! registry lookup. In the obs-off build every handle is a unit struct
//! and every call disappears. Metric names are inventoried in
//! DESIGN.md §11.

use pts_obs::{registry, Counter, Histogram};
use std::sync::OnceLock;

/// The engine's metric handles.
#[derive(Debug)]
pub(crate) struct EngineObs {
    /// `engine.ingest.updates` — updates ingested (pre-coalescing).
    pub ingest_updates: Counter,
    /// `engine.ingest.batches` — ingest batches applied.
    pub ingest_batches: Counter,
    /// `engine.draw.ns` — per-draw latency (both outcomes).
    pub draw_ns: Histogram,
    /// `engine.draw.fail` — draws that returned ⊥.
    pub draw_fail: Counter,
    /// `engine.pool.respawns` — pool slots respawned after consumption.
    pub pool_respawns: Counter,
    /// `engine.pool.replayed_updates` — net coalesced updates replayed
    /// into each respawned sampler (the respawn cost distribution).
    pub pool_replayed: Histogram,
    /// `engine.checkpoint.bytes` — checkpoint bytes written.
    pub checkpoint_bytes: Counter,
    /// `engine.restore.bytes` — checkpoint bytes read back.
    pub restore_bytes: Counter,
    /// `engine.merges` — snapshots merged in.
    pub merges: Counter,
}

/// The process-global engine handles.
pub(crate) fn obs() -> &'static EngineObs {
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = registry();
        EngineObs {
            ingest_updates: r.counter("engine.ingest.updates"),
            ingest_batches: r.counter("engine.ingest.batches"),
            draw_ns: r.histogram("engine.draw.ns"),
            draw_fail: r.counter("engine.draw.fail"),
            pool_respawns: r.counter("engine.pool.respawns"),
            pool_replayed: r.histogram("engine.pool.replayed_updates"),
            checkpoint_bytes: r.counter("engine.checkpoint.bytes"),
            restore_bytes: r.counter("engine.restore.bytes"),
            merges: r.counter("engine.merges"),
        }
    })
}
