//! Sampler factories: how the engine spawns fresh sampler instances and
//! evaluates the sampling law `G` they target.
//!
//! The engine is generic over a [`SamplerFactory`]: a recipe producing
//! independent, identically-configured samplers from fresh seeds, plus the
//! measurement function `G` defining the law `G(x_i)/Σ_j G(x_j)` the
//! sampler draws from. The factory's `G` drives the merge layer's
//! shard-selection step (sample a shard with probability proportional to
//! its exact `G`-mass, then sample within the shard), so it must match the
//! sampler's own law for the two-stage draw to compose into the global law.

use pts_core::{PerfectLpParams, PerfectLpSampler, RejectionGSampler};
use pts_samplers::{L0Params, LpLe2Batch, LpLe2Params, PerfectL0Sampler, TurnstileSampler};
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// A recipe for spawning independent sampler instances over `[0, n)`.
///
/// `Clone` is a supertrait because every shard owns its own copy of the
/// factory (the ownership model that lets a shard move wholesale onto a
/// worker thread); factories are parameter bundles, so cloning is cheap.
pub trait SamplerFactory: Clone {
    /// The sampler type produced. `Clone + Debug` because pooled instances
    /// live inside clonable, debuggable engine state.
    type Sampler: TurnstileSampler + Clone + std::fmt::Debug;

    /// Builds a fresh instance with the given seed. Instances built from
    /// different seeds must be independent; instances built from the same
    /// seed must be identical (the merge contract).
    fn build(&self, universe: usize, seed: u64) -> Self::Sampler;

    /// The measurement function `G` evaluated at an exact coordinate value —
    /// the unnormalized weight of a coordinate under the target law.
    fn weight(&self, value: i64) -> f64;
}

/// Perfect L₀ sampling: uniform over the support, exact values (JST11).
#[derive(Debug, Clone, Copy, Default)]
pub struct L0Factory {
    /// Substrate parameters.
    pub params: L0Params,
}

impl SamplerFactory for L0Factory {
    type Sampler = PerfectL0Sampler;

    fn build(&self, universe: usize, seed: u64) -> PerfectL0Sampler {
        PerfectL0Sampler::new(universe, self.params, seed)
    }

    fn weight(&self, value: i64) -> f64 {
        if value != 0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Perfect L_p sampling for `p ∈ (0, 2]` (JW18), success-boosted with `k`
/// inner instances per engine instance.
#[derive(Debug, Clone, Copy)]
pub struct LpLe2Factory {
    /// Sampler parameters (carries `p`).
    pub params: LpLe2Params,
    /// Inner success-boosting batch width.
    pub batch: usize,
}

impl LpLe2Factory {
    /// Paper-shaped defaults for universe `n` and moment `p ∈ (0, 2]`.
    pub fn for_universe(n: usize, p: f64) -> Self {
        Self {
            params: LpLe2Params::for_universe(n, p),
            batch: 8,
        }
    }
}

impl SamplerFactory for LpLe2Factory {
    type Sampler = LpLe2Batch;

    fn build(&self, universe: usize, seed: u64) -> LpLe2Batch {
        LpLe2Batch::new(universe, self.params, self.batch, seed)
    }

    fn weight(&self, value: i64) -> f64 {
        (value.abs() as f64).powf(self.params.p)
    }
}

/// The paper's headline perfect L_p sampler for `p > 2` (Algorithms 1–2).
#[derive(Debug, Clone, Copy)]
pub struct PerfectLpFactory {
    /// Sampler parameters (carries `p > 2`).
    pub params: PerfectLpParams,
}

impl PerfectLpFactory {
    /// Paper-shaped defaults for universe `n` and moment `p > 2`.
    pub fn for_universe(n: usize, p: f64) -> Self {
        Self {
            params: PerfectLpParams::for_universe(n, p),
        }
    }
}

impl SamplerFactory for PerfectLpFactory {
    type Sampler = PerfectLpSampler;

    fn build(&self, universe: usize, seed: u64) -> PerfectLpSampler {
        PerfectLpSampler::new(universe, self.params, seed)
    }

    fn weight(&self, value: i64) -> f64 {
        (value.abs() as f64).powf(self.params.p)
    }
}

/// The logarithmic G-sampler `G(z) = log(1 + |z|)` (Algorithm 6) — the
/// concave law network monitoring wants (dampens elephant flows without
/// ignoring mice).
#[derive(Debug, Clone, Copy)]
pub struct LogGFactory {
    /// Bound on any coordinate's magnitude (the paper's stream length `m`).
    pub stream_bound_m: u64,
}

impl SamplerFactory for LogGFactory {
    type Sampler = RejectionGSampler;

    fn build(&self, universe: usize, seed: u64) -> RejectionGSampler {
        RejectionGSampler::log_sampler(universe, self.stream_bound_m, seed)
    }

    fn weight(&self, value: i64) -> f64 {
        if value == 0 {
            0.0
        } else {
            (1.0 + (value.abs() as f64)).ln()
        }
    }
}

// Factory wire encodings open with a one-byte kind tag, so restoring a
// checkpoint into an engine parameterized by the *wrong* factory type fails
// with a clean `WireError` instead of misreading parameter bytes.

/// Wire tag of [`L0Factory`].
const TAG_L0: u8 = 1;
/// Wire tag of [`LpLe2Factory`].
const TAG_LPLE2: u8 = 2;
/// Wire tag of [`PerfectLpFactory`].
const TAG_PERFECT_LP: u8 = 3;
/// Wire tag of [`LogGFactory`].
const TAG_LOG_G: u8 = 4;

fn expect_tag(r: &mut WireReader<'_>, want: u8) -> Result<(), WireError> {
    if r.get_u8()? == want {
        Ok(())
    } else {
        Err(WireError::Invalid("factory kind mismatch"))
    }
}

impl Encode for L0Factory {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(TAG_L0);
        self.params.encode(w)
    }
}

impl Decode for L0Factory {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        expect_tag(r, TAG_L0)?;
        Ok(Self {
            params: L0Params::decode(r)?,
        })
    }
}

impl Encode for LpLe2Factory {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(TAG_LPLE2);
        self.params.encode(w)?;
        w.put_usize(self.batch);
        Ok(())
    }
}

impl Decode for LpLe2Factory {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        expect_tag(r, TAG_LPLE2)?;
        let params = LpLe2Params::decode(r)?;
        let batch = r.get_usize()?;
        if !(1..=1 << 16).contains(&batch) {
            return Err(WireError::Invalid("batch width"));
        }
        Ok(Self { params, batch })
    }
}

impl Encode for PerfectLpFactory {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(TAG_PERFECT_LP);
        self.params.encode(w)
    }
}

impl Decode for PerfectLpFactory {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        expect_tag(r, TAG_PERFECT_LP)?;
        Ok(Self {
            params: PerfectLpParams::decode(r)?,
        })
    }
}

impl Encode for LogGFactory {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(TAG_LOG_G);
        w.put_u64(self.stream_bound_m);
        Ok(())
    }
}

impl Decode for LogGFactory {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        expect_tag(r, TAG_LOG_G)?;
        let stream_bound_m = r.get_u64()?;
        if stream_bound_m == 0 {
            return Err(WireError::Invalid("stream bound"));
        }
        Ok(Self { stream_bound_m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_laws() {
        let l0 = L0Factory::default();
        assert_eq!(l0.weight(0), 0.0);
        assert_eq!(l0.weight(-7), 1.0);

        let l2 = LpLe2Factory::for_universe(64, 2.0);
        assert_eq!(l2.weight(-3), 9.0);

        let l3 = PerfectLpFactory::for_universe(64, 3.0);
        assert_eq!(l3.weight(2), 8.0);

        let log = LogGFactory {
            stream_bound_m: 100,
        };
        assert_eq!(log.weight(0), 0.0);
        assert!((log.weight(9) - 10f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn factories_build_working_samplers() {
        use pts_stream::Update;
        let f = L0Factory::default();
        let mut s = f.build(16, 1);
        s.process(Update::new(3, 5));
        let got = s.sample().expect("one non-zero must sample");
        assert_eq!(got.index, 3);
        assert_eq!(got.estimate, 5.0);
    }
}
