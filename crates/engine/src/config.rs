//! Engine configuration.

use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// Configuration for a [`crate::ShardedEngine`].
///
/// The defaults are sized for "always queryable at modest cost": a handful
/// of shards and a small per-shard sampler pool. Production deployments tune
/// `shards` to the ingest parallelism they need and `pool_size` to the
/// query rate they must absorb between respawns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Universe size `n`: every update index must lie in `[0, n)`.
    pub universe: usize,
    /// Number of shards `S` the universe is hash-partitioned across.
    pub shards: usize,
    /// Independent sampler instances per shard (`k`): each query consumes
    /// instances, which respawn lazily from the shard's compact state.
    pub pool_size: usize,
    /// Master seed; all shard/instance seeds derive from it.
    pub seed: u64,
}

impl EngineConfig {
    /// A config over universe `[0, n)` with the default shape
    /// (4 shards × 3 samplers).
    pub fn new(universe: usize) -> Self {
        Self {
            universe,
            shards: 4,
            pool_size: 3,
            seed: 0,
        }
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard pool size.
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.pool_size = pool_size;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn validate(&self) {
        assert!(self.universe >= 2, "universe too small");
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.pool_size >= 1, "need at least one sampler per shard");
    }
}

impl Encode for EngineConfig {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.universe);
        w.put_usize(self.shards);
        w.put_usize(self.pool_size);
        w.put_u64(self.seed);
        Ok(())
    }
}

impl Decode for EngineConfig {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let universe = r.get_usize()?;
        let shards = r.get_usize()?;
        let pool_size = r.get_usize()?;
        let seed = r.get_u64()?;
        // `validate()` panics by design at construction time; the decode
        // path rejects the same degenerate shapes as errors (plus sanity
        // caps so corrupt counts cannot drive huge allocations).
        if universe < 2 || !(1..=1 << 16).contains(&shards) || !(1..=1 << 16).contains(&pool_size) {
            return Err(WireError::Invalid("engine configuration"));
        }
        Ok(Self {
            universe,
            shards,
            pool_size,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = EngineConfig::new(64).shards(8).pool_size(2).seed(9);
        assert_eq!(c.universe, 64);
        assert_eq!(c.shards, 8);
        assert_eq!(c.pool_size, 2);
        assert_eq!(c.seed, 9);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        EngineConfig::new(64).shards(0).validate();
    }
}
