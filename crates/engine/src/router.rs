//! The shard router: hash-partitioning of the universe and batched
//! per-shard update planning.
//!
//! Routing is a keyed hash of the index, not a contiguous range split, so a
//! skewed key space (all traffic in one prefix) still spreads across
//! shards. The router also owns the batched-ingest *plan*: scatter a batch
//! into per-shard runs, then sort and coalesce each run so every shard sees
//! at most one update per distinct index per batch — linearity makes the
//! coalesced batch equivalent, and the per-index work of the heavyweight
//! samplers (tens of sketch-row evaluations) dwarfs the sort.

use pts_stream::Update;
use pts_util::keyed_u64;

/// Hash-partitions `[0, n)` across `S` shards.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: usize,
    seed: u64,
}

impl ShardRouter {
    /// A router over `shards` shards, keyed by `seed`.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self { shards, seed }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `index` (stable for the router's lifetime).
    #[inline]
    pub fn shard_of(&self, index: u64) -> usize {
        // Multiply-shift of the keyed hash: unbiased bucket in [0, shards).
        ((keyed_u64(self.seed, index) as u128 * self.shards as u128) >> 64) as usize
    }

    /// Scatters `batch` into `plan` (one run per shard), then sorts each run
    /// by index and coalesces duplicate indices by summing deltas. Runs are
    /// cleared first; `plan` must have one entry per shard.
    ///
    /// # Panics
    /// Panics if `plan.len() != self.shards()`.
    pub fn plan_batch(&self, batch: &[Update], plan: &mut [Vec<Update>]) {
        assert_eq!(plan.len(), self.shards, "plan arity mismatch");
        for run in plan.iter_mut() {
            run.clear();
        }
        for u in batch {
            if u.delta != 0 {
                plan[self.shard_of(u.index)].push(*u);
            }
        }
        for run in plan.iter_mut() {
            run.sort_unstable_by_key(|u| u.index);
            coalesce_sorted(run);
        }
    }
}

/// Merges adjacent same-index updates in a sorted run, dropping zero nets.
fn coalesce_sorted(run: &mut Vec<Update>) {
    let mut write = 0usize;
    let mut read = 0usize;
    while read < run.len() {
        let index = run[read].index;
        let mut delta = 0i64;
        while read < run.len() && run[read].index == index {
            delta += run[read].delta;
            read += 1;
        }
        if delta != 0 {
            run[write] = Update::new(index, delta);
            write += 1;
        }
    }
    run.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let r = ShardRouter::new(8, 42);
        for i in 0..1_000u64 {
            let s = r.shard_of(i);
            assert!(s < 8);
            assert_eq!(s, r.shard_of(i));
        }
    }

    #[test]
    fn routing_is_roughly_balanced() {
        let r = ShardRouter::new(4, 7);
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[r.shard_of(i)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1, 3);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(u64::MAX), 0);
    }

    #[test]
    fn plan_batch_partitions_and_coalesces() {
        let r = ShardRouter::new(4, 11);
        let batch: Vec<Update> = vec![
            Update::new(1, 5),
            Update::new(2, 3),
            Update::new(1, -2),
            Update::new(3, 0),  // dropped: zero delta
            Update::new(2, -3), // cancels to zero net
            Update::new(9, 1),
        ];
        let mut plan: Vec<Vec<Update>> = (0..4).map(|_| Vec::new()).collect();
        r.plan_batch(&batch, &mut plan);
        let flat: Vec<Update> = plan.iter().flatten().copied().collect();
        // Net effect preserved: index 1 → +3, index 9 → +1, nothing else.
        let mut nets: Vec<(u64, i64)> = flat.iter().map(|u| (u.index, u.delta)).collect();
        nets.sort_unstable();
        assert_eq!(nets, vec![(1, 3), (9, 1)]);
        // Every update landed on its routed shard, sorted within the run.
        for (s, run) in plan.iter().enumerate() {
            assert!(run.windows(2).all(|w| w[0].index < w[1].index));
            assert!(run.iter().all(|u| r.shard_of(u.index) == s));
        }
    }

    #[test]
    fn plan_batch_reuses_buffers() {
        let r = ShardRouter::new(2, 1);
        let mut plan: Vec<Vec<Update>> = (0..2).map(|_| Vec::new()).collect();
        r.plan_batch(&[Update::new(5, 1)], &mut plan);
        r.plan_batch(&[Update::new(6, 2)], &mut plan);
        let total: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(total, 1, "stale updates must be cleared between batches");
    }
}
