//! The durable-snapshot contract: `checkpoint → restore` yields an engine
//! **bit-identical going forward** — the same subsequent call sequence
//! produces the same draws, the same masses, the same snapshots, and the
//! same stats as the uninterrupted original. Pinned the same way
//! `concurrent_equivalence.rs` pins the threaded front-end: every draw is
//! compared, across S ∈ {1, 4}, for both front-ends and across them.
//!
//! The second half is the adversarial-input contract: truncations at every
//! prefix, a bumped version byte, flipped payload bytes, and a
//! wrong-factory restore all return `WireError` — never a panic.

use pts_engine::{
    ConcurrentEngine, EngineConfig, L0Factory, LogGFactory, LpLe2Factory, SamplerFactory,
    ShardedEngine,
};
use pts_stream::{Stream, StreamStyle, Update};
use pts_util::wire::{Decode, WireError, WIRE_VERSION};
use pts_util::{Encode, Xoshiro256pp};

/// The shared scripted workload: ingest in small batches with draw bursts
/// interleaved, split at a mid-stream checkpoint instant.
fn workload(n: usize, seed: u64) -> (Vec<Update>, Vec<Update>) {
    let x = pts_stream::gen::zipf_vector(n, 1.1, 100, seed);
    let mut rng = Xoshiro256pp::new(seed ^ 0xBEEF);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.8 }, &mut rng);
    let updates = stream.updates().to_vec();
    let mid = updates.len() / 2;
    let (a, b) = updates.split_at(mid);
    (a.to_vec(), b.to_vec())
}

/// Drives the second half of the call sequence on both engines via the
/// given closures, asserting every observable agrees.
fn drive_identically<E1, E2>(
    original: &mut E1,
    restored: &mut E2,
    second_half: &[Update],
    ingest1: impl Fn(&mut E1, &[Update]),
    ingest2: impl Fn(&mut E2, &[Update]),
    observe1: impl Fn(&mut E1) -> (Option<pts_samplers::Sample>, f64),
    observe2: impl Fn(&mut E2) -> (Option<pts_samplers::Sample>, f64),
) {
    for (round, chunk) in second_half.chunks(23).enumerate() {
        ingest1(original, chunk);
        ingest2(restored, chunk);
        if round % 2 == 0 {
            for d in 0..3 {
                let (s1, m1) = observe1(original);
                let (s2, m2) = observe2(restored);
                assert_eq!(s1, s2, "draw diverged at round {round} draw {d}");
                assert_eq!(m1.to_bits(), m2.to_bits(), "mass diverged at {round}");
            }
        }
    }
    // Tail burst past pool capacity: the restored engine must walk the
    // identical lazy-respawn seed stream.
    for d in 0..16 {
        let (s1, _) = observe1(original);
        let (s2, _) = observe2(restored);
        assert_eq!(s1, s2, "tail draw {d} diverged");
    }
}

/// Checkpoint a `ShardedEngine` mid-stream, restore it, and require the
/// restored engine to be indistinguishable from the original thereafter.
fn sharded_roundtrip<F>(config: EngineConfig, factory: F, seed: u64)
where
    F: SamplerFactory + Encode + Decode + Send + 'static,
    F::Sampler: Encode + Decode + Send + 'static,
{
    let (first, second) = workload(config.universe, seed);
    let mut engine = ShardedEngine::new(config, factory);
    for chunk in first.chunks(31) {
        engine.ingest_batch(chunk);
    }
    // Consume some pool instances pre-checkpoint so slot/cursor/respawn
    // state is non-trivial in the payload.
    for _ in 0..3 {
        let _ = engine.sample();
    }

    let mut bytes = Vec::new();
    engine.checkpoint(&mut bytes).expect("checkpoint");
    let mut restored: ShardedEngine<F> = ShardedEngine::restore(&mut bytes.as_slice()).unwrap();

    assert_eq!(restored.config(), engine.config());
    assert_eq!(restored.stats(), engine.stats());
    assert_eq!(restored.snapshot(), engine.snapshot());
    assert_eq!(restored.mass().to_bits(), engine.mass().to_bits());
    assert_eq!(restored.support(), engine.support());

    drive_identically(
        &mut engine,
        &mut restored,
        &second,
        |e, c| e.ingest_batch(c),
        |e, c| e.ingest_batch(c),
        |e| (e.sample(), e.mass()),
        |e| (e.sample(), e.mass()),
    );
    assert_eq!(restored.snapshot(), engine.snapshot());
    assert_eq!(restored.stats(), engine.stats());
    assert_eq!(restored.respawns(), engine.respawns());
}

/// Same contract through the concurrent front-end, plus both cross-engine
/// directions: sequential checkpoint → concurrent restore and back.
fn concurrent_roundtrip<F>(config: EngineConfig, factory: F, seed: u64)
where
    F: SamplerFactory + Encode + Decode + Send + 'static,
    F::Sampler: Encode + Decode + Send + 'static,
{
    let (first, second) = workload(config.universe, seed);
    let mut engine = ConcurrentEngine::new(config, factory);
    for chunk in first.chunks(31) {
        engine.ingest_batch(chunk);
    }
    for _ in 0..3 {
        let _ = engine.sample();
    }

    let mut bytes = Vec::new();
    engine.checkpoint(&mut bytes).expect("checkpoint");

    // Concurrent → concurrent.
    let mut restored: ConcurrentEngine<F> =
        ConcurrentEngine::restore(&mut bytes.as_slice()).unwrap();
    assert_eq!(restored.stats(), engine.stats());
    assert_eq!(restored.snapshot(), engine.snapshot());
    drive_identically(
        &mut engine,
        &mut restored,
        &second,
        |e, c| e.ingest_batch(c),
        |e, c| e.ingest_batch(c),
        |e| (e.sample(), e.mass()),
        |e| (e.sample(), e.mass()),
    );
    assert_eq!(restored.snapshot(), engine.snapshot());
    assert_eq!(restored.stats(), engine.stats());

    // Concurrent checkpoint → sequential restore: the payload is
    // front-end-agnostic, and the sequential twin continues bit-identically
    // against a freshly restored concurrent sibling.
    let mut seq: ShardedEngine<F> = ShardedEngine::restore(&mut bytes.as_slice()).unwrap();
    let mut conc: ConcurrentEngine<F> = ConcurrentEngine::restore(&mut bytes.as_slice()).unwrap();
    drive_identically(
        &mut seq,
        &mut conc,
        &second,
        |e, c| e.ingest_batch(c),
        |e, c| e.ingest_batch(c),
        |e| (e.sample(), e.mass()),
        |e| (e.sample(), e.mass()),
    );
    assert_eq!(seq.snapshot(), conc.snapshot());
    assert_eq!(seq.stats(), conc.stats());

    // And the reverse direction: a sequential checkpoint restores into the
    // concurrent front-end.
    let mut seq_bytes = Vec::new();
    seq.checkpoint(&mut seq_bytes).expect("checkpoint");
    let mut back: ConcurrentEngine<F> =
        ConcurrentEngine::restore(&mut seq_bytes.as_slice()).unwrap();
    for d in 0..8 {
        assert_eq!(seq.sample(), back.sample(), "reverse-restore draw {d}");
    }
}

#[test]
fn sharded_restore_is_bit_identical_l0() {
    for shards in [1usize, 4] {
        let config = EngineConfig::new(96)
            .shards(shards)
            .pool_size(2)
            .seed(300 + shards as u64);
        sharded_roundtrip(config, L0Factory::default(), 40 + shards as u64);
    }
}

#[test]
fn sharded_restore_is_bit_identical_l2() {
    for shards in [1usize, 4] {
        let config = EngineConfig::new(64)
            .shards(shards)
            .pool_size(3)
            .seed(500 + shards as u64);
        sharded_roundtrip(config, LpLe2Factory::for_universe(64, 2.0), 50);
    }
}

#[test]
fn sharded_restore_is_bit_identical_log_g() {
    let config = EngineConfig::new(64).shards(4).pool_size(2).seed(77);
    sharded_roundtrip(
        config,
        LogGFactory {
            stream_bound_m: 10_000,
        },
        60,
    );
}

#[test]
fn concurrent_restore_is_bit_identical_l0() {
    for shards in [1usize, 4] {
        let config = EngineConfig::new(96)
            .shards(shards)
            .pool_size(2)
            .seed(700 + shards as u64);
        concurrent_roundtrip(config, L0Factory::default(), 70 + shards as u64);
    }
}

#[test]
fn concurrent_restore_is_bit_identical_l2() {
    for shards in [1usize, 4] {
        let config = EngineConfig::new(64)
            .shards(shards)
            .pool_size(2)
            .seed(900 + shards as u64);
        concurrent_roundtrip(config, LpLe2Factory::for_universe(64, 2.0), 90);
    }
}

#[test]
fn snapshot_wire_bytes_roundtrip_and_reject_corruption() {
    let mut e = ShardedEngine::new(
        EngineConfig::new(128).shards(4).pool_size(2).seed(1),
        L0Factory::default(),
    );
    let updates: Vec<Update> = (0..64).map(|i| Update::new(i * 2, 1 + i as i64)).collect();
    e.ingest_batch(&updates);
    let snap = e.snapshot();
    let bytes = snap.to_bytes();
    assert_eq!(
        pts_engine::EngineSnapshot::from_bytes(&bytes).unwrap(),
        snap
    );
    for cut in 0..bytes.len() {
        assert!(
            pts_engine::EngineSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "snapshot truncation at {cut} decoded"
        );
    }
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x08;
        assert!(
            pts_engine::EngineSnapshot::from_bytes(&corrupt).is_err(),
            "snapshot corruption at {i} decoded"
        );
    }
}

#[test]
fn shard_decode_rejects_out_of_universe_net_entries() {
    use pts_engine::{SamplerPool, Shard};
    use pts_samplers::PerfectL0Sampler;
    use pts_util::wire::WireWriter;

    // Hand-build a shard payload whose net vector addresses index 100 in a
    // universe of 4: a checksum-valid forgery of this shape must be caught
    // by decode itself (it would otherwise panic later when the snapshot is
    // densified).
    let mut w = WireWriter::new();
    L0Factory::default().encode(&mut w).unwrap();
    w.put_u64(4); // universe
    w.put_f64(1.0); // mass
    w.put_u64(1); // one net entry
    w.put_u64(100); // index 100 >= universe
    w.put_i64(5);
    SamplerPool::<PerfectL0Sampler>::new(1, 7)
        .encode(&mut w)
        .unwrap();
    let res = <Shard<L0Factory> as Decode>::from_wire_bytes(w.as_bytes());
    assert!(
        matches!(res, Err(WireError::Invalid("net entry outside universe"))),
        "got {res:?}"
    );
}

#[test]
fn malformed_checkpoints_error_never_panic() {
    let mut e = ShardedEngine::new(
        EngineConfig::new(64).shards(2).pool_size(2).seed(9),
        L0Factory::default(),
    );
    e.ingest_batch(&[Update::new(3, 5), Update::new(40, -2)]);
    let mut bytes = Vec::new();
    e.checkpoint(&mut bytes).unwrap();

    // Truncation at every prefix length.
    for cut in 0..bytes.len() {
        let res: Result<ShardedEngine<L0Factory>, _> =
            ShardedEngine::restore(&mut bytes[..cut].as_ref());
        assert!(res.is_err(), "truncation at {cut} restored");
    }
    // Version bump.
    let mut bumped = bytes.clone();
    bumped[4] = WIRE_VERSION + 1;
    assert!(matches!(
        ShardedEngine::<L0Factory>::restore(&mut bumped.as_slice()),
        Err(WireError::BadVersion { .. })
    ));
    // Checksum catches payload corruption (sample every 7th byte for
    // speed; the frame checksum covers all of them identically).
    for i in (6..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x20;
        assert!(
            ShardedEngine::<L0Factory>::restore(&mut corrupt.as_slice()).is_err(),
            "corruption at {i} restored"
        );
    }
    // Wrong factory type: an L0 checkpoint refuses to restore as LpLe2.
    assert!(matches!(
        ShardedEngine::<LpLe2Factory>::restore(&mut bytes.as_slice()),
        Err(WireError::Invalid(_))
    ));
    // Concurrent restore enforces the same validation.
    assert!(
        ConcurrentEngine::<L0Factory>::restore(&mut bytes[..bytes.len() / 2].as_ref()).is_err()
    );
}
