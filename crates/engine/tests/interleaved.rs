//! Interleaved ingest→sample→ingest regression: the serving pattern the
//! `sharding_law.rs` battery does not cover (it only queries after all
//! ingest). Mid-stream draws consume pool instances, so the second ingest
//! phase advances a *partially consumed* pool and later draws are served by
//! lazy respawns that must catch up from the mid-stream net state — the
//! chi-squared tests here pin both query phases to the exact law of the
//! vector at that point of the stream, for S ∈ {1, 4}.

use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory, SamplerFactory, ShardedEngine};
use pts_stream::{FrequencyVector, Stream, StreamStyle, Update};
use pts_util::stats::chi_square_test;
use pts_util::Xoshiro256pp;

/// Normalized ideal law for a factory over `x` (empty if mass is zero).
fn ideal_probs<F: SamplerFactory>(x: &FrequencyVector, factory: &F) -> Vec<f64> {
    let weights: Vec<f64> = x.values().iter().map(|&v| factory.weight(v)).collect();
    let total: f64 = weights.iter().sum();
    weights.iter().map(|w| w / total).collect()
}

/// The net vector after applying `updates` to the zero vector.
fn net_of(n: usize, updates: &[Update]) -> FrequencyVector {
    let mut x = FrequencyVector::zeros(n);
    for &u in updates {
        x.apply(u);
    }
    x
}

#[test]
fn interleaved_ingest_sample_ingest_holds_the_law_both_times() {
    // A support with uneven magnitudes; the L0 law stays uniform over
    // whatever the support is *at query time*.
    let mut values = vec![0i64; 24];
    for (k, &i) in [0usize, 3, 6, 9, 12, 15, 18, 21].iter().enumerate() {
        values[i] = if k % 2 == 0 {
            5 + k as i64
        } else {
            -(2 + 2 * k as i64)
        };
    }
    let x = FrequencyVector::from_values(values);
    let factory = L0Factory::default();
    let mut rng = Xoshiro256pp::new(0xA11CE);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.8 }, &mut rng);
    let updates = stream.updates();
    let split = updates.len() / 2;
    let (first, second) = updates.split_at(split);
    let mid = net_of(x.n(), first);
    let mid_probs = ideal_probs(&mid, &factory);
    let end_probs = ideal_probs(&x, &factory);
    let trials = 1_500usize;

    for shards in [1usize, 4] {
        let config = EngineConfig::new(x.n())
            .shards(shards)
            .pool_size(2)
            .seed(400 + shards as u64);
        let mut engine = ShardedEngine::new(config, factory);

        // Phase 1: half the stream, then a full query burst mid-stream.
        for chunk in first.chunks(48) {
            engine.ingest_batch(chunk);
        }
        let mut mid_counts = vec![0u64; x.n()];
        let mut mid_fails = 0u64;
        for _ in 0..trials {
            match engine.sample() {
                Some(s) => mid_counts[s.index as usize] += 1,
                None => mid_fails += 1,
            }
        }
        assert!(
            mid_fails < trials as u64 / 20,
            "S={shards}: mid-stream fails {mid_fails}/{trials}"
        );
        let chi_mid = chi_square_test(&mid_counts, &mid_probs, 5.0);
        assert!(
            chi_mid.p_value > 1e-4,
            "S={shards}: mid-stream law broken, chi2 {:.2} p {:.6}",
            chi_mid.statistic,
            chi_mid.p_value
        );

        // Phase 2: the rest of the stream lands on a pool that the query
        // burst consumed — every later draw is served by a respawn that
        // caught up mid-stream — then the final law must hold too.
        for chunk in second.chunks(48) {
            engine.ingest_batch(chunk);
        }
        let mut end_counts = vec![0u64; x.n()];
        let mut end_fails = 0u64;
        for _ in 0..trials {
            match engine.sample() {
                Some(s) => end_counts[s.index as usize] += 1,
                None => end_fails += 1,
            }
        }
        assert!(
            end_fails < trials as u64 / 20,
            "S={shards}: end fails {end_fails}/{trials}"
        );
        let chi_end = chi_square_test(&end_counts, &end_probs, 5.0);
        assert!(
            chi_end.p_value > 1e-4,
            "S={shards}: post-interleave law broken, chi2 {:.2} p {:.6}",
            chi_end.statistic,
            chi_end.p_value
        );
        assert!(
            engine.respawns() > 0,
            "S={shards}: the burst must have forced mid-stream respawns"
        );
    }
}

#[test]
fn interleaved_concurrent_engine_matches_the_final_law() {
    // Same interleaving through the threaded front-end, S = 4: ingest,
    // query burst (consuming pools mid-stream), parallel prime, ingest the
    // rest, then chi-squared on the final law.
    let x = FrequencyVector::from_values(vec![10, -20, 30, 5, 0, 15, -8, 12]);
    let factory = pts_engine::LpLe2Factory::for_universe(x.n(), 2.0);
    let probs = ideal_probs(&x, &factory);
    let mut rng = Xoshiro256pp::new(0xBEE);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.8 }, &mut rng);
    let updates = stream.updates();
    let (first, second) = updates.split_at(updates.len() / 2);

    let config = EngineConfig::new(x.n()).shards(4).pool_size(2).seed(77);
    let mut engine = ConcurrentEngine::new(config, factory);
    for chunk in first.chunks(32) {
        engine.ingest_batch(chunk);
    }
    for _ in 0..40 {
        let _ = engine.sample();
    }
    engine.prime(); // parallel catch-up from the mid-stream net state
    for chunk in second.chunks(32) {
        engine.ingest_batch(chunk);
    }
    let trials = 1_200usize;
    let mut counts = vec![0u64; x.n()];
    let mut fails = 0u64;
    for _ in 0..trials {
        match engine.sample() {
            Some(s) => counts[s.index as usize] += 1,
            None => fails += 1,
        }
    }
    assert!(fails < trials as u64 / 4, "fails {fails}/{trials}");
    let chi = chi_square_test(&counts, &probs, 5.0);
    assert!(
        chi.p_value > 1e-4,
        "concurrent interleave law broken, chi2 {:.2} p {:.6}",
        chi.statistic,
        chi.p_value
    );
}
