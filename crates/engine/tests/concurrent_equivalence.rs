//! The concurrent engine's determinism contract: under a fixed seed and
//! the same call sequence, [`ConcurrentEngine`] is **bit-identical** to
//! [`ShardedEngine`] — same samples in the same order, same masses, same
//! snapshots, same stats. Threads change when shard state advances, never
//! what it advances to: shard seeds, router plans, per-shard run order,
//! and the query-side RNG stream are all shared, so any divergence is a
//! real synchronization bug, not noise.

use pts_engine::{
    ConcurrentEngine, EngineConfig, L0Factory, LpLe2Factory, SamplerFactory, ShardedEngine,
};
use pts_stream::{Stream, StreamStyle, Update};
use pts_util::{Encode, Xoshiro256pp};

fn lockstep<F>(config: EngineConfig, factory: F, seed: u64)
where
    F: SamplerFactory + Send + 'static + Encode,
    F::Sampler: Send + 'static + Encode,
{
    let mut seq = ShardedEngine::new(config, factory.clone());
    let mut conc = ConcurrentEngine::new(config, factory);

    let x = pts_stream::gen::zipf_vector(config.universe, 1.1, 120, seed);
    let mut rng = Xoshiro256pp::new(seed ^ 0xC0FFEE);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.9 }, &mut rng);

    // Interleave ingest and query bursts; compare *every* draw.
    for (round, chunk) in stream.batches(37).enumerate() {
        seq.ingest_batch(chunk);
        conc.ingest_batch(chunk);
        if round % 3 == 0 {
            for _ in 0..4 {
                assert_eq!(
                    seq.sample(),
                    conc.sample(),
                    "draw diverged at round {round}"
                );
            }
            assert_eq!(seq.mass(), conc.mass(), "mass diverged at round {round}");
        }
    }
    // Final state: masses, support, snapshot, and stats all bit-identical.
    assert_eq!(seq.shard_masses(), conc.shard_masses());
    assert_eq!(seq.support(), conc.support());
    assert_eq!(seq.snapshot(), conc.snapshot());
    assert_eq!(seq.stats(), conc.stats());
    // Tail burst: keep drawing well past pool capacity so both engines go
    // through their (identical) lazy-respawn seed streams.
    for i in 0..24 {
        assert_eq!(seq.sample(), conc.sample(), "tail draw {i} diverged");
    }
    assert_eq!(seq.respawns(), conc.respawns());
    assert_eq!(seq.stats(), conc.stats());
}

#[test]
fn concurrent_engine_is_bit_identical_to_sequential_l0() {
    for shards in [1usize, 2, 8] {
        let config = EngineConfig::new(96)
            .shards(shards)
            .pool_size(2)
            .seed(1000 + shards as u64);
        lockstep(config, L0Factory::default(), 5 + shards as u64);
    }
}

#[test]
fn concurrent_engine_is_bit_identical_to_sequential_l2() {
    let config = EngineConfig::new(64).shards(4).pool_size(3).seed(4242);
    lockstep(config, LpLe2Factory::for_universe(64, 2.0), 99);
}

#[test]
fn merge_paths_agree_across_engine_kinds() {
    // A sequential engine and a concurrent engine each ingest half the
    // stream; merging either snapshot into the other kind reproduces the
    // exact sum, and the merged engines keep agreeing draw for draw.
    let f = L0Factory::default();
    let config = EngineConfig::new(48).shards(3).pool_size(2).seed(7);
    let x = pts_stream::gen::zipf_vector(48, 1.0, 40, 21);
    let y = pts_stream::gen::zipf_vector(48, 1.0, 40, 22);
    let xu: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
    let yu: Vec<Update> = y.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();

    let mut seq = ShardedEngine::new(config, f);
    seq.ingest_batch(&xu);
    let mut conc = ConcurrentEngine::new(config, f);
    conc.ingest_batch(&xu);
    let mut other = ShardedEngine::new(EngineConfig::new(48).shards(5).seed(99), f);
    other.ingest_batch(&yu);
    let snap = other.snapshot();

    seq.merge(&snap);
    conc.merge(&snap);
    assert_eq!(seq.snapshot().to_vector(), x.add(&y));
    assert_eq!(seq.snapshot(), conc.snapshot());
    for _ in 0..12 {
        assert_eq!(seq.sample(), conc.sample());
    }
}
