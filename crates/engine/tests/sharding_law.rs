//! The engine's headline correctness property: a sharded engine over
//! `S ∈ {1, 2, 8}` shards produces the **same sampling law** as a single
//! unsharded sampler, verified by chi-squared goodness-of-fit against the
//! ideal law `G(x_i)/Σ_j G(x_j)` over a small universe with seeded RNG.
//!
//! Two flavours:
//! * a deterministic battery at realistic draw counts (the acceptance
//!   test), and
//! * a proptest sweep over random vectors (smaller draw counts, looser
//!   threshold) to probe unusual supports — cancellations, single
//!   survivors, sign flips.

use proptest::prelude::*;
use pts_engine::{EngineConfig, L0Factory, LpLe2Factory, SamplerFactory, ShardedEngine};
use pts_samplers::{L0Params, PerfectL0Sampler, TurnstileSampler};
use pts_stream::{FrequencyVector, Stream, StreamStyle};
use pts_util::stats::chi_square_test;
use pts_util::Xoshiro256pp;

/// Draws `trials` samples from one engine over the (churny, batched)
/// stream of `x` and returns per-index counts.
fn engine_counts<F: SamplerFactory>(
    x: &FrequencyVector,
    shards: usize,
    pool: usize,
    factory: F,
    trials: usize,
    seed: u64,
) -> (Vec<u64>, u64) {
    let config = EngineConfig::new(x.n())
        .shards(shards)
        .pool_size(pool)
        .seed(seed);
    let mut engine = ShardedEngine::new(config, factory);
    let mut rng = Xoshiro256pp::new(seed ^ 0xFACE);
    let stream = Stream::from_target(x, StreamStyle::Turnstile { churn: 0.8 }, &mut rng);
    engine.ingest_stream(&stream, 64);
    let mut counts = vec![0u64; x.n()];
    let mut fails = 0;
    for _ in 0..trials {
        match engine.sample() {
            Some(s) => counts[s.index as usize] += 1,
            None => fails += 1,
        }
    }
    (counts, fails)
}

/// The ideal (unnormalized) law for a factory over `x`.
fn ideal_weights<F: SamplerFactory>(x: &FrequencyVector, factory: &F) -> Vec<f64> {
    x.values().iter().map(|&v| factory.weight(v)).collect()
}

#[test]
fn l0_law_matches_unsharded_sampler_across_shard_counts() {
    // A support with wildly uneven magnitudes: the L0 law must stay uniform
    // over the support regardless of values or shard count.
    let mut values = vec![0i64; 24];
    for (k, &i) in [1usize, 4, 7, 11, 13, 17, 20, 23].iter().enumerate() {
        values[i] = if k % 2 == 0 { 1 << k } else { -(3 + k as i64) };
    }
    let x = FrequencyVector::from_values(values);
    let factory = L0Factory::default();
    let weights = ideal_weights(&x, &factory);
    let probs: Vec<f64> = {
        let total: f64 = weights.iter().sum();
        weights.iter().map(|w| w / total).collect()
    };
    let trials = 3_000;

    // The unsharded baseline: independent one-shot samplers, as the paper
    // runs them.
    let mut baseline = vec![0u64; x.n()];
    for t in 0..trials as u64 {
        let mut s = PerfectL0Sampler::new(x.n(), L0Params::default(), 50_000 + t);
        s.ingest_vector(&x);
        if let Some(sample) = s.sample() {
            baseline[sample.index as usize] += 1;
        }
    }
    let chi_base = chi_square_test(&baseline, &probs, 5.0);
    assert!(chi_base.p_value > 1e-4, "baseline p {}", chi_base.p_value);

    for shards in [1usize, 2, 8] {
        let (counts, fails) = engine_counts(&x, shards, 2, factory, trials, 97 + shards as u64);
        let drawn: u64 = counts.iter().sum();
        assert!(
            fails < trials as u64 / 20,
            "S={shards}: fails {fails}/{trials}"
        );
        let chi = chi_square_test(&counts, &probs, 5.0);
        assert!(
            chi.p_value > 1e-4,
            "S={shards}: chi2 stat {:.2} p {:.6} over {drawn} draws",
            chi.statistic,
            chi.p_value
        );
    }
}

#[test]
fn l2_law_matches_ideal_across_shard_counts() {
    let x = FrequencyVector::from_values(vec![10, -20, 30, 5, 0, 15, -8, 12]);
    let factory = LpLe2Factory::for_universe(x.n(), 2.0);
    let weights = ideal_weights(&x, &factory);
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let trials = 1_200;
    for shards in [1usize, 2, 8] {
        let (counts, fails) = engine_counts(&x, shards, 2, factory, trials, 300 + shards as u64);
        let drawn: u64 = counts.iter().sum();
        assert!(
            fails < trials as u64 / 4,
            "S={shards}: fails {fails}/{trials}"
        );
        let chi = chi_square_test(&counts, &probs, 5.0);
        assert!(
            chi.p_value > 1e-4,
            "S={shards}: chi2 stat {:.2} p {:.6} over {drawn} draws",
            chi.statistic,
            chi.p_value
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random sparse vectors, every shard count: the engine's empirical L0
    /// law fits the uniform-over-support ideal.
    #[test]
    fn l0_law_holds_on_random_vectors(
        values in proptest::collection::vec(-40i64..=40, 12..=20),
        seed in 0u64..10_000,
    ) {
        let x = FrequencyVector::from_values(values);
        let factory = L0Factory::default();
        let weights = ideal_weights(&x, &factory);
        let mass: f64 = weights.iter().sum();
        for shards in [1usize, 2, 8] {
            let (counts, fails) = engine_counts(&x, shards, 2, factory, 600, seed);
            if mass == 0.0 {
                prop_assert_eq!(counts.iter().sum::<u64>(), 0);
                continue;
            }
            prop_assert!(fails < 60, "S={} fails {}", shards, fails);
            let probs: Vec<f64> = weights.iter().map(|w| w / mass).collect();
            let chi = chi_square_test(&counts, &probs, 5.0);
            prop_assert!(
                chi.p_value > 1e-5,
                "S={} p {} stat {}", shards, chi.p_value, chi.statistic
            );
        }
    }
}
