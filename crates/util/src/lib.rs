//! # pts-util
//!
//! Shared foundation for the `perfect-sampling` stack: deterministic seeded
//! RNG streams, k-wise independent hash families, the random variates the
//! paper's samplers are built from (exponential / Gaussian / geometric /
//! binomial / multinomial), the `rnd_η` discretization grid of §3, and the
//! statistics used by the experiment harness to compare empirical sampling
//! laws against the ideal `G(x_i)/Σ G(x_j)` distribution, plus the two
//! byte formats everything durable or remote speaks: the versioned binary
//! [`wire`] encoding and the framed request/response service [`protocol`]
//! layered on it.
//!
//! Everything here is dependency-free and deterministic given a `u64` seed;
//! see `DESIGN.md` (S1–S5) for where each piece is used.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod discretize;
pub mod hashing;
pub mod protocol;
pub mod rng;
pub mod stats;
pub mod table;
pub mod variates;
pub mod wire;

pub use discretize::EtaGrid;
pub use hashing::KWiseHash;
pub use protocol::{ErrorCode, Request, Response, ServiceError, ServiceStats};
pub use rng::{derive_seed, keyed_u64, mix64, SplitMix64, Xoshiro256pp};
pub use table::Table;
pub use wire::{Decode, Encode, WireError, WireReader, WireWriter};
