//! The wire format: a serde-free, versioned binary encoding for sketch and
//! engine state.
//!
//! Linearity makes every sampler in this stack mergeable; this module makes
//! the merge layer *durable*. A [`WireWriter`]/[`WireReader`] pair provides
//! the primitive vocabulary (LEB128 varints, zigzag signed integers, raw
//! IEEE-754 bit patterns for floats — bit-exact by construction), the
//! [`Encode`]/[`Decode`] traits are the contract every sketch, sampler, and
//! engine component implements, and [`write_frame`]/[`read_frame`] wrap a
//! payload in the self-describing outer envelope
//!
//! ```text
//! "PTSW" | version: u8 | kind: u8 | len: varint | payload | fnv1a64 checksum
//! ```
//!
//! Design rules (see DESIGN.md §8 for the full compatibility story):
//!
//! * **Bit-exactness.** Floats are encoded as raw `to_bits` octets, RNG
//!   states as their raw words — a decoded object is *the same value*, so a
//!   restored engine draws the same samples the original would have.
//! * **Adversarial-input safety.** Every read is bounds-checked; length
//!   prefixes are validated against the bytes actually present before any
//!   allocation; malformed input yields a [`WireError`], never a panic and
//!   never an attacker-sized allocation.
//! * **Versioning.** The envelope carries one format version byte; readers
//!   reject versions they do not know ([`WireError::BadVersion`]) instead
//!   of guessing. In-payload compatibility is by construction: payloads are
//!   never extended in place — a layout change bumps the version.

use crate::hashing::{KWiseHash, MERSENNE_P};
use crate::rng::Xoshiro256pp;
use std::io::{Read, Write};

/// Magic bytes opening every framed payload.
pub const WIRE_MAGIC: [u8; 4] = *b"PTSW";

/// The current wire-format version.
///
/// Version history (PROTOCOL.md §5 carries the service-facing notes):
///
/// * **1** — the original format (durable snapshots + the PR-4 service
///   protocol).
/// * **2** — the `Stats` response body gained the leading `universe`
///   varint (a remote caller — the cluster coordinator in particular —
///   must be able to learn which universe a node's exact `G`-mass refers
///   to), and the request grammar tightened: an `IngestBatch` must carry
///   at least one update. Grammar changes are never made in place, hence
///   the bump.
/// * **3** — request and response payloads lead with a varint
///   `request_id` (client-assigned, echoed verbatim), multiplexing many
///   in-flight requests over one connection with out-of-order completion.
///   Id `0` is reserved for server error responses that cannot be
///   attributed to a request (the id itself failed to decode). Same rule
///   as v2: the payload layout changed, so the version bumps and v2
///   endpoints reject v3 frames recoverably (and vice versa).
/// * **4** — request payloads carry a varint `namespace` id between the
///   request id and the request tag, addressing one of many logical
///   tenant engines served by a single endpoint (namespace 0 is the
///   default tenant every server has). Three namespace-management
///   request tags and their responses were added, plus the
///   `unknown-namespace` error code. Response payloads are unchanged.
///   As always the layout change bumps the version: v3 endpoints reject
///   v4 frames recoverably (and vice versa).
/// * **5** — request payloads carry a varint-framed *trace context*
///   between the namespace and the request tag: a single `0` varint for
///   untraced requests, or a nonzero `trace_id` varint followed by a
///   `parent_span_id` varint for requests sampled into a distributed
///   trace. Response payloads are unchanged. Same never-extend-in-place
///   rule: the layout changed, so the version bumps and v4 endpoints
///   reject v5 frames recoverably (and vice versa).
pub const WIRE_VERSION: u8 = 5;

/// Frame kind: a full engine checkpoint (config + factory + RNG + stats +
/// per-shard state).
pub const KIND_ENGINE: u8 = 1;

/// Frame kind: a compact `EngineSnapshot`-style sparse net vector.
pub const KIND_SNAPSHOT: u8 = 2;

/// Frame kind: a standalone sketch or sampler object.
pub const KIND_OBJECT: u8 = 3;

/// Frame kind: a service request ([`crate::protocol::Request`]).
pub const KIND_REQUEST: u8 = 4;

/// Frame kind: a service response ([`crate::protocol::Response`]).
pub const KIND_RESPONSE: u8 = 5;

/// Everything that can go wrong while decoding wire bytes.
#[derive(Debug)]
pub enum WireError {
    /// The input ended before the encoded value did.
    Truncated,
    /// The frame does not open with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame was written by an unknown format version.
    BadVersion {
        /// The version byte found in the frame.
        got: u8,
    },
    /// The frame checksum does not match its payload.
    BadChecksum,
    /// A structurally invalid encoding (bad tag, inconsistent lengths,
    /// out-of-range field, overlong varint, …).
    Invalid(&'static str),
    /// The value cannot be represented on the wire (e.g. a custom
    /// G-function closure).
    Unsupported(&'static str),
    /// Decoding succeeded but bytes were left over.
    TrailingBytes,
    /// An I/O error from the underlying reader.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire input truncated"),
            WireError::BadMagic => write!(f, "bad wire magic (not a PTSW frame)"),
            WireError::BadVersion { got } => {
                write!(f, "unknown wire version {got} (expected {WIRE_VERSION})")
            }
            WireError::BadChecksum => write!(f, "wire checksum mismatch"),
            WireError::Invalid(what) => write!(f, "invalid wire encoding: {what}"),
            WireError::Unsupported(what) => write!(f, "not wire-encodable: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after decoded value"),
            WireError::Io(kind) => write!(f, "wire i/o error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// The standard 64-bit FNV offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The standard 64-bit FNV prime (0x100000001b3).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Continues an FNV-1a hash over `bytes` from state `h` (chain from
/// [`FNV_OFFSET`] to hash a logical concatenation without allocating it).
fn fnv1a64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a byte slice — the frame checksum. Not cryptographic; it
/// guards against truncation, bit rot, and mis-framing, which is the threat
/// model for checkpoint files and snapshot shipping. This is textbook
/// 64-bit FNV-1a (offset 0xcbf29ce484222325, prime 0x100000001b3), so an
/// independent implementation of the spec interoperates.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(FNV_OFFSET, bytes)
}

/// The frame checksum: FNV-1a over the version byte, the kind byte, and
/// the payload, in that order.
fn frame_checksum(version: u8, kind: u8, payload: &[u8]) -> u64 {
    fnv1a64_continue(fnv1a64(&[version, kind]), payload)
}

/// Appends wire primitives to a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 varint (1–10 bytes).
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Zigzag-coded signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// `i128` as raw little-endian octets (sparse-recovery cell sums).
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as its raw IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends raw bytes verbatim (no length prefix) — for splicing an
    /// already-encoded blob into a larger payload.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// A `u64` slice with a length prefix.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// An `f64` slice with a length prefix.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// A raw byte blob with a length prefix (an opaque nested payload, e.g.
    /// a framed checkpoint riding inside a protocol response).
    pub fn put_blob(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// A UTF-8 string as a length-prefixed byte blob.
    pub fn put_str(&mut self, s: &str) {
        self.put_blob(s.as_bytes());
    }
}

/// Bounds-checked cursor over wire bytes.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts the input is fully consumed (top-level decoders call this to
    /// reject padded/concatenated garbage).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 varint; rejects encodings longer than 10 bytes or overflowing
    /// 64 bits.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            let chunk = (byte & 0x7F) as u64;
            if shift == 63 && chunk > 1 {
                return Err(WireError::Invalid("varint overflow"));
            }
            v |= chunk << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::Invalid("overlong varint"))
    }

    /// A varint that must fit a `usize`.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError::Invalid("length exceeds usize"))
    }

    /// A length prefix for a sequence whose elements occupy at least
    /// `min_elem_bytes` each; rejects lengths the remaining input cannot
    /// possibly hold, so a hostile prefix can never drive a huge allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        let need = len
            .checked_mul(min_elem_bytes.max(1))
            .ok_or(WireError::Invalid("length overflow"))?;
        if need > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }

    /// Zigzag-coded signed varint.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let z = self.get_u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Raw little-endian `i128`.
    pub fn get_i128(&mut self) -> Result<i128, WireError> {
        let end = self.pos.checked_add(16).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        let arr: [u8; 16] = bytes.try_into().map_err(|_| WireError::Truncated)?;
        Ok(i128::from_le_bytes(arr))
    }

    /// Raw IEEE-754 `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| WireError::Truncated)?;
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// A boolean byte; anything but 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("boolean byte")),
        }
    }

    /// A length-prefixed `u64` sequence.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.get_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// A length-prefixed `f64` sequence.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.get_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// A length-prefixed raw byte blob (the inverse of
    /// [`WireWriter::put_blob`]). The length is validated against the bytes
    /// actually present before allocating.
    pub fn get_blob(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_len(1)?;
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(bytes.to_vec())
    }

    /// A length-prefixed UTF-8 string; invalid UTF-8 is a [`WireError`],
    /// never a panic.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.get_blob()?).map_err(|_| WireError::Invalid("non-UTF-8 string"))
    }
}

/// A value with a binary wire encoding.
///
/// Encoding is fallible only for values that cannot cross process
/// boundaries at all (e.g. samplers wrapping opaque user closures); every
/// shippable value encodes unconditionally.
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError>;

    /// Convenience: the unframed encoding as a fresh byte vector.
    fn to_wire_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut w = WireWriter::new();
        self.encode(&mut w)?;
        Ok(w.into_bytes())
    }
}

/// A value decodable from its wire encoding.
///
/// Implementations validate shape and ranges before allocating or
/// constructing, and must never panic on malformed input.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: decodes a value that must span exactly `bytes`.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Writes the framed envelope around `payload`:
/// magic, version, kind, varint length, payload, FNV-1a checksum (over the
/// version byte, the kind byte, and the payload).
pub fn write_frame<W: Write>(kind: u8, payload: &[u8], sink: &mut W) -> std::io::Result<()> {
    sink.write_all(&WIRE_MAGIC)?;
    sink.write_all(&[WIRE_VERSION, kind])?;
    let mut len = WireWriter::new();
    len.put_usize(payload.len());
    sink.write_all(len.as_bytes())?;
    sink.write_all(payload)?;
    sink.write_all(&frame_checksum(WIRE_VERSION, kind, payload).to_le_bytes())?;
    Ok(())
}

/// A frame-read failure, classified by whether the byte stream is still
/// at a frame boundary afterwards — what lets a *server* decide between
/// answering in-band and closing the connection (see
/// [`crate::protocol`]'s error-response semantics).
#[derive(Debug)]
pub enum FrameError {
    /// The full frame extent was consumed; the next byte is the start of
    /// the next frame. Report in-band and keep the connection.
    Recoverable(WireError),
    /// Framing is destroyed (or the peer is gone); report best-effort and
    /// close.
    Fatal(WireError),
    /// Fatal, specifically because the length field exceeded the caller's
    /// cap — split out so a server can answer with its wire-stable
    /// "too large" code without matching on error text.
    TooLarge(WireError),
}

impl FrameError {
    /// The uniform recoverability classification shared across the
    /// stack's error surfaces (`pts_server::ClientError::is_recoverable`,
    /// `pts_cluster::ClusterError::is_recoverable` follow the same
    /// contract): `true` means the byte stream is still at a frame
    /// boundary, so the consumer may answer in-band and keep using the
    /// connection; `false` means framing state is lost and the connection
    /// must be closed (and, for a client, re-established). Only
    /// [`FrameError::Recoverable`] is recoverable — [`FrameError::Fatal`]
    /// and [`FrameError::TooLarge`] both destroy the stream position.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, FrameError::Recoverable(_))
    }

    /// The underlying wire error, regardless of class.
    pub fn wire_error(&self) -> &WireError {
        match self {
            FrameError::Recoverable(e) | FrameError::Fatal(e) | FrameError::TooLarge(e) => e,
        }
    }

    /// Collapses the classification back into the plain wire error
    /// (strict readers treat every class as failure).
    pub fn into_wire_error(self) -> WireError {
        match self {
            FrameError::Recoverable(e) | FrameError::Fatal(e) | FrameError::TooLarge(e) => e,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Recoverable(e) => write!(f, "recoverable frame error: {e}"),
            FrameError::Fatal(e) => write!(f, "fatal frame error: {e}"),
            FrameError::TooLarge(e) => write!(f, "fatal frame error (over size cap): {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one envelope of `expect_kind`, consuming **exactly one frame
/// extent whenever the length field is readable and within `max_len`** —
/// the property that lets a server answer a corrupt frame in-band and
/// keep the connection at a valid boundary.
///
/// Validation order is therefore deliberate: magic and length first
/// (their failure is [`FrameError::Fatal`] / [`FrameError::TooLarge`] —
/// the stream position is unrecoverable), then the payload and checksum
/// bytes are consumed in full, and only *then* are version, kind, and
/// checksum judged (their failure is [`FrameError::Recoverable`]). A
/// hostile length neither allocates up front (the payload is read
/// through a length-capped reader) nor makes the caller consume more
/// than `max_len` bytes.
///
/// This is the one frame-parsing implementation; the strict
/// [`read_frame`] delegates to it.
pub fn read_frame_lenient<R: Read>(
    expect_kind: u8,
    max_len: u64,
    src: &mut R,
) -> Result<Vec<u8>, FrameError> {
    let fatal = |e: WireError| FrameError::Fatal(e);
    let mut magic = [0u8; 4];
    src.read_exact(&mut magic).map_err(|e| fatal(e.into()))?;
    if magic != WIRE_MAGIC {
        return Err(fatal(WireError::BadMagic));
    }
    let mut head = [0u8; 2];
    src.read_exact(&mut head).map_err(|e| fatal(e.into()))?;
    let (version, kind) = (head[0], head[1]);
    // The length varint, byte-at-a-time off the reader.
    let mut len: u64 = 0;
    let mut done = false;
    for shift in (0..64).step_by(7) {
        let mut b = [0u8; 1];
        src.read_exact(&mut b).map_err(|e| fatal(e.into()))?;
        let chunk = (b[0] & 0x7F) as u64;
        if shift == 63 && chunk > 1 {
            return Err(fatal(WireError::Invalid("varint overflow")));
        }
        len |= chunk << shift;
        if b[0] & 0x80 == 0 {
            done = true;
            break;
        }
    }
    if !done {
        return Err(fatal(WireError::Invalid("overlong varint")));
    }
    if len > max_len {
        return Err(FrameError::TooLarge(WireError::Invalid(
            "frame exceeds size cap",
        )));
    }
    // Consume the full frame extent: payload + checksum. `take` bounds the
    // read; the Vec grows only as real bytes arrive, so a hostile length
    // cannot force a giant allocation. From here on the stream is at a
    // frame boundary, so failures become recoverable.
    let mut payload = Vec::new();
    let read = src
        .take(len)
        .read_to_end(&mut payload)
        .map_err(|e| fatal(e.into()))?;
    if (read as u64) < len {
        return Err(fatal(WireError::Truncated));
    }
    let mut sum = [0u8; 8];
    src.read_exact(&mut sum).map_err(|e| fatal(e.into()))?;
    if version != WIRE_VERSION {
        return Err(FrameError::Recoverable(WireError::BadVersion {
            got: version,
        }));
    }
    if kind != expect_kind {
        return Err(FrameError::Recoverable(WireError::Invalid(
            "frame kind mismatch",
        )));
    }
    if u64::from_le_bytes(sum) != frame_checksum(version, kind, &payload) {
        return Err(FrameError::Recoverable(WireError::BadChecksum));
    }
    Ok(payload)
}

/// Reads one framed payload, validating magic, version, kind, and checksum.
/// Truncated, corrupted, or version-bumped frames return a [`WireError`];
/// nothing panics and no attacker-chosen allocation happens up front (the
/// payload is read incrementally through a length-capped reader). Strict:
/// any malformation is a plain error; servers that must keep a connection
/// alive across bad frames use [`read_frame_lenient`] directly.
pub fn read_frame<R: Read>(expect_kind: u8, src: &mut R) -> Result<Vec<u8>, WireError> {
    read_frame_lenient(expect_kind, u64::MAX, src).map_err(FrameError::into_wire_error)
}

impl Encode for Xoshiro256pp {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        for word in self.state() {
            w.put_u64(word);
        }
        Ok(())
    }
}

impl Decode for Xoshiro256pp {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        Ok(Xoshiro256pp::from_state(s))
    }
}

impl Encode for KWiseHash {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64s(self.coefficients());
        Ok(())
    }
}

impl Decode for KWiseHash {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let coeffs = r.get_u64s()?;
        if coeffs.is_empty() || coeffs.len() > 64 {
            return Err(WireError::Invalid("hash coefficient count"));
        }
        if coeffs.iter().any(|&c| c >= MERSENNE_P) {
            return Err(WireError::Invalid("hash coefficient out of field"));
        }
        Ok(KWiseHash::from_coefficients(coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_published_reference_vectors() {
        // Independent implementations of the frame spec must agree, so pin
        // the textbook 64-bit FNV-1a values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn varint_roundtrip_edges() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = WireWriter::new();
        for &v in &cases {
            w.put_u64(v);
        }
        let mut r = WireReader::new(w.as_bytes());
        for &v in &cases {
            assert_eq!(r.get_u64().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn zigzag_roundtrip_edges() {
        let cases = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        let mut w = WireWriter::new();
        for &v in &cases {
            w.put_i64(v);
        }
        let mut r = WireReader::new(w.as_bytes());
        for &v in &cases {
            assert_eq!(r.get_i64().unwrap(), v);
        }
    }

    #[test]
    fn f64_bit_exact_including_nan() {
        let cases = [0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE];
        let mut w = WireWriter::new();
        for &v in &cases {
            w.put_f64(v);
        }
        w.put_f64(f64::NAN);
        let mut r = WireReader::new(w.as_bytes());
        for &v in &cases {
            assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
        assert!(r.get_f64().unwrap().is_nan());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        w.put_f64(1.0);
        w.put_i128(-5);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            // Whatever partially decodes must end in an error, not a panic.
            let ok = (|| -> Result<(), WireError> {
                r.get_u64()?;
                r.get_f64()?;
                r.get_i128()?;
                Ok(())
            })();
            assert!(ok.is_err(), "cut at {cut} still decoded");
        }
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocating() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX); // astronomically long "length"
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_len(8),
            Err(WireError::Truncated) | Err(WireError::Invalid(_))
        ));
        let mut r2 = WireReader::new(&bytes);
        assert!(r2.get_f64s().is_err());
    }

    #[test]
    fn blob_and_str_roundtrip_and_reject_malformed() {
        let mut w = WireWriter::new();
        w.put_blob(&[1, 2, 3]);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_blob().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
        // Truncated blob bodies error at every cut.
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let ok = (|| -> Result<(), WireError> {
                r.get_blob()?;
                r.get_str()?;
                Ok(())
            })();
            assert!(ok.is_err(), "cut at {cut} still decoded");
        }
        // A length-prefixed blob that is not valid UTF-8 is an error as a
        // string, not a panic.
        let mut w = WireWriter::new();
        w.put_blob(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(matches!(
            WireReader::new(&bytes).get_str(),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn frame_roundtrip_and_rejections() {
        let payload = b"engine state".to_vec();
        let mut buf = Vec::new();
        write_frame(KIND_ENGINE, &payload, &mut buf).unwrap();
        let got = read_frame(KIND_ENGINE, &mut buf.as_slice()).unwrap();
        assert_eq!(got, payload);

        // Wrong kind.
        assert!(matches!(
            read_frame(KIND_SNAPSHOT, &mut buf.as_slice()),
            Err(WireError::Invalid(_))
        ));
        // Version bump.
        let mut bumped = buf.clone();
        bumped[4] = WIRE_VERSION + 1;
        assert!(matches!(
            read_frame(KIND_ENGINE, &mut bumped.as_slice()),
            Err(WireError::BadVersion { .. })
        ));
        // Bad magic.
        let mut magicless = buf.clone();
        magicless[0] = b'X';
        assert!(matches!(
            read_frame(KIND_ENGINE, &mut magicless.as_slice()),
            Err(WireError::BadMagic)
        ));
        // Flip every payload byte in turn: checksum must catch each one.
        for i in 6..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x40;
            assert!(
                read_frame(KIND_ENGINE, &mut corrupt.as_slice()).is_err(),
                "flip at {i} passed"
            );
        }
        // Truncate at every length: error, never panic.
        for cut in 0..buf.len() {
            assert!(
                read_frame(KIND_ENGINE, &mut buf[..cut].as_ref()).is_err(),
                "cut at {cut} passed"
            );
        }
    }

    #[test]
    fn rng_state_roundtrip_preserves_stream() {
        let mut rng = Xoshiro256pp::new(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let bytes = rng.to_wire_bytes().unwrap();
        let mut back = Xoshiro256pp::from_wire_bytes(&bytes).unwrap();
        let mut orig = rng.clone();
        for _ in 0..64 {
            assert_eq!(orig.next_u64(), back.next_u64());
        }
    }

    #[test]
    fn kwise_hash_roundtrip_and_validation() {
        let h = KWiseHash::from_seed(4, 7);
        let bytes = h.to_wire_bytes().unwrap();
        let back = KWiseHash::from_wire_bytes(&bytes).unwrap();
        for x in 0..200u64 {
            assert_eq!(h.hash(x), back.hash(x));
        }
        // An out-of-field coefficient is rejected.
        let mut w = WireWriter::new();
        w.put_u64s(&[MERSENNE_P]);
        assert!(KWiseHash::from_wire_bytes(w.as_bytes()).is_err());
        // Empty coefficient vectors too.
        let mut w2 = WireWriter::new();
        w2.put_u64s(&[]);
        assert!(KWiseHash::from_wire_bytes(w2.as_bytes()).is_err());
    }
}
