//! The service protocol: framed request/response messages for driving a
//! sampling engine over a byte stream.
//!
//! [`crate::wire`] gives engine state a durable byte encoding; this module
//! gives a *conversation* one. A client sends [`Request`] frames, a server
//! answers each with exactly one [`Response`] frame, over any reliable
//! byte stream (`pts-server` runs it over TCP). The module is
//! transport-agnostic and dependency-free: everything here is plain
//! `std::io`.
//!
//! Since wire version 3 the conversation is **multiplexed**: every
//! request carries a client-assigned `request_id` which its response
//! echoes verbatim, so one connection can hold many requests in flight
//! and the server may answer them **in any order**. A client that wants
//! the old lockstep behavior simply keeps one request in flight.
//!
//! Since wire version 4 the conversation is **multi-tenant**: every
//! request also carries a varint `namespace` id (after the request id),
//! addressing one of many logical tenant engines served by the same
//! endpoint. Namespace [`DEFAULT_NAMESPACE`] (0) is the default tenant
//! every server has, so a single-tenant caller simply sends 0 everywhere.
//!
//! Since wire version 5 the conversation is **traceable**: every request
//! also carries a varint-framed *trace context* (after the namespace) —
//! a single `0` varint for untraced requests, or `trace_id ‖
//! parent_span_id` for requests sampled into a distributed trace
//! ([`TraceContext`]). Responses are unchanged.
//!
//! # Frame layout (normative)
//!
//! Every protocol message is one [`crate::wire`] envelope:
//!
//! ```text
//! offset  bytes  field
//! 0       4      magic        "PTSW" (0x50 0x54 0x53 0x57)
//! 4       1      version      WIRE_VERSION (currently 0x05)
//! 5       1      kind         KIND_REQUEST (0x04) or KIND_RESPONSE (0x05)
//! 6       1–10   len          payload length, LEB128 varint
//! 6+|len| len    payload      request: varint request_id ‖ varint namespace ‖
//!                                      trace ‖ body
//!                             response: varint request_id ‖ body (below)
//! …       8      checksum     FNV-1a 64 over version ‖ kind ‖ payload,
//!                             little-endian (see [`crate::wire::fnv1a64`])
//! ```
//!
//! # Request ids (normative)
//!
//! Every request and response payload **leads with a varint
//! `request_id`**, ahead of everything else:
//!
//! * A request's id is client-assigned and must be **≥ 1**; a request
//!   carrying id 0 fails decode (and draws a recoverable `malformed`
//!   error response, per the semantics below).
//! * A response echoes its request's id verbatim. The server does not
//!   police id reuse — correlating responses is the client's problem,
//!   and the reference client assigns ids sequentially.
//! * Id **0** is reserved for *unattributable* server error responses:
//!   when a request payload is so damaged that even its leading id
//!   varint cannot be read (or the framing itself failed), the server
//!   still answers — with the error response carrying id 0.
//!
//! # Namespaces (normative)
//!
//! Every request payload carries a varint `namespace` id **between the
//! request id and the tag byte** (responses carry no namespace — the
//! echoed request id already identifies the conversation):
//!
//! * Namespace [`DEFAULT_NAMESPACE`] (**0**) is the default tenant: it
//!   exists on every server from startup and cannot be dropped.
//! * Any other namespace must be created with `CreateNamespace` before
//!   engine requests can address it; an engine-scoped request naming a
//!   namespace the server does not host draws a recoverable
//!   [`ErrorCode::UnknownNamespace`] error response.
//! * `Shutdown` and `ListNamespaces` are server-scoped: their namespace
//!   field is carried but ignored. `CreateNamespace` and `DropNamespace`
//!   take the header namespace as their **operand** (their bodies stay
//!   empty).
//! * A namespace field that cannot be read (truncated varint) is a
//!   payload decode failure: the server answers `malformed` under the
//!   request's own id, which *was* readable.
//!
//! # Trace context (normative)
//!
//! Every request payload carries a varint-framed trace context **between
//! the namespace and the tag byte** (responses carry none — a response
//! is correlated by its echoed request id):
//!
//! ```text
//! trace := varint 0                                  (untraced)
//!        | varint trace_id (≥ 1) ‖ varint parent_span_id
//! ```
//!
//! * Trace id **0** means *untraced* — the field is exactly one `0x00`
//!   byte and no span ids follow. An untraced v5 request behaves exactly
//!   like a v4 request did.
//! * A nonzero leading varint **is** the `trace_id`, and a
//!   `parent_span_id` varint must follow: the request was sampled into a
//!   distributed trace, and any spans the server records for it attach
//!   under `parent_span_id` within `trace_id`. Both ids are opaque to
//!   the protocol — the server never interprets them beyond propagation.
//! * The trace context carries no protocol semantics: traced and
//!   untraced requests are answered identically, and servers must accept
//!   both interleaved freely on one connection.
//! * A trace field that cannot be read (a truncated varint, or a nonzero
//!   trace id with no parent span id behind it) is a payload decode
//!   failure: the server answers `malformed` under the request's own id,
//!   which was already readable — same attribution rule as the
//!   namespace.
//!
//! Primitive encodings inside a payload are the wire vocabulary:
//! `varint` is LEB128 (7 value bits per byte, high bit = continue, max 10
//! bytes), `zigzag` is a varint of `(v << 1) ^ (v >> 63)`, `f64` is the raw
//! little-endian IEEE-754 bit pattern (8 bytes), `blob` and `string` are a
//! varint byte count followed by that many raw bytes (strings must be
//! UTF-8).
//!
//! # Request grammar (normative)
//!
//! After the leading varint request id, varint namespace, and trace
//! context, a request payload is a one-byte request tag followed by the
//! tag's body:
//!
//! ```text
//! 0x01 IngestBatch      varint count (≥ 1), then per update:
//!                       varint index ‖ zigzag delta
//! 0x02 Sample           varint count          (1 ..= 65 536)
//! 0x03 Snapshot         (empty body)
//! 0x04 Stats            (empty body)
//! 0x05 Checkpoint       (empty body)
//! 0x06 Restore          blob                  (a framed KIND_ENGINE payload)
//! 0x07 Shutdown         (empty body; namespace ignored)
//! 0x08 CreateNamespace  (empty body; the header namespace is the operand)
//! 0x09 DropNamespace    (empty body; the header namespace is the operand)
//! 0x0A ListNamespaces   (empty body; namespace ignored)
//! ```
//!
//! # Response grammar (normative)
//!
//! After the leading varint request id (echoed from the request, or 0
//! for an unattributable error), a response payload is a one-byte
//! response tag followed by the body:
//!
//! ```text
//! 0x00 Error             u8 code ‖ string message     (codes below)
//! 0x01 Ingested          varint accepted-update-count
//! 0x02 Samples           varint count, then per draw:
//!                        0x00                         (⊥ — the sampler FAILed)
//!                        0x01 ‖ varint index ‖ f64 estimate
//! 0x03 Snapshot          blob                         (a framed KIND_SNAPSHOT payload)
//! 0x04 Stats             varint universe ‖ varint updates ‖ varint batches ‖
//!                        varint samples ‖ varint fails ‖ varint merges ‖
//!                        f64 mass ‖ varint support
//! 0x05 Checkpoint        blob                         (a framed KIND_ENGINE payload)
//! 0x06 Restored          (empty body)
//! 0x07 ShuttingDown      (empty body)
//! 0x08 NamespaceCreated  (empty body)
//! 0x09 NamespaceDropped  (empty body)
//! 0x0A Namespaces        varint count, then per namespace:
//!                        varint id                    (strictly ascending)
//! ```
//!
//! # Error-response semantics
//!
//! A server must answer *every* readable request frame, malformed payloads
//! included, with exactly one response — malformed input yields an
//! [`ErrorCode`]-carrying [`Response::Error`], never a dropped request,
//! a panic, or a hang. Whether the connection survives the error depends
//! only on whether the *stream position* is still a frame boundary:
//!
//! * **Recoverable** ([`FrameError::Recoverable`]): the envelope's length
//!   field was readable and the full frame extent (payload + checksum) was
//!   consumed, so the next byte is the start of the next frame. Bad
//!   checksum, wrong frame kind, unknown wire version, and every payload
//!   decode failure are in this class: the server sends an error response
//!   and keeps serving the connection.
//! * **Fatal** ([`FrameError::Fatal`], or [`FrameError::TooLarge`] for a
//!   length field over the cap): framing itself is destroyed — bad magic,
//!   an unparseable or over-cap length field, or the stream ending
//!   mid-frame. The server sends a best-effort error response and closes
//!   the connection (there is no trustworthy next-frame position in a byte
//!   stream).
//!
//! # Version compatibility
//!
//! The envelope version byte is [`crate::wire::WIRE_VERSION`] and the
//! rules of DESIGN.md S27–S29 apply unchanged: readers reject unknown
//! versions, payload grammars are never extended in place, and any layout
//! change bumps the version. Request tags, response tags, and error codes
//! may gain *new* values within a version (an unknown tag decodes to a
//! [`WireError`], which a server answers with [`ErrorCode::Malformed`] and
//! a client surfaces as a protocol error); existing values are frozen.
//!
//! See `PROTOCOL.md` at the repository root for worked hex examples (pinned
//! byte-for-byte by this module's tests).

use crate::wire::{
    read_frame, write_frame, Decode, Encode, WireError, WireReader, WireWriter, KIND_REQUEST,
    KIND_RESPONSE,
};
use std::io::{Read, Write};

/// The largest envelope payload a service endpoint accepts, in bytes
/// (64 MiB). A frame whose length field exceeds this is rejected before
/// any payload byte is read — a hostile length can neither allocate nor
/// make the server consume gigabytes hunting for a checksum.
pub const MAX_FRAME_BYTES: u64 = 1 << 26;

/// The largest `count` a [`Request::Sample`] may carry (65 536): one
/// request cannot pin a worker arbitrarily long, and the reply stays far
/// under [`MAX_FRAME_BYTES`].
pub const MAX_SAMPLE_COUNT: u64 = 1 << 16;

/// The largest checkpoint blob a [`Request::Restore`] can carry:
/// [`MAX_FRAME_BYTES`] minus the request tag byte and a maximal blob
/// length varint. [`Response::Checkpoint`] payloads are *not* capped on
/// the client's read path, so a checkpoint can exceed this (experiment
/// `w1` shows `p > 2` factories reach tens of MiB at toy universes) —
/// such a checkpoint must be restored out-of-band (start the replacement
/// server from the bytes via the engine's own `restore`) instead of being
/// shipped back through a request. The client refuses to send an
/// over-cap `Restore` up front rather than letting the server kill the
/// connection.
pub const MAX_RESTORE_BYTES: u64 = MAX_FRAME_BYTES - 11;

/// The namespace every server hosts from startup (wire version 4): the
/// default tenant. It cannot be dropped, so a single-tenant caller that
/// sends 0 everywhere behaves exactly like a pre-v4 conversation.
pub const DEFAULT_NAMESPACE: u64 = 0;

/// The trace context a sampled request carries on the wire (wire
/// version 5): which distributed trace it belongs to and which span to
/// attach server-side spans under. Both ids are opaque varints; trace
/// id 0 is reserved to mean *untraced* (encoded as a single `0` varint
/// with no parent span id), so a [`TraceContext`] always has
/// `trace_id ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The distributed trace this request belongs to (≥ 1).
    pub trace_id: u64,
    /// The caller's span: spans recorded while serving this request
    /// attach under it (0 = the trace root itself submitted this).
    pub parent_span_id: u64,
}

/// Request tag: [`Request::IngestBatch`].
const REQ_INGEST: u8 = 0x01;
/// Request tag: [`Request::Sample`].
const REQ_SAMPLE: u8 = 0x02;
/// Request tag: [`Request::Snapshot`].
const REQ_SNAPSHOT: u8 = 0x03;
/// Request tag: [`Request::Stats`].
const REQ_STATS: u8 = 0x04;
/// Request tag: [`Request::Checkpoint`].
const REQ_CHECKPOINT: u8 = 0x05;
/// Request tag: [`Request::Restore`].
const REQ_RESTORE: u8 = 0x06;
/// Request tag: [`Request::Shutdown`].
const REQ_SHUTDOWN: u8 = 0x07;
/// Request tag: [`Request::CreateNamespace`].
const REQ_CREATE_NS: u8 = 0x08;
/// Request tag: [`Request::DropNamespace`].
const REQ_DROP_NS: u8 = 0x09;
/// Request tag: [`Request::ListNamespaces`].
const REQ_LIST_NS: u8 = 0x0A;

/// Response tag: [`Response::Error`].
const RESP_ERROR: u8 = 0x00;
/// Response tag: [`Response::Ingested`].
const RESP_INGESTED: u8 = 0x01;
/// Response tag: [`Response::Samples`].
const RESP_SAMPLES: u8 = 0x02;
/// Response tag: [`Response::Snapshot`].
const RESP_SNAPSHOT: u8 = 0x03;
/// Response tag: [`Response::Stats`].
const RESP_STATS: u8 = 0x04;
/// Response tag: [`Response::Checkpoint`].
const RESP_CHECKPOINT: u8 = 0x05;
/// Response tag: [`Response::Restored`].
const RESP_RESTORED: u8 = 0x06;
/// Response tag: [`Response::ShuttingDown`].
const RESP_SHUTDOWN: u8 = 0x07;
/// Response tag: [`Response::NamespaceCreated`].
const RESP_NS_CREATED: u8 = 0x08;
/// Response tag: [`Response::NamespaceDropped`].
const RESP_NS_DROPPED: u8 = 0x09;
/// Response tag: [`Response::Namespaces`].
const RESP_NAMESPACES: u8 = 0x0A;

/// One client→server message.
///
/// Updates travel as raw `(index, signed delta)` pairs — the protocol
/// layer sits below the stream model, so it does not depend on
/// `pts_stream::Update`; `pts-server` converts at the boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply a batch of turnstile updates `(index, delta)`. A conforming
    /// batch carries at least one update; an empty batch is rejected on
    /// decode (wire version 2) — the server must never be asked to do
    /// silent no-op work.
    IngestBatch(Vec<(u64, i64)>),
    /// Draw `count` samples from the engine's current state (each draw may
    /// independently come back ⊥).
    Sample {
        /// How many draws to perform (`1 ..= MAX_SAMPLE_COUNT`).
        count: u64,
    },
    /// Capture the compact mergeable net vector as framed snapshot bytes.
    Snapshot,
    /// Report the engine's running counters, mass, and support.
    Stats,
    /// Serialize the engine's complete state as framed checkpoint bytes.
    Checkpoint,
    /// Replace the engine's state with a previously captured checkpoint
    /// (the blob is a full framed `KIND_ENGINE` payload).
    Restore(Vec<u8>),
    /// Stop the server: every connection is answered-then-closed and the
    /// accept loop exits. Server-scoped — the namespace field is ignored.
    Shutdown,
    /// Create the tenant engine named by the envelope's namespace field
    /// (the body is empty — the header namespace is the operand).
    /// Creating an existing namespace, or namespace 0, is `unsupported`.
    CreateNamespace,
    /// Drop the tenant engine named by the envelope's namespace field,
    /// releasing its state. Dropping namespace 0 is `unsupported`;
    /// dropping a namespace the server does not host is
    /// `unknown-namespace`.
    DropNamespace,
    /// List every namespace the server currently hosts, in ascending
    /// order. Server-scoped — the namespace field is ignored.
    ListNamespaces,
}

impl Encode for Request {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            Request::IngestBatch(updates) => {
                w.put_u8(REQ_INGEST);
                w.put_usize(updates.len());
                for &(index, delta) in updates {
                    w.put_u64(index);
                    w.put_i64(delta);
                }
            }
            Request::Sample { count } => {
                w.put_u8(REQ_SAMPLE);
                w.put_u64(*count);
            }
            Request::Snapshot => w.put_u8(REQ_SNAPSHOT),
            Request::Stats => w.put_u8(REQ_STATS),
            Request::Checkpoint => w.put_u8(REQ_CHECKPOINT),
            Request::Restore(bytes) => {
                w.put_u8(REQ_RESTORE);
                w.put_blob(bytes);
            }
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
            Request::CreateNamespace => w.put_u8(REQ_CREATE_NS),
            Request::DropNamespace => w.put_u8(REQ_DROP_NS),
            Request::ListNamespaces => w.put_u8(REQ_LIST_NS),
        }
        Ok(())
    }
}

impl Decode for Request {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            REQ_INGEST => {
                // Each pair costs at least two bytes (varint + zigzag), so
                // the length prefix is capped by the bytes actually present.
                let len = r.get_len(2)?;
                if len == 0 {
                    return Err(WireError::Invalid("empty ingest batch"));
                }
                let mut updates = Vec::with_capacity(len);
                for _ in 0..len {
                    let index = r.get_u64()?;
                    let delta = r.get_i64()?;
                    updates.push((index, delta));
                }
                Ok(Request::IngestBatch(updates))
            }
            REQ_SAMPLE => {
                let count = r.get_u64()?;
                if count == 0 || count > MAX_SAMPLE_COUNT {
                    return Err(WireError::Invalid("sample count out of range"));
                }
                Ok(Request::Sample { count })
            }
            REQ_SNAPSHOT => Ok(Request::Snapshot),
            REQ_STATS => Ok(Request::Stats),
            REQ_CHECKPOINT => Ok(Request::Checkpoint),
            REQ_RESTORE => Ok(Request::Restore(r.get_blob()?)),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            REQ_CREATE_NS => Ok(Request::CreateNamespace),
            REQ_DROP_NS => Ok(Request::DropNamespace),
            REQ_LIST_NS => Ok(Request::ListNamespaces),
            _ => Err(WireError::Invalid("unknown request tag")),
        }
    }
}

/// Why a request failed, as a wire-stable one-byte code.
///
/// Codes are frozen once shipped; new failure modes get new codes. The
/// accompanying message string is human-readable detail and carries no
/// protocol meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame or its payload could not be decoded.
    Malformed = 1,
    /// An update addressed a coordinate outside the engine's universe.
    OutOfUniverse = 2,
    /// A valid request the engine cannot serve (e.g. restoring bytes
    /// written by a different factory type).
    Unsupported = 3,
    /// The request frame exceeded [`MAX_FRAME_BYTES`].
    TooLarge = 4,
    /// A server-side failure unrelated to the request bytes.
    Internal = 5,
    /// An engine-scoped request named a namespace the server does not
    /// host (wire version 4). Always recoverable: the frame was
    /// well-formed, only its addressee is missing.
    UnknownNamespace = 6,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::OutOfUniverse,
            3 => ErrorCode::Unsupported,
            4 => ErrorCode::TooLarge,
            5 => ErrorCode::Internal,
            6 => ErrorCode::UnknownNamespace,
            _ => return Err(WireError::Invalid("unknown error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::OutOfUniverse => "out-of-universe",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Internal => "internal",
            ErrorCode::UnknownNamespace => "unknown-namespace",
        };
        f.write_str(name)
    }
}

/// An in-band failure report: the error response's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// The wire-stable failure class.
    pub code: ErrorCode,
    /// Human-readable detail (no protocol meaning).
    pub message: String,
}

impl ServiceError {
    /// A service error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// A point-in-time view of the served engine, as reported by
/// [`Response::Stats`]: the engine's universe bound and running counters
/// plus its current exact `G`-mass and support.
///
/// Wire version 2 added the leading `universe` field: a remote caller
/// previously had no way to learn the universe a served engine's mass and
/// support refer to, which the cluster coordinator needs to validate that
/// every node serves the partition it was assigned (`pts-cluster`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceStats {
    /// The engine's universe bound `n` (every index lies in `[0, n)`).
    pub universe: u64,
    /// Updates ingested (pre-coalescing).
    pub updates: u64,
    /// Batches ingested.
    pub batches: u64,
    /// Successful samples served.
    pub samples: u64,
    /// Draws that returned ⊥.
    pub fails: u64,
    /// Snapshots merged in.
    pub merges: u64,
    /// The exact global `G`-mass `Σ_j G(x_j)`.
    pub mass: f64,
    /// Number of non-zero coordinates.
    pub support: u64,
    /// **Local-view field — never on the wire.** Requests this server
    /// process has answered (all kinds, monotonic). Filled by `pts-server`
    /// when it builds a `Stats` response; `encode` skips it and `decode`
    /// leaves it 0, so the v2 frame grammar is unchanged (see
    /// PROTOCOL.md §Stats notes and the byte-pinned worked examples).
    pub requests_served: u64,
    /// **Local-view field — never on the wire.** Whole seconds since this
    /// server process started serving. Same wire rules as
    /// [`ServiceStats::requests_served`].
    pub uptime_secs: u64,
}

impl Encode for ServiceStats {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(self.universe);
        w.put_u64(self.updates);
        w.put_u64(self.batches);
        w.put_u64(self.samples);
        w.put_u64(self.fails);
        w.put_u64(self.merges);
        w.put_f64(self.mass);
        w.put_u64(self.support);
        Ok(())
    }
}

impl Decode for ServiceStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            universe: r.get_u64()?,
            updates: r.get_u64()?,
            batches: r.get_u64()?,
            samples: r.get_u64()?,
            fails: r.get_u64()?,
            merges: r.get_u64()?,
            mass: r.get_f64()?,
            support: r.get_u64()?,
            // Local-view fields: not carried by the v2 frame, so a decoded
            // ServiceStats always reports 0 for them.
            requests_served: 0,
            uptime_secs: 0,
        })
    }
}

/// One server→client message: the answer to exactly one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; see [`ServiceError`] and the module docs for
    /// which failures keep the connection alive.
    Error(ServiceError),
    /// An ingest batch was applied; carries the accepted update count.
    Ingested {
        /// Updates applied from the batch (pre-coalescing).
        accepted: u64,
    },
    /// Sample draws, in request order. `None` is the paper's ⊥ (the
    /// chosen shard's entire pool FAILed) — an honest outcome, not an
    /// error.
    Samples(Vec<Option<(u64, f64)>>),
    /// A framed `KIND_SNAPSHOT` payload (decode with
    /// `EngineSnapshot::from_bytes`).
    Snapshot(Vec<u8>),
    /// The engine's counters, mass, and support.
    Stats(ServiceStats),
    /// A framed `KIND_ENGINE` payload (feed to an engine `restore`, or
    /// send back in a [`Request::Restore`]).
    Checkpoint(Vec<u8>),
    /// A [`Request::Restore`] succeeded; subsequent requests observe the
    /// restored state.
    Restored,
    /// A [`Request::Shutdown`] was accepted; the server stops accepting
    /// connections and this connection closes after the frame is flushed.
    ShuttingDown,
    /// A [`Request::CreateNamespace`] succeeded; the namespace named in
    /// the request's envelope now hosts a fresh engine.
    NamespaceCreated,
    /// A [`Request::DropNamespace`] succeeded; the namespace named in
    /// the request's envelope no longer exists.
    NamespaceDropped,
    /// The namespaces the server currently hosts, in ascending order
    /// (always contains [`DEFAULT_NAMESPACE`]).
    Namespaces(Vec<u64>),
}

impl Encode for Response {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            Response::Error(e) => {
                w.put_u8(RESP_ERROR);
                w.put_u8(e.code as u8);
                w.put_str(&e.message);
            }
            Response::Ingested { accepted } => {
                w.put_u8(RESP_INGESTED);
                w.put_u64(*accepted);
            }
            Response::Samples(draws) => {
                w.put_u8(RESP_SAMPLES);
                w.put_usize(draws.len());
                for draw in draws {
                    match draw {
                        None => w.put_u8(0),
                        Some((index, estimate)) => {
                            w.put_u8(1);
                            w.put_u64(*index);
                            w.put_f64(*estimate);
                        }
                    }
                }
            }
            Response::Snapshot(bytes) => {
                w.put_u8(RESP_SNAPSHOT);
                w.put_blob(bytes);
            }
            Response::Stats(stats) => {
                w.put_u8(RESP_STATS);
                stats.encode(w)?;
            }
            Response::Checkpoint(bytes) => {
                w.put_u8(RESP_CHECKPOINT);
                w.put_blob(bytes);
            }
            Response::Restored => w.put_u8(RESP_RESTORED),
            Response::ShuttingDown => w.put_u8(RESP_SHUTDOWN),
            Response::NamespaceCreated => w.put_u8(RESP_NS_CREATED),
            Response::NamespaceDropped => w.put_u8(RESP_NS_DROPPED),
            Response::Namespaces(ids) => {
                w.put_u8(RESP_NAMESPACES);
                w.put_usize(ids.len());
                for &id in ids {
                    w.put_u64(id);
                }
            }
        }
        Ok(())
    }
}

impl Decode for Response {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            RESP_ERROR => {
                let code = ErrorCode::from_u8(r.get_u8()?)?;
                let message = r.get_str()?;
                Ok(Response::Error(ServiceError { code, message }))
            }
            RESP_INGESTED => Ok(Response::Ingested {
                accepted: r.get_u64()?,
            }),
            RESP_SAMPLES => {
                let len = r.get_len(1)?;
                let mut draws = Vec::with_capacity(len);
                for _ in 0..len {
                    draws.push(match r.get_u8()? {
                        0 => None,
                        1 => Some((r.get_u64()?, r.get_f64()?)),
                        _ => return Err(WireError::Invalid("sample presence byte")),
                    });
                }
                Ok(Response::Samples(draws))
            }
            RESP_SNAPSHOT => Ok(Response::Snapshot(r.get_blob()?)),
            RESP_STATS => Ok(Response::Stats(ServiceStats::decode(r)?)),
            RESP_CHECKPOINT => Ok(Response::Checkpoint(r.get_blob()?)),
            RESP_RESTORED => Ok(Response::Restored),
            RESP_SHUTDOWN => Ok(Response::ShuttingDown),
            RESP_NS_CREATED => Ok(Response::NamespaceCreated),
            RESP_NS_DROPPED => Ok(Response::NamespaceDropped),
            RESP_NAMESPACES => {
                // Each id is at least one byte, so the count is capped by
                // the bytes actually present.
                let len = r.get_len(1)?;
                let mut ids = Vec::with_capacity(len);
                let mut last: Option<u64> = None;
                for _ in 0..len {
                    let id = r.get_u64()?;
                    if last.is_some_and(|prev| prev >= id) {
                        return Err(WireError::Invalid("namespace list not ascending"));
                    }
                    last = Some(id);
                    ids.push(id);
                }
                Ok(Response::Namespaces(ids))
            }
            _ => Err(WireError::Invalid("unknown response tag")),
        }
    }
}

/// Writes one untraced request under `request_id`, addressed to
/// `namespace`, as a framed `KIND_REQUEST` envelope:
/// `varint request_id ‖ varint namespace ‖ 0 ‖ request body` (the lone
/// `0` varint is the wire-version-5 *untraced* trace context).
///
/// `request_id` must be ≥ 1 (id 0 is reserved for unattributable server
/// error responses — see the module docs); debug builds assert this.
/// Single-tenant callers pass [`DEFAULT_NAMESPACE`]. Callers sampled
/// into a distributed trace use [`write_request_traced`].
pub fn write_request<W: Write>(
    request_id: u64,
    namespace: u64,
    req: &Request,
    sink: &mut W,
) -> std::io::Result<()> {
    write_request_traced(request_id, namespace, None, req, sink)
}

/// Writes one request carrying an explicit trace context:
/// `varint request_id ‖ varint namespace ‖ trace ‖ request body`, where
/// `trace` is a lone `0` varint for `None` or
/// `varint trace_id ‖ varint parent_span_id` for `Some`. A
/// [`TraceContext`] with trace id 0 would be indistinguishable from
/// untraced; debug builds assert against it.
pub fn write_request_traced<W: Write>(
    request_id: u64,
    namespace: u64,
    trace: Option<TraceContext>,
    req: &Request,
    sink: &mut W,
) -> std::io::Result<()> {
    debug_assert!(request_id != 0, "request id 0 is reserved");
    let mut w = WireWriter::new();
    w.put_u64(request_id);
    w.put_u64(namespace);
    match trace {
        None => w.put_u64(0),
        Some(ctx) => {
            debug_assert!(ctx.trace_id != 0, "trace id 0 means untraced");
            w.put_u64(ctx.trace_id);
            w.put_u64(ctx.parent_span_id);
        }
    }
    req.encode(&mut w).expect("requests always encode");
    write_frame(KIND_REQUEST, w.as_bytes(), sink)
}

/// Reads one framed request; returns its id, namespace, and body, with
/// the trace context (if any) discarded (strict: any malformation is an
/// error; servers wanting to keep the connection should use
/// [`read_frame_lenient`] and decode the payload themselves via
/// [`split_request_id`] / [`split_namespace`] / [`split_trace`]).
pub fn read_request<R: Read>(src: &mut R) -> Result<(u64, u64, Request), WireError> {
    let (id, namespace, _, req) = read_request_traced(src)?;
    Ok((id, namespace, req))
}

/// Reads one framed request like [`read_request`], but also hands back
/// the trace context the request carried (`None` = untraced).
pub fn read_request_traced<R: Read>(
    src: &mut R,
) -> Result<(u64, u64, Option<TraceContext>, Request), WireError> {
    let payload = read_frame(KIND_REQUEST, src)?;
    let (id, rest) = split_request_id(&payload)?;
    let (namespace, rest) = split_namespace(rest)?;
    let (trace, body) = split_trace(rest)?;
    Ok((id, namespace, trace, Request::from_wire_bytes(body)?))
}

/// Splits a request payload into its leading varint `request_id` and
/// everything after it (the namespace varint plus the tag'd body),
/// enforcing the id ≥ 1 rule (a request carrying id 0 is malformed —
/// id 0 is reserved for unattributable server error responses). This is
/// the server's demux entry point: it peels the id *before* anything
/// else, so every later failure — an unreadable namespace varint
/// included — can still be answered under the request's own id.
pub fn split_request_id(payload: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let mut r = WireReader::new(payload);
    let id = r.get_u64()?;
    if id == 0 {
        return Err(WireError::Invalid("request id 0 is reserved"));
    }
    Ok((id, &payload[payload.len() - r.remaining()..]))
}

/// Splits the remainder handed back by [`split_request_id`] into the
/// varint `namespace` and everything behind it (the trace context plus
/// the tag'd request body). A truncated namespace varint errors here —
/// an attributable `malformed`, since the request id was already read.
pub fn split_namespace(rest: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let mut r = WireReader::new(rest);
    let namespace = r.get_u64()?;
    Ok((namespace, &rest[rest.len() - r.remaining()..]))
}

/// Splits the remainder handed back by [`split_namespace`] into the
/// trace context (`None` = the untraced `0` varint) and the tag'd
/// request body behind it. A truncated trace varint — or a nonzero
/// trace id with no parent span id behind it — errors here, which is an
/// attributable `malformed` exactly like a bad namespace: the request
/// id was already peeled.
pub fn split_trace(rest: &[u8]) -> Result<(Option<TraceContext>, &[u8]), WireError> {
    let mut r = WireReader::new(rest);
    let trace_id = r.get_u64()?;
    let trace = if trace_id == 0 {
        None
    } else {
        Some(TraceContext {
            trace_id,
            parent_span_id: r.get_u64()?,
        })
    };
    Ok((trace, &rest[rest.len() - r.remaining()..]))
}

/// Splits a request payload into `(request_id, namespace, body)` in one
/// step — the strict composition of [`split_request_id`],
/// [`split_namespace`], and [`split_trace`] (the trace context is
/// validated but discarded), for callers that do not need to attribute
/// partial failures or follow traces.
pub fn split_request_payload(payload: &[u8]) -> Result<(u64, u64, &[u8]), WireError> {
    let (id, rest) = split_request_id(payload)?;
    let (namespace, rest) = split_namespace(rest)?;
    let (_, body) = split_trace(rest)?;
    Ok((id, namespace, body))
}

/// Writes one response as a framed `KIND_RESPONSE` envelope:
/// `varint request_id ‖ response body`. The id echoes the request's
/// (id 0 = unattributable server error, the one id a request can't use).
pub fn write_response<W: Write>(
    request_id: u64,
    resp: &Response,
    sink: &mut W,
) -> std::io::Result<()> {
    let mut w = WireWriter::new();
    w.put_u64(request_id);
    resp.encode(&mut w).expect("responses always encode");
    write_frame(KIND_RESPONSE, w.as_bytes(), sink)
}

/// Reads one framed response; returns the echoed request id (0 =
/// unattributable server error) and the response.
pub fn read_response<R: Read>(src: &mut R) -> Result<(u64, Response), WireError> {
    let payload = read_frame(KIND_RESPONSE, src)?;
    let mut r = WireReader::new(&payload);
    let id = r.get_u64()?;
    let resp = Response::decode(&mut r)?;
    r.finish()?;
    Ok((id, resp))
}

// The lenient frame reader and its recoverable/fatal classification live
// beside the envelope in `wire` (one frame-parsing implementation for
// strict and lenient readers alike); re-exported here because they are
// the protocol's error-response semantics.
pub use crate::wire::{read_frame_lenient, FrameError};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WIRE_MAGIC, WIRE_VERSION};

    fn roundtrip_request(req: Request) {
        // Ids and namespaces spanning 1, 2, and 10 varint bytes: both
        // prefixes must frame and demux identically at every width
        // (namespace 0 is the default tenant, so it must roundtrip too).
        for id in [1u64, 7, 300, u64::MAX] {
            for ns in [DEFAULT_NAMESPACE, 7, 300, u64::MAX] {
                let mut buf = Vec::new();
                write_request(id, ns, &req, &mut buf).unwrap();
                let (back_id, back_ns, back) = read_request(&mut buf.as_slice()).unwrap();
                assert_eq!((back_id, back_ns, back), (id, ns, req.clone()));
                // The untraced write really carried the untraced marker.
                let mut buf2 = buf.as_slice();
                let (_, _, trace, _) = read_request_traced(&mut buf2).unwrap();
                assert_eq!(trace, None);
            }
        }
        // Trace contexts spanning 1, 2, and 10 varint bytes per field
        // must roundtrip too, and the trace-blind read must still agree.
        for (trace_id, parent) in [(1u64, 0u64), (300, 7), (u64::MAX, u64::MAX)] {
            let ctx = TraceContext {
                trace_id,
                parent_span_id: parent,
            };
            let mut buf = Vec::new();
            write_request_traced(9, 4, Some(ctx), &req, &mut buf).unwrap();
            let (id, ns, trace, back) = read_request_traced(&mut buf.as_slice()).unwrap();
            assert_eq!((id, ns, trace, back), (9, 4, Some(ctx), req.clone()));
            let (id, ns, back) = read_request(&mut buf.as_slice()).unwrap();
            assert_eq!((id, ns, back), (9, 4, req.clone()));
        }
    }

    fn roundtrip_response(resp: Response) {
        // Id 0 is legal on responses (unattributable server errors).
        for id in [0u64, 1, 300, u64::MAX] {
            let mut buf = Vec::new();
            write_response(id, &resp, &mut buf).unwrap();
            let (back_id, back) = read_response(&mut buf.as_slice()).unwrap();
            assert_eq!((back_id, back), (id, resp.clone()));
        }
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip_request(Request::IngestBatch(vec![(3, 5), (900, -2), (0, 1)]));
        roundtrip_request(Request::Sample { count: 1 });
        roundtrip_request(Request::Sample {
            count: MAX_SAMPLE_COUNT,
        });
        roundtrip_request(Request::Snapshot);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Checkpoint);
        roundtrip_request(Request::Restore(vec![0xDE, 0xAD, 0xBE, 0xEF]));
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::CreateNamespace);
        roundtrip_request(Request::DropNamespace);
        roundtrip_request(Request::ListNamespaces);
    }

    #[test]
    fn every_response_kind_roundtrips() {
        roundtrip_response(Response::Error(ServiceError::new(
            ErrorCode::Malformed,
            "bad request tag",
        )));
        roundtrip_response(Response::Ingested { accepted: 42 });
        roundtrip_response(Response::Samples(vec![
            Some((7, 10.0)),
            None,
            Some((21, -9.5)),
        ]));
        roundtrip_response(Response::Samples(vec![]));
        roundtrip_response(Response::Snapshot(vec![1, 2, 3]));
        // Local-view fields stay 0 here: they are not on the wire, so a
        // decoded ServiceStats always reports 0 for them (see
        // `local_view_stats_fields_never_reach_the_wire`).
        roundtrip_response(Response::Stats(ServiceStats {
            universe: 1 << 20,
            updates: 10,
            batches: 2,
            samples: 5,
            fails: 1,
            merges: 0,
            mass: 123.5,
            support: 9,
            requests_served: 0,
            uptime_secs: 0,
        }));
        roundtrip_response(Response::Checkpoint(vec![9; 100]));
        roundtrip_response(Response::Restored);
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::NamespaceCreated);
        roundtrip_response(Response::NamespaceDropped);
        roundtrip_response(Response::Namespaces(vec![0]));
        roundtrip_response(Response::Namespaces(vec![0, 1, 300, u64::MAX]));
    }

    #[test]
    fn namespace_list_must_be_ascending_on_decode() {
        // The encoder trusts its caller; the decoder enforces the
        // strictly-ascending rule (duplicates included), so a hostile
        // response cannot smuggle an unsorted or repeating list.
        for bad in [vec![1u64, 1], vec![5, 3], vec![0, 2, 2]] {
            let payload = Response::Namespaces(bad.clone()).to_wire_bytes().unwrap();
            assert!(
                Response::from_wire_bytes(&payload).is_err(),
                "unsorted list {bad:?} decoded"
            );
        }
    }

    #[test]
    fn local_view_stats_fields_never_reach_the_wire() {
        // Two stats differing only in the local-view fields must encode
        // byte-identically — that is the "no wire change" contract of the
        // requests_served / uptime_secs additions.
        let base = ServiceStats {
            universe: 4096,
            updates: 1000,
            batches: 4,
            samples: 6,
            fails: 1,
            merges: 0,
            mass: 123.5,
            support: 9,
            requests_served: 0,
            uptime_secs: 0,
        };
        let filled = ServiceStats {
            requests_served: u64::MAX,
            uptime_secs: 86_400,
            ..base
        };
        assert_eq!(
            base.to_wire_bytes().unwrap(),
            filled.to_wire_bytes().unwrap()
        );
        // And a decode of the filled encoding reports them as 0.
        let decoded = ServiceStats::from_wire_bytes(&filled.to_wire_bytes().unwrap()).unwrap();
        assert_eq!(decoded.requests_served, 0);
        assert_eq!(decoded.uptime_secs, 0);
        assert_eq!(decoded, base);
    }

    #[test]
    fn empty_ingest_batch_rejected_on_decode() {
        // An empty batch encodes (the type allows it) but must not decode:
        // wire version 2 forbids asking a server for silent no-op work.
        let payload = Request::IngestBatch(vec![]).to_wire_bytes().unwrap();
        assert!(matches!(
            Request::from_wire_bytes(&payload),
            Err(WireError::Invalid("empty ingest batch"))
        ));
    }

    #[test]
    fn sample_count_bounds_enforced_on_decode() {
        for count in [0u64, MAX_SAMPLE_COUNT + 1, u64::MAX] {
            let mut w = WireWriter::new();
            w.put_u8(0x02);
            w.put_u64(count);
            assert!(
                Request::from_wire_bytes(w.as_bytes()).is_err(),
                "count {count} accepted"
            );
        }
    }

    #[test]
    fn restore_cap_fits_the_frame_cap() {
        // A Restore carrying a MAX_RESTORE_BYTES blob must frame within
        // MAX_FRAME_BYTES: tag byte + length varint + blob.
        let mut w = WireWriter::new();
        w.put_u8(0x06);
        w.put_u64(MAX_RESTORE_BYTES);
        assert!(w.len() as u64 + MAX_RESTORE_BYTES <= MAX_FRAME_BYTES);
    }

    #[test]
    fn unknown_tags_and_codes_rejected() {
        assert!(Request::from_wire_bytes(&[0xAA]).is_err());
        assert!(Response::from_wire_bytes(&[0xAA]).is_err());
        let mut w = WireWriter::new();
        w.put_u8(RESP_ERROR);
        w.put_u8(99); // unknown error code
        w.put_str("x");
        assert!(Response::from_wire_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn request_truncation_at_every_prefix_errors() {
        let req = Request::IngestBatch(vec![(3, 5), (900, -2)]);
        let payload = req.to_wire_bytes().unwrap();
        for cut in 0..payload.len() {
            assert!(
                Request::from_wire_bytes(&payload[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn request_id_zero_rejected_everywhere() {
        // A request payload whose leading varint id is 0 must fail both
        // the demux split and the strict framed read — whatever the
        // namespace behind it says.
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(DEFAULT_NAMESPACE);
        w.put_u64(0); // untraced
        Request::Stats.encode(&mut w).unwrap();
        assert!(matches!(
            split_request_id(w.as_bytes()),
            Err(WireError::Invalid("request id 0 is reserved"))
        ));
        assert!(split_request_payload(w.as_bytes()).is_err());
        let mut frame = Vec::new();
        write_frame(KIND_REQUEST, w.as_bytes(), &mut frame).unwrap();
        assert!(read_request(&mut frame.as_slice()).is_err());
        // Id 0 stays legal on the response side (unattributable errors).
        let mut resp = Vec::new();
        write_response(
            0,
            &Response::Error(ServiceError::new(ErrorCode::Malformed, "x")),
            &mut resp,
        )
        .unwrap();
        assert_eq!(read_response(&mut resp.as_slice()).unwrap().0, 0);
    }

    #[test]
    fn split_request_payload_demuxes_id_and_namespace_from_body() {
        // Multi-byte varint id, namespace, and trace fields: the staged
        // split must hand back exactly the body bytes after every prefix.
        let mut w = WireWriter::new();
        w.put_u64(300); // two varint bytes: 0xAC 0x02
        w.put_u64(777); // two varint bytes: 0x89 0x06
        w.put_u64(200); // trace id, two varint bytes: 0xC8 0x01
        w.put_u64(150); // parent span id, two varint bytes: 0x96 0x01
        w.put_u8(REQ_STATS);
        let (id, rest) = split_request_id(w.as_bytes()).unwrap();
        assert_eq!(id, 300);
        let (ns, rest) = split_namespace(rest).unwrap();
        assert_eq!(ns, 777);
        let (trace, body) = split_trace(rest).unwrap();
        assert_eq!(
            trace,
            Some(TraceContext {
                trace_id: 200,
                parent_span_id: 150
            })
        );
        assert_eq!(body, [REQ_STATS]);
        assert_eq!(Request::from_wire_bytes(body).unwrap(), Request::Stats);
        // The one-step composition agrees (trace validated, discarded).
        assert_eq!(
            split_request_payload(w.as_bytes()).unwrap(),
            (300, 777, &[REQ_STATS][..])
        );
        // And the untraced marker splits to None without consuming body.
        let untraced = [0x00, REQ_STATS];
        let (trace, body) = split_trace(&untraced).unwrap();
        assert_eq!(trace, None);
        assert_eq!(body, [REQ_STATS]);
    }

    #[test]
    fn truncation_at_every_prefix_of_the_id_field_errors() {
        // u64::MAX is a 10-byte varint: every proper prefix of the id
        // field alone must fail the split (never panic, never misdecode),
        // and so must the id with no namespace behind it.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let id_bytes = w.as_bytes().to_vec();
        assert_eq!(id_bytes.len(), 10);
        for cut in 0..id_bytes.len() {
            assert!(
                split_request_id(&id_bytes[..cut]).is_err(),
                "id cut at {cut} split"
            );
        }
        // The full id with nothing behind it splits — the *namespace*
        // split is what fails next (the demux layer answers the missing
        // namespace under the request's id).
        let (id, rest) = split_request_id(&id_bytes).unwrap();
        assert_eq!(id, u64::MAX);
        assert!(rest.is_empty());
        assert!(split_namespace(rest).is_err());
    }

    #[test]
    fn truncation_at_every_prefix_of_the_namespace_field_errors() {
        // Same sweep one field later: a readable id followed by every
        // proper prefix of a 10-byte namespace varint must fail the
        // namespace split (attributable — the id was already peeled),
        // and the full namespace with nothing behind it must fail the
        // *trace* split, not the namespace split.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let ns_bytes = w.as_bytes().to_vec();
        assert_eq!(ns_bytes.len(), 10);
        for cut in 0..ns_bytes.len() {
            assert!(
                split_namespace(&ns_bytes[..cut]).is_err(),
                "namespace cut at {cut} split"
            );
        }
        let (ns, rest) = split_namespace(&ns_bytes).unwrap();
        assert_eq!(ns, u64::MAX);
        assert!(rest.is_empty());
        assert!(split_trace(rest).is_err());
    }

    #[test]
    fn truncation_at_every_prefix_of_the_trace_field_errors() {
        // Same sweep one field later again: every proper prefix of a
        // maximal 20-byte trace context (10-byte trace id ‖ 10-byte
        // parent span id) must fail the trace split — a cut inside the
        // trace id is a truncated varint, a cut at or after the full
        // trace id is a nonzero trace id with a missing/truncated parent
        // span id. Attribution is the namespace rule: the request id was
        // already peeled, so the failure answers under it.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        w.put_u64(u64::MAX);
        let trace_bytes = w.as_bytes().to_vec();
        assert_eq!(trace_bytes.len(), 20);
        for cut in 0..trace_bytes.len() {
            assert!(
                split_trace(&trace_bytes[..cut]).is_err(),
                "trace cut at {cut} split"
            );
        }
        let (trace, body) = split_trace(&trace_bytes).unwrap();
        assert_eq!(
            trace,
            Some(TraceContext {
                trace_id: u64::MAX,
                parent_span_id: u64::MAX
            })
        );
        assert!(body.is_empty());
        // The untraced marker is never truncatable: one byte, zero.
        assert_eq!(split_trace(&[0x00]).unwrap(), (None, &[][..]));
        assert!(split_trace(&[]).is_err());
    }

    /// The PROTOCOL.md §"Worked examples" hex bytes, pinned so the document
    /// cannot drift from the implementation.
    #[test]
    fn protocol_md_worked_examples_are_exact() {
        // Example 1: a Stats request under id 1, namespace 0 (the
        // default tenant).
        let mut stats = Vec::new();
        write_request(1, DEFAULT_NAMESPACE, &Request::Stats, &mut stats).unwrap();
        assert_eq!(
            stats,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x04, 0x04, 0x01, 0x00, 0x00, 0x04, 0x71, 0xF1, 0x57,
                0xCF, 0xAD, 0x3C, 0xAB, 0x5B
            ],
            "Stats request frame drifted: {stats:02X?}"
        );
        // Example 2: IngestBatch [(3, +5), (900, -2)] under id 2,
        // addressed to namespace 7 (a created tenant).
        let mut ingest = Vec::new();
        write_request(
            2,
            7,
            &Request::IngestBatch(vec![(3, 5), (900, -2)]),
            &mut ingest,
        )
        .unwrap();
        assert_eq!(
            ingest,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x04, 0x0A, 0x02, 0x07, 0x00, 0x01, 0x02, 0x03, 0x0A,
                0x84, 0x07, 0x03, 0x9F, 0x63, 0x62, 0xEE, 0x13, 0xD3, 0xC3, 0xAD
            ],
            "IngestBatch request frame drifted: {ingest:02X?}"
        );
        // Example 2b: CreateNamespace under id 3 — the header namespace
        // (7) is the operand, the body is empty.
        let mut create = Vec::new();
        write_request(3, 7, &Request::CreateNamespace, &mut create).unwrap();
        assert_eq!(
            create,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x04, 0x04, 0x03, 0x07, 0x00, 0x08, 0xC6, 0x67, 0x0B,
                0x6D, 0xBE, 0x1F, 0xA4, 0x81
            ],
            "CreateNamespace request frame drifted: {create:02X?}"
        );
        // Example 2c: a traced Sample request — id 4, namespace 0,
        // sampled into trace 9 under parent span 1, asking for 2 draws.
        let mut traced = Vec::new();
        write_request_traced(
            4,
            DEFAULT_NAMESPACE,
            Some(TraceContext {
                trace_id: 9,
                parent_span_id: 1,
            }),
            &Request::Sample { count: 2 },
            &mut traced,
        )
        .unwrap();
        assert_eq!(
            traced,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x04, 0x06, 0x04, 0x00, 0x09, 0x01, 0x02, 0x02, 0x1A,
                0x10, 0x90, 0x20, 0x28, 0x79, 0x47, 0x48
            ],
            "traced Sample request frame drifted: {traced:02X?}"
        );
        // Example 3: a Samples response carrying one draw of index 3,
        // estimate 5.0, and one ⊥ — echoing request id 2.
        let mut samples = Vec::new();
        write_response(
            2,
            &Response::Samples(vec![Some((3, 5.0)), None]),
            &mut samples,
        )
        .unwrap();
        assert_eq!(
            samples,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x05, 0x0E, 0x02, 0x02, 0x02, 0x01, 0x03, 0x00, 0x00,
                0x00, 0x00, 0x00, 0x00, 0x14, 0x40, 0x00, 0xF5, 0x79, 0xB7, 0xAE, 0xE2, 0xB0, 0x0F,
                0xFE
            ],
            "Samples response frame drifted: {samples:02X?}"
        );
        // Example 4: an error response (Malformed, "unknown request tag")
        // echoing request id 5 — the body's tag was unreadable but its id
        // was, so the error is attributable (id 0 is only for requests so
        // damaged even the id couldn't be read).
        let mut error = Vec::new();
        write_response(
            5,
            &Response::Error(ServiceError::new(
                ErrorCode::Malformed,
                "unknown request tag",
            )),
            &mut error,
        )
        .unwrap();
        assert_eq!(
            error,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x05, 0x17, 0x05, 0x00, 0x01, 0x13, 0x75, 0x6E, 0x6B,
                0x6E, 0x6F, 0x77, 0x6E, 0x20, 0x72, 0x65, 0x71, 0x75, 0x65, 0x73, 0x74, 0x20, 0x74,
                0x61, 0x67, 0xCD, 0xBA, 0x7A, 0x5D, 0x39, 0xD3, 0xCC, 0x20
            ],
            "Error response frame drifted: {error:02X?}"
        );
        // Example 5: a Stats response echoing id 1 — universe 4096,
        // 1000 updates over 4 batches, 6 samples, 1 fail, 0 merges, mass
        // 123.5, support 9. The local-view fields are deliberately
        // nonzero: the pinned bytes below prove they never reach the wire.
        let mut report = Vec::new();
        write_response(
            1,
            &Response::Stats(ServiceStats {
                universe: 4096,
                updates: 1000,
                batches: 4,
                samples: 6,
                fails: 1,
                merges: 0,
                mass: 123.5,
                support: 9,
                requests_served: 77,
                uptime_secs: 3600,
            }),
            &mut report,
        )
        .unwrap();
        assert_eq!(
            report,
            [
                0x50, 0x54, 0x53, 0x57, 0x05, 0x05, 0x13, 0x01, 0x04, 0x80, 0x20, 0xE8, 0x07, 0x04,
                0x06, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x5E, 0x40, 0x09, 0x7D, 0x09,
                0xFF, 0x9C, 0xFD, 0x31, 0xDC, 0xB7
            ],
            "Stats response frame drifted: {report:02X?}"
        );
    }

    #[test]
    fn lenient_read_classifies_fatal_vs_recoverable() {
        let mut good = Vec::new();
        write_request(9, 4, &Request::Stats, &mut good).unwrap();

        // Clean read.
        let payload = read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut good.as_slice())
            .expect("well-formed frame reads");
        let (id, ns, body) = split_request_payload(&payload).unwrap();
        assert_eq!((id, ns), (9, 4));
        assert_eq!(Request::from_wire_bytes(body).unwrap(), Request::Stats);

        // Bad magic: fatal.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut bad.as_slice()),
            Err(FrameError::Fatal(WireError::BadMagic))
        ));

        // Version bump: recoverable, and the whole frame was consumed.
        let mut bumped = good.clone();
        bumped[4] = WIRE_VERSION + 1;
        let mut src = bumped.as_slice();
        assert!(matches!(
            read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut src),
            Err(FrameError::Recoverable(WireError::BadVersion { .. }))
        ));
        assert!(src.is_empty(), "recoverable error must consume the frame");

        // Kind mismatch: recoverable, frame consumed.
        let mut src = good.as_slice();
        assert!(matches!(
            read_frame_lenient(KIND_RESPONSE, MAX_FRAME_BYTES, &mut src),
            Err(FrameError::Recoverable(WireError::Invalid(_)))
        ));
        assert!(src.is_empty());

        // Payload corruption: recoverable (checksum), frame consumed.
        let mut corrupt = good.clone();
        let p = corrupt.len() - 9; // last payload byte
        corrupt[p] ^= 0x40;
        let mut src = corrupt.as_slice();
        assert!(matches!(
            read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut src),
            Err(FrameError::Recoverable(WireError::BadChecksum))
        ));
        assert!(src.is_empty());

        // Oversized length field: fatal, via the structured cap variant,
        // before consuming the "payload".
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&WIRE_MAGIC);
        oversized.push(WIRE_VERSION);
        oversized.push(KIND_REQUEST);
        let mut w = WireWriter::new();
        w.put_u64(MAX_FRAME_BYTES + 1);
        oversized.extend_from_slice(w.as_bytes());
        assert!(matches!(
            read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut oversized.as_slice()),
            Err(FrameError::TooLarge(_))
        ));

        // Truncation at every prefix: always an error, never a panic; cuts
        // inside the payload/checksum are fatal (stream ended mid-frame).
        for cut in 0..good.len() {
            assert!(
                read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut good[..cut].as_ref())
                    .is_err(),
                "cut at {cut} read"
            );
        }
    }
}
