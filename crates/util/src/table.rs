//! Minimal markdown table builder used by the experiment harness.
//!
//! Experiments in `pts-bench` print their results as GitHub-flavoured
//! markdown tables (the same rows recorded in EXPERIMENTS.md), so output can
//! be pasted into documentation verbatim.
//!
//! The **row witness** ([`arm_witness`] / [`disarm_witness`]) mirrors the
//! most recently created table's completed rows into process-global state,
//! so a harness that catches a mid-experiment panic can still salvage the
//! rows finished before the panic (the `reproduce --json` partial-artifact
//! path). Disarmed — the default — the witness costs one relaxed atomic
//! load per row.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The mirrored `(header, completed rows)` of the most recent table.
type PartialTable = (Vec<String>, Vec<Vec<String>>);

/// Whether the row witness is currently recording ([`arm_witness`]).
static WITNESS_ARMED: AtomicBool = AtomicBool::new(false);
static WITNESS: Mutex<Option<PartialTable>> = Mutex::new(None);

fn witness_lock() -> std::sync::MutexGuard<'static, Option<PartialTable>> {
    WITNESS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Starts mirroring table construction: from now until
/// [`disarm_witness`], each [`Table::new`] resets the mirror to that
/// table's header and each [`Table::push_row`] appends the completed row.
///
/// Single-recorder by design (one global mirror): arm around one
/// experiment at a time, as the `reproduce` loop does.
pub fn arm_witness() {
    *witness_lock() = Some((Vec::new(), Vec::new()));
    WITNESS_ARMED.store(true, Ordering::Release);
}

/// Stops mirroring and returns the `(header, rows)` recorded since
/// [`arm_witness`] — the salvageable partial table after a panic, or
/// `None` if the witness was never armed.
pub fn disarm_witness() -> Option<(Vec<String>, Vec<Vec<String>>)> {
    WITNESS_ARMED.store(false, Ordering::Release);
    witness_lock().take()
}

/// A simple column-aligned markdown table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        if WITNESS_ARMED.load(Ordering::Acquire) {
            if let Some(w) = witness_lock().as_mut() {
                w.0 = header.clone();
                w.1.clear();
            }
        }
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        if WITNESS_ARMED.load(Ordering::Acquire) {
            if let Some(w) = witness_lock().as_mut() {
                w.1.push(cells.clone());
            }
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows (each padded to the header width).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (c, &width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                let _ = write!(out, " {cell:width$} |");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        out.push('|');
        for &w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_sig(x: f64, digits: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    let dec = (digits as i32 - 1 - mag).max(0) as usize;
    if mag.abs() > 6 {
        format!("{x:.prec$e}", prec = digits.saturating_sub(1))
    } else {
        format!("{x:.dec$}")
    }
}

/// Formats a bit count as a human-readable quantity (`12.3 Kib`, …).
pub fn fmt_bits(bits: usize) -> String {
    let b = bits as f64;
    if b < 1024.0 {
        format!("{bits} b")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} Kib", b / 1024.0)
    } else {
        format!("{:.2} Mib", b / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["alpha", "1"]);
        t.push_row(["b", "22222"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All rows have equal rendered width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let md = t.to_markdown();
        assert!(md.lines().count() == 3);
    }

    #[test]
    fn fmt_sig_behaves() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        assert_eq!(fmt_sig(1234.5, 3), "1234"); // mag 3, no decimals
        assert_eq!(fmt_sig(0.012345, 3), "0.0123");
        assert!(fmt_sig(1.0e9, 3).contains('e'));
        assert_eq!(fmt_sig(f64::INFINITY, 3), "inf");
    }

    #[test]
    fn fmt_bits_units() {
        assert_eq!(fmt_bits(512), "512 b");
        assert_eq!(fmt_bits(2048), "2.0 Kib");
        assert!(fmt_bits(3 * 1024 * 1024).contains("Mib"));
    }
}
