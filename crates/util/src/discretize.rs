//! The `rnd_η` discretization of §3.
//!
//! The fast-update sampler never materializes a scaled value `x_i / e^{1/p}`
//! exactly; instead the inverse-exponential factor is rounded **down** to the
//! nearest power of `(1+η)`. The support of the rounded factor over the
//! dynamic range `[1/poly(n), poly(n)]` then has only `O(log(n)/η)` distinct
//! values `I_q = (1+η)^q`, which is what allows all `n^c` virtual duplicates
//! of a coordinate to be summarized by one binomial count per support point.

/// Discretization grid: powers `I_q = (1+η)^q` for `q ∈ [−q_max, q_max]`.
#[derive(Debug, Clone)]
pub struct EtaGrid {
    eta: f64,
    log1p_eta: f64,
    q_max: i64,
}

impl EtaGrid {
    /// Builds a grid with resolution `η` covering `[base^{-range}, base^{range}]`
    /// where the dynamic range is expressed as `range_pow10` decades.
    ///
    /// # Panics
    /// Panics unless `0 < η < 1` and `range_pow10 ≥ 1`.
    pub fn new(eta: f64, range_pow10: u32) -> Self {
        assert!(eta > 0.0 && eta < 1.0, "eta must be in (0,1), got {eta}");
        assert!(
            range_pow10 >= 1,
            "dynamic range must be at least one decade"
        );
        let log1p_eta = (1.0 + eta).ln();
        let q_max = ((range_pow10 as f64) * std::f64::consts::LN_10 / log1p_eta).ceil() as i64;
        Self {
            eta,
            log1p_eta,
            q_max,
        }
    }

    /// The resolution parameter `η`.
    #[inline]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Number of support points `2·q_max + 1`.
    #[inline]
    pub fn support_size(&self) -> usize {
        (2 * self.q_max + 1) as usize
    }

    /// The exponent range `q ∈ [−q_max, q_max]`.
    #[inline]
    pub fn q_range(&self) -> std::ops::RangeInclusive<i64> {
        -self.q_max..=self.q_max
    }

    /// The grid value `I_q = (1+η)^q`.
    #[inline]
    pub fn value(&self, q: i64) -> f64 {
        (q as f64 * self.log1p_eta).exp()
    }

    /// Rounds `x > 0` **down** to the grid: the largest `I_q ≤ x`
    /// (clamped to the grid boundary).
    #[inline]
    pub fn round_down(&self, x: f64) -> f64 {
        self.value(self.exponent_of(x))
    }

    /// The exponent `q` such that `I_q ≤ x < I_{q+1}` (clamped).
    #[inline]
    pub fn exponent_of(&self, x: f64) -> i64 {
        assert!(x > 0.0, "rnd_eta is defined for positive values, got {x}");
        let q = (x.ln() / self.log1p_eta).floor() as i64;
        q.clamp(-self.q_max, self.q_max)
    }

    /// Probability that the rounded inverse-`p`-th-power of a standard
    /// exponential lands exactly on `I_q`:
    /// `Pr[rnd_η(1/e^{1/p}) = I_q] = φ(I_{q+1}) − φ(I_q)` where
    /// `φ(t) = Pr[1/e^{1/p} ≤ t] = Pr[e ≥ t^{-p}] = exp(−t^{-p})`.
    ///
    /// At the grid boundaries the leftover tail mass is folded in so the
    /// probabilities over the full support sum to exactly 1.
    pub fn cell_probability(&self, q: i64, p: f64) -> f64 {
        assert!(p > 0.0, "moment parameter p must be positive");
        let cdf = |t: f64| (-(t.powf(-p))).exp();
        let lo = if q == -self.q_max {
            0.0
        } else {
            cdf(self.value(q))
        };
        let hi = if q == self.q_max {
            1.0
        } else {
            cdf(self.value(q + 1))
        };
        (hi - lo).max(0.0)
    }

    /// All cell probabilities in `q_range` order (sums to 1).
    pub fn cell_probabilities(&self, p: f64) -> Vec<f64> {
        self.q_range()
            .map(|q| self.cell_probability(q, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use crate::variates::exponential_from;

    #[test]
    fn round_down_is_within_eta() {
        let grid = EtaGrid::new(0.1, 6);
        for &x in &[0.001, 0.5, 1.0, 2.75, 1234.5] {
            let r = grid.round_down(x);
            assert!(r <= x * 1.000_000_1, "rounded {r} above {x}");
            assert!(
                r * (1.0 + grid.eta()) >= x * 0.999_999,
                "rounded {r} too far below {x}"
            );
        }
    }

    #[test]
    fn grid_values_are_powers() {
        let grid = EtaGrid::new(0.5, 3);
        assert!((grid.value(0) - 1.0).abs() < 1e-12);
        assert!((grid.value(2) - 2.25).abs() < 1e-12);
        assert!((grid.value(-1) - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn exponent_of_is_inverse_of_value() {
        let grid = EtaGrid::new(0.2, 6);
        for q in grid.q_range().step_by(5) {
            // A point just above I_q rounds to q.
            let x = grid.value(q) * 1.0001;
            assert_eq!(grid.exponent_of(x), q, "q={q}");
        }
    }

    #[test]
    fn support_size_scales_inversely_with_eta() {
        let coarse = EtaGrid::new(0.5, 6);
        let fine = EtaGrid::new(0.05, 6);
        assert!(fine.support_size() > 5 * coarse.support_size());
    }

    #[test]
    fn cell_probabilities_sum_to_one() {
        for p in [2.0f64, 3.0, 4.5] {
            let grid = EtaGrid::new(0.1, 8);
            let total: f64 = grid.cell_probabilities(p).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "p={p}: total {total}");
        }
    }

    #[test]
    fn cell_probabilities_match_simulation() {
        // Draw many exponentials, round 1/e^{1/p}, compare the histogram to
        // the analytic cell masses.
        let p = 3.0;
        let grid = EtaGrid::new(0.25, 4);
        let probs = grid.cell_probabilities(p);
        let offset = *grid.q_range().start();
        let mut counts = vec![0u64; grid.support_size()];
        let mut rng = Xoshiro256pp::new(33);
        let trials = 200_000;
        for _ in 0..trials {
            let e = exponential_from(&mut rng);
            let q = grid.exponent_of(e.powf(-1.0 / p));
            counts[(q - offset) as usize] += 1;
        }
        for (i, (&c, &pr)) in counts.iter().zip(&probs).enumerate() {
            let emp = c as f64 / trials as f64;
            assert!(
                (emp - pr).abs() < 0.004,
                "cell {i}: empirical {emp} vs analytic {pr}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn round_down_rejects_nonpositive() {
        EtaGrid::new(0.1, 4).round_down(0.0);
    }
}
