//! Deterministic, seedable pseudo-random number generation.
//!
//! Every random choice in the perfect-sampling stack flows from a single
//! `u64` master seed through [`derive_seed`] into independent
//! [`Xoshiro256pp`] streams. Sketches additionally need *keyed* randomness —
//! "the exponential variable attached to index `i`" must be recomputable at
//! every stream update without per-index state — which is provided by
//! [`keyed_u64`] (a splitmix-style finalizer over `(seed, key)`).
//!
//! We deliberately do not depend on the `rand` crate: reproducibility across
//! crate versions and the ability to hash a key directly into a stream
//! position matter more here than a generic RNG abstraction.

/// SplitMix64: a tiny, high-quality 64-bit mixer/generator.
///
/// Used to (a) expand a master seed into sub-seeds and (b) seed
/// [`Xoshiro256pp`] state, exactly as recommended by the xoshiro authors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stateless splitmix-style finalizer: mixes a single `u64` to avalanche.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from a master seed and a stream id.
///
/// Two invocations with different `(seed, stream)` pairs produce seeds whose
/// generated streams are computationally independent; this is how one master
/// seed fans out into the many sketch instances the algorithms require.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    // Feistel-ish double mix so that (seed, stream) and (stream, seed)
    // collide with negligible probability.
    mix64(seed ^ mix64(stream ^ 0xA076_1D64_78BD_642F))
}

/// Keyed stateless randomness: a pseudo-random `u64` determined by
/// `(seed, key)`.
///
/// This is the primitive behind "the exponential random variable of
/// coordinate `i`": re-evaluating it at every stream update yields the same
/// variate without storing anything per index.
#[inline]
pub fn keyed_u64(seed: u64, key: u64) -> u64 {
    mix64(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ mix64(key.wrapping_add(0x2545_F491_4F6C_DD1D)))
}

/// Keyed randomness over a pair of keys (e.g. `(index, repetition)`).
#[inline]
pub fn keyed2_u64(seed: u64, key1: u64, key2: u64) -> u64 {
    keyed_u64(keyed_u64(seed, key1), key2 ^ 0x9E6C_63D0_876A_68EE)
}

/// xoshiro256++ 1.0 — the workhorse sequential generator.
///
/// Period 2^256 − 1, passes BigCrush; `++` scrambler output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the state from `seed` via SplitMix64 (never all-zero).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Convenience: a generator for sub-stream `stream` of a master seed.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        Self::new(derive_seed(seed, stream))
    }

    /// The raw 256-bit generator state (for checkpointing; see `wire`).
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured [`Xoshiro256pp::state`].
    /// The all-zero state is a fixed point of xoshiro, so it maps to the
    /// same non-zero fallback `new` uses.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            Self {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            }
        } else {
            Self { s }
        }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the *open* interval `(0, 1)`.
    ///
    /// Needed wherever a logarithm of the variate is taken (exponentials).
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire's multiply-shift with rejection to remove modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)`.
    #[inline]
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Random sign in `{-1, +1}`.
    #[inline]
    pub fn next_sign(&mut self) -> i64 {
        if self.next_u64() & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (reservoir over the range).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k must be <= n");
        // Floyd's algorithm: O(k) expected insertions, ordered output.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got[0], 6457827717110365317);
        assert_eq!(got[1], 3203168211198807973);
        assert_eq!(got[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::new(42);
        let mut b = Xoshiro256pp::new(42);
        let mut c = Xoshiro256pp::new(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::new(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Xoshiro256pp::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_unbiased_over_small_range() {
        let mut rng = Xoshiro256pp::new(99);
        let mut counts = [0u32; 7];
        let trials = 70_000;
        for _ in 0..trials {
            counts[rng.next_below(7) as usize] += 1;
        }
        let expected = trials as f64 / 7.0;
        for (v, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "value {v} count {c} vs expected {expected}");
        }
    }

    #[test]
    fn next_sign_is_balanced() {
        let mut rng = Xoshiro256pp::new(5);
        let sum: i64 = (0..100_000).map(|_| rng.next_sign()).sum();
        assert!(sum.abs() < 2_000, "sum {sum}");
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s = 0xDEADBEEF;
        let mut streams: Vec<u64> = (0..100).map(|i| derive_seed(s, i)).collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 100, "sub-seeds must be distinct");
    }

    #[test]
    fn keyed_u64_is_stable_and_key_sensitive() {
        assert_eq!(keyed_u64(1, 2), keyed_u64(1, 2));
        assert_ne!(keyed_u64(1, 2), keyed_u64(1, 3));
        assert_ne!(keyed_u64(1, 2), keyed_u64(2, 2));
    }

    #[test]
    fn keyed_u64_bits_look_uniform() {
        // Count set bits over many keys; should concentrate near 32/64.
        let mut ones = 0u64;
        let keys = 10_000u64;
        for k in 0..keys {
            ones += keyed_u64(77, k).count_ones() as u64;
        }
        let mean = ones as f64 / keys as f64;
        assert!((mean - 32.0).abs() < 0.5, "mean bit count {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256pp::new(8);
        for _ in 0..100 {
            let ix = rng.sample_indices(30, 10);
            assert_eq!(ix.len(), 10);
            let mut dedup = ix.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 10);
            assert!(ix.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = Xoshiro256pp::new(8);
        let ix = rng.sample_indices(5, 5);
        assert_eq!(ix, vec![0, 1, 2, 3, 4]);
    }
}
