//! k-wise independent hash families.
//!
//! CountSketch and its relatives only need limited independence: pairwise for
//! the bucket map, 4-wise for the sign map's second-moment analysis. We use
//! the classic polynomial construction over the Mersenne prime
//! `p = 2^61 − 1`: a degree-`(k−1)` polynomial with uniformly random
//! coefficients evaluated with fast Mersenne reduction is exactly k-wise
//! independent on `[p]`.

use crate::rng::Xoshiro256pp;

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces `x` modulo `2^61 − 1` (for `x < 2^122`).
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    // x = hi * 2^61 + lo  =>  x ≡ hi + lo (mod 2^61 − 1)
    let lo = (x & (MERSENNE_P as u128)) as u64;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// Multiplies two residues modulo `2^61 − 1`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    mod_mersenne((a as u128) * (b as u128))
}

/// A k-wise independent hash function `h : u64 → [2^61 − 1)`.
///
/// Evaluation is Horner's rule over the Mersenne prime, ~k multiplications.
#[derive(Debug, Clone)]
pub struct KWiseHash {
    /// Polynomial coefficients, constant term last; `coeffs.len() == k`.
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a fresh function from the k-wise independent family.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, rng: &mut Xoshiro256pp) -> Self {
        assert!(k >= 1, "independence parameter k must be >= 1");
        let mut coeffs = Vec::with_capacity(k);
        for i in 0..k {
            // Leading coefficient non-zero keeps the polynomial degree exact;
            // for the others any residue is fine.
            let c = loop {
                let c = rng.next_below(MERSENNE_P);
                if i != 0 || c != 0 || k == 1 {
                    break c;
                }
            };
            coeffs.push(c);
        }
        Self { coeffs }
    }

    /// Convenience: a fresh function seeded deterministically.
    pub fn from_seed(k: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::new(seed);
        Self::new(k, &mut rng)
    }

    /// The independence parameter `k` this function was drawn with.
    #[inline]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The polynomial coefficients (constant term last) — the function's
    /// complete seed material, exposed for wire encoding.
    #[inline]
    pub fn coefficients(&self) -> &[u64] {
        &self.coeffs
    }

    /// Rebuilds a function from captured [`KWiseHash::coefficients`].
    ///
    /// # Panics
    /// Panics if `coeffs` is empty (callers on the decode path validate
    /// first and return a `WireError` instead).
    pub fn from_coefficients(coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty(), "hash needs at least one coefficient");
        Self { coeffs }
    }

    /// Evaluates the hash: a value uniform on `[0, 2^61 − 1)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        // Map the 64-bit input into the field first.
        let x = mod_mersenne(x as u128);
        let mut acc = 0u64;
        for &c in &self.coeffs {
            acc = mul_mod(acc, x);
            acc += c;
            if acc >= MERSENNE_P {
                acc -= MERSENNE_P;
            }
        }
        acc
    }

    /// Hash reduced to a bucket in `[0, buckets)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    #[inline]
    pub fn bucket(&self, x: u64, buckets: usize) -> usize {
        assert!(buckets > 0, "bucket count must be positive");
        // Multiply-shift style reduction avoids the modulo bias that plain
        // `% buckets` would introduce (negligible here, but free to avoid).
        let h = self.hash(x) as u128;
        ((h * buckets as u128) >> 61) as usize
    }

    /// Hash reduced to a sign in `{−1, +1}`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.hash(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Hash reduced to a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&self, x: u64) -> f64 {
        self.hash(x) as f64 / MERSENNE_P as f64
    }

    /// Number of bits needed to store this function (its seed material).
    #[inline]
    pub fn space_bits(&self) -> usize {
        self.coeffs.len() * 61
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_mersenne_agrees_with_naive() {
        let cases: [u128; 6] = [
            0,
            1,
            MERSENNE_P as u128,
            (MERSENNE_P as u128) + 5,
            u64::MAX as u128,
            (MERSENNE_P as u128) * (MERSENNE_P as u128),
        ];
        for &x in &cases {
            assert_eq!(mod_mersenne(x) as u128, x % (MERSENNE_P as u128), "x={x}");
        }
    }

    #[test]
    fn mul_mod_matches_u128_arithmetic() {
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..1000 {
            let a = rng.next_below(MERSENNE_P);
            let b = rng.next_below(MERSENNE_P);
            let expect = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mul_mod(a, b), expect);
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let h = KWiseHash::from_seed(4, 123);
        assert_eq!(h.hash(42), h.hash(42));
        let h2 = KWiseHash::from_seed(4, 123);
        assert_eq!(h.hash(42), h2.hash(42));
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let h1 = KWiseHash::from_seed(2, 1);
        let h2 = KWiseHash::from_seed(2, 2);
        let differs = (0..100u64).any(|x| h1.hash(x) != h2.hash(x));
        assert!(differs);
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        let h = KWiseHash::from_seed(2, 777);
        let buckets = 16;
        let mut counts = vec![0u32; buckets];
        let n = 64_000u64;
        for x in 0..n {
            counts[h.bucket(x, buckets)] += 1;
        }
        let expected = n as f64 / buckets as f64;
        for (b, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "bucket {b}: {c} vs {expected}");
        }
    }

    #[test]
    fn signs_are_roughly_balanced_and_pairwise_uncorrelated() {
        let h = KWiseHash::from_seed(4, 31337);
        let n = 40_000u64;
        let sum: i64 = (0..n).map(|x| h.sign(x)).sum();
        assert!(sum.abs() < 1_200, "sign sum {sum}");
        // Pairwise product of signs at (x, x+1) should also be balanced.
        let prod_sum: i64 = (0..n - 1).map(|x| h.sign(x) * h.sign(x + 1)).sum();
        assert!(prod_sum.abs() < 1_200, "pair product sum {prod_sum}");
    }

    #[test]
    fn pairwise_collision_rate_matches_theory() {
        // For a pairwise-independent family, Pr[h(x)=h(y)] into B buckets is
        // ~1/B. Estimate over many fresh functions on a fixed pair.
        let buckets = 8;
        let trials = 8_000;
        let mut collisions = 0;
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..trials {
            let h = KWiseHash::new(2, &mut rng);
            if h.bucket(3, buckets) == h.bucket(9, buckets) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let ideal = 1.0 / buckets as f64;
        assert!((rate - ideal).abs() < 0.02, "rate {rate} vs {ideal}");
    }

    #[test]
    fn bucket_panics_on_zero() {
        let h = KWiseHash::from_seed(2, 1);
        let r = std::panic::catch_unwind(|| h.bucket(1, 0));
        assert!(r.is_err());
    }

    #[test]
    fn space_bits_scales_with_k() {
        assert_eq!(KWiseHash::from_seed(2, 1).space_bits(), 122);
        assert_eq!(KWiseHash::from_seed(4, 1).space_bits(), 244);
    }
}
