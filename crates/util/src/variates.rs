//! Random variates: exponential, Gaussian, geometric, binomial, multinomial.
//!
//! Exponential random variables are the engine of every sampler in the paper
//! (max-stability, Lemma 1.16's anti-rank characterization); Gaussians drive
//! the 2-stable L₂ estimator of Algorithm 4; geometric/binomial/multinomial
//! variates implement the *fast-update simulation* of the duplicated vector
//! (§3), where `Bin(n^c, p_q)` counts how many of the `n^c` virtual
//! duplicates round to each discretized exponential value.

use crate::rng::{keyed2_u64, keyed_u64, Xoshiro256pp};

/// Converts raw 64 bits to a uniform variate in the open interval `(0, 1)`.
#[inline]
fn unit_open(bits: u64) -> f64 {
    // 53-bit mantissa; offset by half an ulp so 0 is never produced.
    (((bits >> 11) as f64) + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Standard exponential variate (rate 1) from raw bits, via inversion.
#[inline]
pub fn exp_from_bits(bits: u64) -> f64 {
    -unit_open(bits).ln()
}

/// The standard exponential attached to `(seed, key)`.
///
/// Deterministic: every stream update touching index `key` recomputes the
/// same variate, so no per-index state is kept (cf. DESIGN.md S1/S2).
#[inline]
pub fn keyed_exponential(seed: u64, key: u64) -> f64 {
    exp_from_bits(keyed_u64(seed, key))
}

/// The standard exponential attached to `(seed, key1, key2)` — used for the
/// duplicated coordinates `e_{i,j}` of §3.
#[inline]
pub fn keyed_exponential2(seed: u64, key1: u64, key2: u64) -> f64 {
    exp_from_bits(keyed2_u64(seed, key1, key2))
}

/// A uniform variate in `(0,1)` attached to `(seed, key)`.
#[inline]
pub fn keyed_unit(seed: u64, key: u64) -> f64 {
    unit_open(keyed_u64(seed, key))
}

/// A Rademacher sign attached to `(seed, key)`.
#[inline]
pub fn keyed_sign(seed: u64, key: u64) -> i64 {
    if keyed_u64(seed, key) & 1 == 0 {
        1
    } else {
        -1
    }
}

/// Standard Gaussian attached to `(seed, key)` (Box–Muller on keyed bits).
#[inline]
pub fn keyed_gaussian(seed: u64, key: u64) -> f64 {
    let u1 = unit_open(keyed_u64(seed, key));
    let u2 = unit_open(keyed_u64(seed ^ 0x5851_F42D_4C95_7F2D, key));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The minimum of `n` i.i.d. standard exponentials, *simulated exactly* by
/// max-stability: `min_{j∈[n]} e_j ~ Exp(n) = e / n` (Prop 1.13).
///
/// This is how the paper's `n^c`-fold duplication becomes O(1) work: the
/// *largest* scaled duplicate of coordinate `i` is
/// `|x_i| · (n^c / e)^{1/p}` for a single fresh exponential `e`.
#[inline]
pub fn min_of_exponentials(n_copies: f64, e: f64) -> f64 {
    e / n_copies
}

/// Geometric variate: the number of Bernoulli(`p`) trials up to and
/// including the first success; support `{1, 2, …}`.
///
/// Used by the fast-update CountSketch₁ hashing scheme (§3): the gap between
/// consecutive occupied buckets is geometric with `p = 1/L`.
///
/// # Panics
/// Panics unless `0 < p ≤ 1`.
#[inline]
pub fn geometric(rng: &mut Xoshiro256pp, p: f64) -> u64 {
    assert!(
        p > 0.0 && p <= 1.0,
        "geometric: p must be in (0,1], got {p}"
    );
    if p >= 1.0 {
        return 1;
    }
    let u = rng.next_f64_open();
    // Inversion: ceil(ln u / ln(1−p)) has the right law.
    let g = (u.ln() / (1.0 - p).ln()).ceil();
    if g < 1.0 {
        1
    } else {
        g as u64
    }
}

/// Binomial variate `Bin(n, p)` where `n` may be astronomically large
/// (the virtual duplicate count `n^c`), so `n` is an `f64`.
///
/// Strategy (documented in DESIGN.md §4): exact Bernoulli summation for tiny
/// `n`; BINV-style CDF inversion while `n·p ≤ 30`; Gaussian approximation
/// with continuity correction otherwise. The approximate regimes match the
/// target distribution in the first two moments and total-variation error
/// `O(1/sqrt(n p (1−p)))`, which is far below every tolerance in the paper's
/// analysis at the scales we simulate.
pub fn binomial(rng: &mut Xoshiro256pp, n: f64, p: f64) -> f64 {
    assert!(n >= 0.0, "binomial: n must be non-negative");
    if n == 0.0 || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return n;
    }
    // Work with the smaller tail for numeric stability.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let mean = n * p;
    if n <= 64.0 {
        let n_int = n as u64;
        let mut count = 0.0;
        for _ in 0..n_int {
            if rng.next_f64() < p {
                count += 1.0;
            }
        }
        return count;
    }
    if mean <= 30.0 {
        // BINV: sequential CDF inversion starting from Pr[X = 0] = (1−p)^n,
        // computed in log-space to survive huge n.
        let q = 1.0 - p;
        // ln_1p keeps precision when p is far below f64 epsilon.
        let log_q = (-p).ln_1p();
        let mut pk = (n * log_q).exp(); // Pr[X = k], k = 0
        if pk <= 0.0 {
            // (1−p)^n underflowed: mean is moderate but n is so large the
            // Poisson limit applies exactly to double precision.
            return poisson(rng, mean);
        }
        let mut cdf = pk;
        let u = rng.next_f64();
        let mut k = 0.0f64;
        let r = p / q;
        while u > cdf {
            k += 1.0;
            pk *= (n - k + 1.0) / k * r;
            cdf += pk;
            if pk < 1e-18 && k > mean {
                break; // numeric tail exhaustion
            }
        }
        return k;
    }
    // Gaussian regime.
    let sd = (n * p * (1.0 - p)).sqrt();
    let z = gaussian_from(rng);
    (mean + sd * z + 0.5).floor().clamp(0.0, n)
}

/// Poisson variate with mean `lambda` (Knuth for small mean, Gaussian above).
pub fn poisson(rng: &mut Xoshiro256pp, lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "poisson: lambda must be non-negative");
    if lambda == 0.0 {
        return 0.0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0.0;
        let mut prod = rng.next_f64_open();
        while prod > l {
            k += 1.0;
            prod *= rng.next_f64_open();
        }
        return k;
    }
    let z = gaussian_from(rng);
    (lambda + lambda.sqrt() * z + 0.5).floor().max(0.0)
}

/// Standard Gaussian from a sequential generator (polar Box–Muller).
#[inline]
pub fn gaussian_from(rng: &mut Xoshiro256pp) -> f64 {
    loop {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Standard exponential from a sequential generator.
#[inline]
pub fn exponential_from(rng: &mut Xoshiro256pp) -> f64 {
    -rng.next_f64_open().ln()
}

/// Multinomial: distributes `n` trials over `probs` (need not be normalized)
/// by sequential conditional binomials.
///
/// Returns one count per probability; counts sum to exactly `n` when every
/// branch stayed in the exact regime, and to `n ± o(n)` in the Gaussian
/// regime (the remainder is assigned to the final cell).
pub fn multinomial(rng: &mut Xoshiro256pp, n: f64, probs: &[f64]) -> Vec<f64> {
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "multinomial: probabilities must sum to > 0");
    let mut remaining_n = n;
    let mut remaining_p = total;
    let mut out = Vec::with_capacity(probs.len());
    for (idx, &p) in probs.iter().enumerate() {
        if remaining_n <= 0.0 {
            out.push(0.0);
            continue;
        }
        if idx == probs.len() - 1 {
            out.push(remaining_n);
            break;
        }
        let cond = (p / remaining_p).clamp(0.0, 1.0);
        let draw = binomial(rng, remaining_n, cond);
        out.push(draw);
        remaining_n -= draw;
        remaining_p -= p;
        if remaining_p <= 0.0 {
            break; // exhausted mass: remaining cells get zero below
        }
    }
    out.resize(probs.len(), 0.0);
    out
}

/// Returns the anti-rank vector of `values` by decreasing magnitude:
/// `result[k]` is the index of the (k+1)-st largest `|value|` (Def. in §1.4).
pub fn anti_ranks(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .abs()
            .partial_cmp(&values[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn exponential_mean_and_variance_are_one() {
        let mut rng = Xoshiro256pp::new(1);
        let xs: Vec<f64> = (0..200_000).map(|_| exponential_from(&mut rng)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!((m - 1.0).abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    fn keyed_exponential_is_deterministic() {
        assert_eq!(keyed_exponential(9, 4), keyed_exponential(9, 4));
        assert_ne!(keyed_exponential(9, 4), keyed_exponential(9, 5));
    }

    #[test]
    fn keyed_exponential_tail_matches_cdf() {
        // Prop 1.12: Pr[e >= a] = exp(-a).
        let n = 100_000u64;
        for a in [0.5f64, 1.0, 2.0] {
            let count = (0..n).filter(|&k| keyed_exponential(123, k) >= a).count() as f64;
            let rate = count / n as f64;
            let ideal = (-a).exp();
            assert!((rate - ideal).abs() < 0.01, "a={a}: {rate} vs {ideal}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256pp::new(2);
        let xs: Vec<f64> = (0..200_000).map(|_| gaussian_from(&mut rng)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn keyed_gaussian_moments() {
        let xs: Vec<f64> = (0..200_000).map(|k| keyed_gaussian(7, k)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut rng = Xoshiro256pp::new(3);
        for p in [0.5f64, 0.1, 0.01] {
            let n = 50_000;
            let mean = (0..n).map(|_| geometric(&mut rng, p) as f64).sum::<f64>() / n as f64;
            let rel = (mean - 1.0 / p).abs() / (1.0 / p);
            assert!(rel < 0.05, "p={p}: mean {mean}");
        }
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut rng = Xoshiro256pp::new(4);
        assert!((0..10_000).all(|_| geometric(&mut rng, 0.9) >= 1));
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn binomial_small_n_moments() {
        let mut rng = Xoshiro256pp::new(5);
        let (n, p) = (20.0, 0.3);
        let xs: Vec<f64> = (0..100_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!((m - n * p).abs() < 0.05, "mean {m}");
        assert!((v - n * p * (1.0 - p)).abs() < 0.15, "var {v}");
    }

    #[test]
    fn binomial_binv_regime_moments() {
        let mut rng = Xoshiro256pp::new(6);
        let (n, p) = (10_000.0, 0.002); // mean 20 => BINV path
        let xs: Vec<f64> = (0..60_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!((m - 20.0).abs() < 0.2, "mean {m}");
        assert!((v - 20.0).abs() < 0.8, "var {v}");
    }

    #[test]
    fn binomial_gaussian_regime_moments() {
        let mut rng = Xoshiro256pp::new(7);
        let (n, p) = (1.0e6, 0.25);
        let xs: Vec<f64> = (0..40_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!((m - 2.5e5).abs() / 2.5e5 < 0.005, "mean {m}");
        assert!((v - n * p * 0.75).abs() / (n * p * 0.75) < 0.05, "var {v}");
    }

    #[test]
    fn binomial_huge_n_tiny_p_poisson_fallback() {
        let mut rng = Xoshiro256pp::new(8);
        // n so large (1−p)^n underflows: exercises the Poisson branch.
        let (n, p) = (1.0e18, 5.0e-18);
        let xs: Vec<f64> = (0..60_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
        assert!((v - 5.0).abs() < 0.3, "var {v}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = Xoshiro256pp::new(9);
        assert_eq!(binomial(&mut rng, 0.0, 0.5), 0.0);
        assert_eq!(binomial(&mut rng, 10.0, 0.0), 0.0);
        assert_eq!(binomial(&mut rng, 10.0, 1.0), 10.0);
    }

    #[test]
    fn poisson_moments() {
        let mut rng = Xoshiro256pp::new(10);
        for lambda in [3.0f64, 50.0] {
            let xs: Vec<f64> = (0..60_000).map(|_| poisson(&mut rng, lambda)).collect();
            let (m, v) = sample_mean_var(&xs);
            assert!((m - lambda).abs() / lambda < 0.03, "λ={lambda} mean {m}");
            assert!((v - lambda).abs() / lambda < 0.08, "λ={lambda} var {v}");
        }
    }

    #[test]
    fn multinomial_counts_sum_to_n_and_match_proportions() {
        let mut rng = Xoshiro256pp::new(11);
        let probs = [0.5, 0.3, 0.2];
        let n = 10_000.0;
        let mut totals = [0.0f64; 3];
        let reps = 200;
        for _ in 0..reps {
            let draw = multinomial(&mut rng, n, &probs);
            assert_eq!(draw.len(), 3);
            let sum: f64 = draw.iter().sum();
            assert!((sum - n).abs() < 1e-9, "sum {sum}");
            for (t, d) in totals.iter_mut().zip(&draw) {
                *t += d;
            }
        }
        for (t, p) in totals.iter().zip(&probs) {
            let rate = t / (n * reps as f64);
            assert!((rate - p).abs() < 0.01, "rate {rate} vs {p}");
        }
    }

    #[test]
    fn min_of_exponentials_matches_direct_simulation() {
        // Compare the analytic shortcut against brute force for n=16.
        let n = 16usize;
        let trials = 40_000;
        let mut rng = Xoshiro256pp::new(12);
        let mut direct = Vec::with_capacity(trials);
        let mut shortcut = Vec::with_capacity(trials);
        for _ in 0..trials {
            let m = (0..n)
                .map(|_| exponential_from(&mut rng))
                .fold(f64::INFINITY, f64::min);
            direct.push(m);
            shortcut.push(min_of_exponentials(n as f64, exponential_from(&mut rng)));
        }
        let (md, _) = sample_mean_var(&direct);
        let (ms, _) = sample_mean_var(&shortcut);
        assert!((md - ms).abs() < 0.005, "direct {md} vs shortcut {ms}");
    }

    #[test]
    fn anti_ranks_order_by_magnitude() {
        let v = [1.0, -5.0, 3.0, 0.5];
        assert_eq!(anti_ranks(&v), vec![1, 2, 0, 3]);
    }

    #[test]
    fn anti_rank_of_max_follows_weights() {
        // Prop 1.14: Pr[argmin_i e_i/λ_i ... ] — equivalently the max of
        // λ_i/e_i is i with probability λ_i / Σλ_j. Empirical check.
        let lambdas = [1.0f64, 2.0, 5.0];
        let total: f64 = lambdas.iter().sum();
        let trials = 60_000;
        let mut rng = Xoshiro256pp::new(13);
        let mut wins = [0u32; 3];
        for _ in 0..trials {
            let scaled: Vec<f64> = lambdas
                .iter()
                .map(|&l| l / exponential_from(&mut rng))
                .collect();
            wins[anti_ranks(&scaled)[0]] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let rate = w as f64 / trials as f64;
            let ideal = lambdas[i] / total;
            assert!((rate - ideal).abs() < 0.01, "i={i}: {rate} vs {ideal}");
        }
    }
}
