//! Statistical machinery for validating sampler distributions.
//!
//! The experiments compare empirical sampling frequencies against the ideal
//! law `G(x_i)/Σ_j G(x_j)`; this module supplies the total-variation
//! distance, Pearson χ² goodness-of-fit with an exact-enough p-value
//! (regularized incomplete gamma), Wilson score intervals for FAIL-rate
//! claims, and least-squares exponent fitting for the space-scaling
//! experiments (E2/E6 in DESIGN.md).

/// Natural log of the Gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Absolute error below 1e-13 over the positive reals — ample for p-values.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: x must be positive, got {x}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the small-x regime accurate.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Series expansion for `x < a+1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && x >= 0.0,
        "reg_gamma_lower: invalid args a={a} x={x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = x^a e^-x Σ x^n / (a (a+1) … (a+n)).
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
    } else {
        1.0 - reg_gamma_upper_cf(a, x)
    }
}

/// Regularized upper incomplete gamma via Lentz's continued fraction.
fn reg_gamma_upper_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    ((a * x.ln() - x - ln_gamma(a)).exp() * h).min(1.0)
}

/// Survival function of the χ² distribution with `dof` degrees of freedom.
pub fn chi_square_sf(stat: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "chi_square_sf: dof must be positive");
    if stat <= 0.0 {
        return 1.0;
    }
    (1.0 - reg_gamma_lower(dof / 2.0, stat / 2.0)).clamp(0.0, 1.0)
}

/// Result of a Pearson χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (cells − 1, after pooling).
    pub dof: f64,
    /// The p-value `Pr[χ²_dof ≥ statistic]`.
    pub p_value: f64,
}

/// Pearson χ² test of observed counts against expected probabilities.
///
/// Cells with expected count below `min_expected` (use 5.0 for the textbook
/// rule) are pooled into one residual cell to keep the asymptotics honest.
///
/// # Panics
/// Panics if lengths differ or if `probs` has negative mass.
pub fn chi_square_test(observed: &[u64], probs: &[f64], min_expected: f64) -> ChiSquare {
    assert_eq!(observed.len(), probs.len(), "length mismatch");
    let total: u64 = observed.iter().sum();
    let mass: f64 = probs.iter().sum();
    assert!(mass > 0.0, "probabilities must have positive mass");
    assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
    let n = total as f64;

    let mut stat = 0.0f64;
    let mut cells = 0usize;
    let mut pooled_obs = 0.0f64;
    let mut pooled_exp = 0.0f64;
    for (&o, &p) in observed.iter().zip(probs) {
        let e = n * p / mass;
        if e < min_expected {
            pooled_obs += o as f64;
            pooled_exp += e;
        } else {
            let d = o as f64 - e;
            stat += d * d / e;
            cells += 1;
        }
    }
    if pooled_exp > 0.0 {
        let d = pooled_obs - pooled_exp;
        stat += d * d / pooled_exp;
        cells += 1;
    }
    let dof = (cells.max(2) - 1) as f64;
    ChiSquare {
        statistic: stat,
        dof,
        p_value: chi_square_sf(stat, dof),
    }
}

/// Total-variation distance between an empirical distribution (counts) and a
/// target distribution (unnormalized weights): `½ Σ |p̂_i − p_i|`.
pub fn tv_distance(observed: &[u64], weights: &[f64]) -> f64 {
    assert_eq!(observed.len(), weights.len(), "length mismatch");
    let total: u64 = observed.iter().sum();
    let mass: f64 = weights.iter().sum();
    if total == 0 || mass <= 0.0 {
        return 1.0;
    }
    observed
        .iter()
        .zip(weights)
        .map(|(&o, &w)| (o as f64 / total as f64 - w / mass).abs())
        .sum::<f64>()
        / 2.0
}

/// Maximum relative bias `max_i |p̂_i − p_i| / p_i` over cells with
/// `p_i ≥ floor` (tiny cells are statistically unresolvable).
pub fn max_relative_bias(observed: &[u64], weights: &[f64], floor: f64) -> f64 {
    assert_eq!(observed.len(), weights.len(), "length mismatch");
    let total: u64 = observed.iter().sum();
    let mass: f64 = weights.iter().sum();
    if total == 0 || mass <= 0.0 {
        return f64::INFINITY;
    }
    observed
        .iter()
        .zip(weights)
        .filter_map(|(&o, &w)| {
            let p = w / mass;
            (p >= floor).then(|| (o as f64 / total as f64 - p).abs() / p)
        })
        .fold(0.0, f64::max)
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_984_540_054; // Φ^{-1}(0.975)
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "variance needs at least two samples");
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Empirical quantile via linear interpolation (`q` in `[0,1]`).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Least-squares fit of `y = a + b·x`; returns `(a, b, r_squared)`.
///
/// Used to fit `log(space)` against `log(n)` and read the scaling exponent.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values are all identical");
    let b = sxy / sxx;
    let a = my - b * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (a + b * x);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

/// Kolmogorov–Smirnov statistic between a sample and a CDF.
pub fn ks_statistic<F: Fn(f64) -> f64>(xs: &[f64], cdf: F) -> f64 {
    assert!(!xs.is_empty(), "ks_statistic of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let f = cdf(x);
            let lo = (f - i as f64 / n).abs();
            let hi = ((i + 1) as f64 / n - f).abs();
            lo.max(hi)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) over a grid.
        for i in 1..50 {
            let x = i as f64 * 0.37;
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn chi_square_sf_matches_known_points() {
        // χ²(1): Pr[X >= 3.841] ≈ 0.05; χ²(10): Pr[X >= 18.307] ≈ 0.05.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(0.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_test_accepts_true_distribution() {
        let mut rng = Xoshiro256pp::new(21);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            let u = rng.next_f64();
            let mut acc = 0.0;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if u < acc {
                    counts[i] += 1;
                    break;
                }
            }
        }
        let res = chi_square_test(&counts, &probs, 5.0);
        assert!(res.p_value > 0.001, "p={}", res.p_value);
    }

    #[test]
    fn chi_square_test_rejects_wrong_distribution() {
        let counts = [4000u64, 1000, 1000, 4000];
        let probs = [0.25, 0.25, 0.25, 0.25];
        let res = chi_square_test(&counts, &probs, 5.0);
        assert!(res.p_value < 1e-6, "p={}", res.p_value);
    }

    #[test]
    fn chi_square_pools_small_cells() {
        // One expected cell is tiny; pooling keeps dof sane.
        let counts = [100u64, 100, 1];
        let probs = [0.5, 0.4999, 0.0001];
        let res = chi_square_test(&counts, &probs, 5.0);
        assert!(res.dof >= 1.0 && res.dof <= 2.0);
        assert!(res.p_value.is_finite());
    }

    #[test]
    fn tv_distance_zero_for_identical() {
        let counts = [10u64, 20, 30];
        let weights = [1.0, 2.0, 3.0];
        assert!(tv_distance(&counts, &weights) < 1e-12);
    }

    #[test]
    fn tv_distance_one_for_disjoint() {
        let counts = [100u64, 0];
        let weights = [0.0, 1.0];
        assert!((tv_distance(&counts, &weights) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_relative_bias_detects_skew() {
        let counts = [150u64, 50]; // empirical 0.75/0.25 vs ideal 0.5/0.5
        let weights = [1.0, 1.0];
        let b = max_relative_bias(&counts, &weights, 0.01);
        assert!((b - 0.5).abs() < 1e-12, "bias {b}");
    }

    #[test]
    fn wilson_interval_contains_p_hat() {
        let (lo, hi) = wilson_interval(10, 100);
        assert!(lo < 0.1 && 0.1 < hi);
        assert!(lo > 0.0 && hi < 1.0);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.5 * x).collect();
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-10);
        assert!((b - 0.5).abs() < 1e-10);
        assert!((r2 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ks_statistic_small_for_true_cdf() {
        let mut rng = Xoshiro256pp::new(22);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| crate::variates::exponential_from(&mut rng))
            .collect();
        let ks = ks_statistic(&xs, |x| 1.0 - (-x).exp());
        assert!(ks < 0.02, "ks {ks}");
    }

    #[test]
    fn ks_statistic_large_for_wrong_cdf() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let ks = ks_statistic(&xs, |x| 1.0 - (-x).exp()); // exp CDF vs uniform data
        assert!(ks > 0.2, "ks {ks}");
    }
}
