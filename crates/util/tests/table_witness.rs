//! The table row witness — the salvage path behind `reproduce --json`'s
//! partial artifacts. Lives in its own integration binary (own process)
//! because the witness is process-global: unit tests building unrelated
//! tables in parallel would race the mirror.

use pts_util::table::{arm_witness, disarm_witness};
use pts_util::Table;

#[test]
fn witness_mirrors_completed_rows_and_survives_a_panic() {
    // Disarmed: table construction leaves no trace.
    let mut quiet = Table::new(["a"]);
    quiet.push_row(["1"]);
    assert!(disarm_witness().is_none(), "never armed, nothing recorded");

    // Armed: the mirror tracks the most recent table's completed rows,
    // even when the builder panics mid-experiment and the Table itself
    // unwinds away.
    arm_witness();
    let outcome = std::panic::catch_unwind(|| {
        let mut t = Table::new(["n", "rate"]);
        t.push_row(["1024", "3.5e6"]);
        t.push_row(["2048", "2.9e6"]);
        panic!("experiment died after two rows");
    });
    assert!(outcome.is_err());
    let (header, rows) = disarm_witness().expect("armed witness records");
    assert_eq!(header, ["n", "rate"]);
    assert_eq!(rows, [["1024", "3.5e6"], ["2048", "2.9e6"]]);

    // A fresh table while armed resets the mirror (one experiment, one
    // table): only the newest table's rows are salvaged.
    arm_witness();
    let mut first = Table::new(["old"]);
    first.push_row(["stale"]);
    let mut second = Table::new(["new"]);
    second.push_row(["kept"]);
    let (header, rows) = disarm_witness().expect("armed witness records");
    assert_eq!(header, ["new"]);
    assert_eq!(rows, [["kept"]]);
}
