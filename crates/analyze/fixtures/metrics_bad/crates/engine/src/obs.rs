// Fixture: four planted inventory violations.
pub fn register(r: &Registry) -> Handles {
    Handles {
        updates: r.counter("engine.ingest.updates"),
        draw_ns: r.counter("engine.draw.ns"),
        bad_name: r.counter("NotDotted"),
        foreign: r.counter("server.stolen.metric"),
        undocumented: r.counter("engine.secret.series"),
    }
}
