// Fixture: registrations that match DESIGN.md exactly.
pub fn register(r: &Registry) -> Handles {
    Handles {
        updates: r.counter("engine.ingest.updates"),
        batches: r.counter("engine.ingest.batches"),
        draw_ns: r.histogram("engine.draw.ns"),
        reqs: r.counter_labeled("engine.requests", "kind", kind),
    }
}
