// Fixture wire constants (FNV constants present so the code-side FNV
// check stays quiet; the analyzer knows this offset/prime).
pub const WIRE_MAGIC: [u8; 4] = *b"PTSW";
pub const WIRE_VERSION: u8 = 2;
pub const KIND_REQUEST: u8 = 4;
pub const KIND_RESPONSE: u8 = 5;
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;
