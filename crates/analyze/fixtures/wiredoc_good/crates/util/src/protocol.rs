// Fixture protocol tags.
const REQ_STATS: u8 = 0x04;
const REQ_PING: u8 = 0x05;
