// Fixture: lock, compute, unlock, then talk to the network.
fn dispatch(shared: &Shared, stream: &mut TcpStream) {
    let reply = {
        let mut engine = shared.engine.lock().unwrap();
        engine.answer()
    };
    stream.write_all(&reply).unwrap();
}

fn explicit_drop(shared: &Shared, stream: &mut TcpStream) {
    let mut engine = shared.engine.lock().unwrap();
    let reply = engine.answer();
    drop(engine);
    stream.write_all(&reply).unwrap();
}
