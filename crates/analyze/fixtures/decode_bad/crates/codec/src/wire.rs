// Fixture: planted panic sources in decode paths.
pub struct Foo {
    a: u64,
}

impl Decode for Foo {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let a = r.get_u64().unwrap(); // planted: .unwrap() in a Decode impl
        Ok(Foo { a })
    }
}

fn read_frame(buf: &[u8], n: usize) -> u8 {
    buf[n] // planted: computed index in a frame parser
}

fn get_header(buf: &[u8]) -> u8 {
    if buf.is_empty() {
        panic!("empty"); // planted: panic! in a parsing fn
    }
    buf[0]
}
