// Fixture: a different tag.
const MY_STREAM: u64 = 0xCAFE;
fn build(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::from_seed_stream(seed, MY_STREAM)
}
