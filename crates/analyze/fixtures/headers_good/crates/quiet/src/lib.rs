//! Fixture library crate with the full header set.
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub fn noop() {}
