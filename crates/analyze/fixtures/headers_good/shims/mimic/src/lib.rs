// Fixture shim: only forbid(unsafe_code) is required of shims.
#![forbid(unsafe_code)]

pub fn print_like_the_real_crate() {}
