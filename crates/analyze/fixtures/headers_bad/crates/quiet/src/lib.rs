//! Fixture library crate missing the print-deny header (planted).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn noop() {}
