// Fixture: the same shapes written panic-free.
pub struct Foo {
    a: u64,
}

impl Decode for Foo {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let a = r.get_u64()?;
        Ok(Foo { a })
    }
}

fn read_frame(buf: &[u8], n: usize) -> Result<u8, WireError> {
    buf.get(n).copied().ok_or(WireError::Truncated)
}

fn get_header(head: &[u8; 4]) -> u8 {
    head[0] // a pure-literal index into a sized array is allowed
}

fn helper_outside_scope(v: &[u64]) -> u64 {
    // Not a parsing-shaped name: free to index (other passes' problem).
    v[v.len() - 1]
}
