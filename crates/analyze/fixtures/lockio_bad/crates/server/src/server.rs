// Fixture: socket write under a live engine guard (planted).
fn dispatch(shared: &Shared, stream: &mut TcpStream) {
    let mut engine = shared.engine.lock().unwrap();
    let reply = engine.answer();
    stream.write_all(&reply).unwrap(); // planted: I/O under the guard
}
