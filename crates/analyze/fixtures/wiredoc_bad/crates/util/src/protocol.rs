// Fixture protocol tags: REQ_PING duplicates REQ_STATS (planted).
const REQ_STATS: u8 = 0x04;
const REQ_PING: u8 = 0x04;
