// Fixture: stream tag 0xBEEF, first site.
fn build(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::from_seed_stream(seed, 0xBEEF)
}
