// Fixture: the same tag via a const (planted collision).
const MY_STREAM: u64 = 0xBEEF;
fn build(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::from_seed_stream(seed, MY_STREAM)
}
