//! Fixture self-tests for every analyzer pass.
//!
//! Each pass gets a `*_bad` fixture tree with a planted violation (the
//! pass must fire, at the right file/line, with the documented key) and
//! a `*_good` twin with the same shapes written correctly (the pass must
//! stay silent). The driver-level tests prove the allowlist suppresses
//! exactly what it names, that a stale entry is itself an error, and
//! that a malformed entry both fails and fails to suppress.

use pts_analyze::analyze_workspace;
use pts_analyze::diag::Finding;
use pts_analyze::passes;
use pts_analyze::workspace::Workspace;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture(name: &str) -> Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    Workspace::load(&root)
}

fn run_pass(pass: &str, ws: &Workspace) -> Vec<Finding> {
    let (_, run) = passes::ALL
        .iter()
        .find(|(name, _)| *name == pass)
        .unwrap_or_else(|| panic!("unknown pass {pass}"));
    run(ws)
}

fn keys(findings: &[Finding]) -> BTreeSet<String> {
    findings.iter().map(|f| f.key.clone()).collect()
}

fn assert_quiet(pass: &str, tree: &str) {
    let out = run_pass(pass, &fixture(tree));
    assert!(
        out.is_empty(),
        "{pass} should stay quiet on {tree}, got: {:#?}",
        out
    );
}

// ---------------------------------------------------------------- decode

#[test]
fn decode_pass_fires_on_planted_panics() {
    let out = run_pass("decode-panic", &fixture("decode_bad"));
    let got = keys(&out);
    let want: BTreeSet<String> = [
        "crates/codec/src/wire.rs:impl Decode for Foo:unwrap",
        "crates/codec/src/wire.rs:fn read_frame:index:buf",
        "crates/codec/src/wire.rs:fn get_header:panic",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(got, want, "full findings: {out:#?}");
    // Line numbers point at the planted tokens, not the enclosing items.
    let by_key = |k: &str| out.iter().find(|f| f.key.ends_with(k)).unwrap();
    assert_eq!(by_key(":unwrap").line, 8);
    assert_eq!(by_key(":index:buf").line, 14);
    assert_eq!(by_key(":panic").line, 19);
}

#[test]
fn decode_pass_accepts_panic_free_twin() {
    assert_quiet("decode-panic", "decode_good");
}

// --------------------------------------------------------------- wiredoc

#[test]
fn wiredoc_pass_fires_on_planted_drift() {
    let out = run_pass("wire-doc", &fixture("wiredoc_bad"));
    let got = keys(&out);
    let want: BTreeSet<String> = [
        "dup:REQ_0x04",       // REQ_STATS and REQ_PING share a tag
        "doc:version",        // PROTOCOL.md quotes 0x03, code says 2
        "table:request:0x09", // ghost row not backed by any REQ_ const
        "hex:1",              // worked example's checksum tail flipped
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(got, want, "full findings: {out:#?}");
    let version = out.iter().find(|f| f.key == "doc:version").unwrap();
    assert_eq!(version.file, "PROTOCOL.md");
    assert_eq!(version.line, 6);
}

#[test]
fn wiredoc_pass_accepts_consistent_twin() {
    assert_quiet("wire-doc", "wiredoc_good");
}

// --------------------------------------------------------------- metrics

#[test]
fn metrics_pass_fires_on_planted_inventory_drift() {
    let out = run_pass("metrics-doc", &fixture("metrics_bad"));
    let got = keys(&out);
    for want in [
        "name:NotDotted",                  // not dotted lowercase
        "owner:server.stolen.metric",      // server.* registered in engine
        "inventory:engine.ingest.batches", // documented, never registered
        "inventory:engine.secret.series",  // registered, never documented
        "inventory-kind:engine.draw.ns",   // counter in code, histogram in doc
    ] {
        assert!(got.contains(want), "missing {want}; got {got:#?}");
    }
}

#[test]
fn metrics_pass_accepts_matching_inventory() {
    assert_quiet("metrics-doc", "metrics_good");
}

// ---------------------------------------------------------------- lockio

#[test]
fn lockio_pass_fires_on_io_under_guard() {
    let out = run_pass("lock-io", &fixture("lockio_bad"));
    assert_eq!(out.len(), 1, "full findings: {out:#?}");
    assert_eq!(out[0].key, "crates/server/src/server.rs:dispatch:write_all");
    assert_eq!(out[0].line, 5);
}

#[test]
fn lockio_pass_accepts_scoped_and_dropped_guards() {
    assert_quiet("lock-io", "lockio_good");
}

// --------------------------------------------------------------- headers

#[test]
fn headers_pass_fires_on_missing_print_deny() {
    let out = run_pass("lint-headers", &fixture("headers_bad"));
    assert_eq!(out.len(), 1, "full findings: {out:#?}");
    assert_eq!(out[0].key, "deny-print:quiet");
    assert_eq!(out[0].file, "crates/quiet/src/lib.rs");
}

#[test]
fn headers_pass_accepts_full_headers_and_exempts_shims() {
    // The good tree includes a shim lib.rs carrying only
    // forbid(unsafe_code); shims are exempt from the other two headers.
    assert_quiet("lint-headers", "headers_good");
}

// ---------------------------------------------------------------- rngtag

#[test]
fn rngtag_pass_fires_on_shared_stream_tag() {
    let out = run_pass("lint-rng", &fixture("rngtag_bad"));
    assert_eq!(out.len(), 1, "full findings: {out:#?}");
    assert_eq!(out[0].key, "tag:0xbeef");
    // The finding lands on the later site (file order), and resolving
    // the tag through a local const still counts.
    assert_eq!(out[0].file, "crates/b/src/two.rs");
}

#[test]
fn rngtag_pass_accepts_distinct_tags() {
    assert_quiet("lint-rng", "rngtag_good");
}

// ---------------------------------------------- allowlist + driver logic

const GOOD_ENTRY: &str = "lint-rng | tag:0xbeef | fixture twins intentionally share one stream\n";

#[test]
fn allowlist_suppresses_exactly_the_named_finding() {
    let report = analyze_workspace(&fixture("rngtag_bad"), GOOD_ENTRY, &[]);
    assert!(
        report.is_clean(),
        "denials: {:#?}",
        report.denials().collect::<Vec<_>>()
    );
    assert_eq!(report.allowlisted.len(), 1);
    assert_eq!(report.allowlisted[0].finding.key, "tag:0xbeef");
    assert!(report.allowlisted[0]
        .justification
        .contains("intentionally share"));
}

#[test]
fn stale_allowlist_entry_is_itself_a_finding() {
    let text = format!("{GOOD_ENTRY}lint-rng | tag:0xdead | covers nothing on this tree\n");
    let report = analyze_workspace(&fixture("rngtag_bad"), &text, &[]);
    assert!(!report.is_clean());
    assert_eq!(report.stale.len(), 1);
    assert_eq!(report.stale[0].key, "stale:lint-rng:tag:0xdead");
    // The live finding is still suppressed by the entry that does match.
    assert!(report.findings.is_empty());
}

#[test]
fn malformed_allowlist_entry_fails_and_does_not_suppress() {
    // Justification under the 10-character floor: the line is rejected,
    // reported under the reserved `allowlist` pass, and the finding it
    // tried to cover stays live.
    let report = analyze_workspace(
        &fixture("rngtag_bad"),
        "lint-rng | tag:0xbeef | nope\n",
        &[],
    );
    assert!(!report.is_clean());
    assert!(report
        .findings
        .iter()
        .any(|f| f.pass == "allowlist" && f.key == "line:1"));
    assert!(report.findings.iter().any(|f| f.key == "tag:0xbeef"));
}

#[test]
fn empty_tree_is_a_driver_error_not_a_clean_run() {
    let report = analyze_workspace(&fixture("no_such_tree"), "", &[]);
    assert!(!report.is_clean());
    assert_eq!(report.findings[0].key, "workspace:empty");
}
