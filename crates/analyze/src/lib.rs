//! pts-analyze — the workspace invariant analyzer.
//!
//! The reproduction's correctness contracts — decode paths never panic,
//! the wire grammar and PROTOCOL.md agree byte-for-byte, DESIGN.md's
//! metric inventory tracks the registrations, no engine lock is held
//! across socket I/O, lint headers and RNG stream tags stay disciplined
//! — were prose until this crate. `pts-analyze` walks the workspace
//! source and docs with a hand-rolled lexer (zero dependencies: the
//! sandbox has no registry, and the passes only need token streams) and
//! enforces each contract as a CI-blocking pass. See DESIGN.md §12 for
//! the pass-by-pass specification and the allowlist policy.
//!
//! Intentional violations live in `analyze-allowlist.txt`, one per line
//! with a mandatory justification; entries that stop matching anything
//! become findings themselves, so the allowlist can only shrink unless a
//! human writes down *why* it grew.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod workspace;

use allowlist::{Allowlist, ALLOWLIST_FILE};
use diag::{Finding, Report, Suppressed};
use std::path::{Path, PathBuf};
use workspace::Workspace;

/// Runs the named passes (all of them when `only` is empty) over the
/// workspace at `root` and folds the allowlist in.
pub fn analyze(root: &Path, only: &[String]) -> Report {
    let ws = Workspace::load(root);
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    analyze_workspace(&ws, &allow_text, only)
}

/// The testable core of [`analyze`]: explicit workspace and allowlist
/// text.
pub fn analyze_workspace(ws: &Workspace, allow_text: &str, only: &[String]) -> Report {
    let mut report = Report::default();
    if ws.sources.is_empty() {
        report.findings.push(Finding {
            pass: "driver",
            file: ws.root.display().to_string(),
            line: 0,
            key: "workspace:empty".into(),
            message: "no Rust sources found under crates/, shims/, or src/ — wrong --root?".into(),
        });
        return report;
    }
    let allow = Allowlist::parse(allow_text);
    // Malformed allowlist lines are findings like any other (and cannot
    // be allowlisted away, since they carry the `allowlist` pass name
    // and a parse key no entry can predict).
    report.findings.extend(allow.parse_findings.iter().cloned());
    let mut used: Vec<(String, String)> = Vec::new();
    for &(name, run) in passes::ALL {
        if !only.is_empty() && !only.iter().any(|o| o == name) {
            continue;
        }
        report.passes_run.push(name);
        for finding in run(ws) {
            match allow.lookup(&finding) {
                Some(entry) => {
                    used.push((entry.pass.clone(), entry.key.clone()));
                    report.allowlisted.push(Suppressed {
                        finding,
                        justification: entry.justification.clone(),
                    });
                }
                None => report.findings.push(finding),
            }
        }
    }
    // Stale detection only makes sense when every pass ran: a filtered
    // run must not brand the other passes' entries stale.
    if only.is_empty() {
        report.stale = allow.stale_findings(&used);
    }
    report
}

/// Ascends from `start` to the workspace root: the first directory
/// containing both `Cargo.toml` and a `crates/` directory. Lets the
/// binary run from any subdirectory, and lets `pts-bench` locate the
/// tree it was built from.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = if start.is_absolute() {
        start.to_path_buf()
    } else {
        std::env::current_dir().ok()?.join(start)
    };
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_root_is_a_driver_finding() {
        let ws = Workspace {
            root: PathBuf::from("/nonexistent-analyze-root"),
            sources: Vec::new(),
            docs: Vec::new(),
        };
        let report = analyze_workspace(&ws, "", &[]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].key, "workspace:empty");
        assert!(!report.is_clean());
    }

    #[test]
    fn find_workspace_root_ascends() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here.join("src")).expect("root");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }
}
