//! The in-repo allowlist: intentional violations, each with a written
//! justification.
//!
//! Format (`analyze-allowlist.txt` at the workspace root), one entry per
//! line:
//!
//! ```text
//! # comment
//! <pass> | <key> | <justification — at least 10 characters>
//! ```
//!
//! The key is the pass-specific stable identifier printed with every
//! finding (`(key: …)`), deliberately line-number-free so entries survive
//! unrelated edits. Entries that match nothing are *stale* and are
//! reported as findings themselves: a suppression that suppresses
//! nothing either outlived its violation (delete it) or never matched
//! (fix it) — both rot trust in the file.

use crate::diag::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The pass name the entry applies to.
    pub pass: String,
    /// The finding key it suppresses.
    pub key: String,
    /// Why the violation is intentional.
    pub justification: String,
    /// 1-based line in the allowlist file (for stale-entry findings).
    pub line: u32,
}

/// The parsed allowlist plus any findings raised while parsing it
/// (malformed lines, missing justifications).
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Well-formed entries.
    pub entries: Vec<Entry>,
    /// Findings about the allowlist file itself.
    pub parse_findings: Vec<Finding>,
}

/// Minimum length of a justification: long enough that "ok" or "fine"
/// cannot pass review by accident.
const MIN_JUSTIFICATION: usize = 10;

/// The allowlist's workspace-relative path.
pub const ALLOWLIST_FILE: &str = "analyze-allowlist.txt";

impl Allowlist {
    /// Parses allowlist text. A missing file should be passed as `""`.
    pub fn parse(text: &str) -> Allowlist {
        let mut out = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = (idx + 1) as u32;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = trimmed.splitn(3, '|').map(str::trim).collect();
            let bad = |message: String| Finding {
                pass: "allowlist",
                file: ALLOWLIST_FILE.into(),
                line,
                key: format!("line:{line}"),
                message,
            };
            if parts.len() != 3 {
                out.parse_findings.push(bad(format!(
                    "malformed entry (expected `pass | key | justification`): `{trimmed}`"
                )));
                continue;
            }
            if parts[0].is_empty() || parts[1].is_empty() {
                out.parse_findings
                    .push(bad(format!("entry has an empty pass or key: `{trimmed}`")));
                continue;
            }
            if parts[2].len() < MIN_JUSTIFICATION {
                out.parse_findings.push(bad(format!(
                    "justification too short ({} chars, need ≥ {MIN_JUSTIFICATION}): `{}`",
                    parts[2].len(),
                    parts[2]
                )));
                continue;
            }
            out.entries.push(Entry {
                pass: parts[0].to_string(),
                key: parts[1].to_string(),
                justification: parts[2].to_string(),
                line,
            });
        }
        out
    }

    /// Finds the entry suppressing a finding, if any.
    pub fn lookup(&self, finding: &Finding) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.pass == finding.pass && e.key == finding.key)
    }

    /// Stale-entry findings for every entry whose `(pass, key)` is not in
    /// `used` (a list of `(pass, key)` pairs that matched a finding).
    pub fn stale_findings(&self, used: &[(String, String)]) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|e| {
                !used
                    .iter()
                    .any(|(pass, key)| *pass == e.pass && *key == e.key)
            })
            .map(|e| Finding {
                pass: "allowlist",
                file: ALLOWLIST_FILE.into(),
                line: e.line,
                key: format!("stale:{}:{}", e.pass, e.key),
                message: format!(
                    "stale allowlist entry: no `{}` finding has key `{}` — delete the entry \
                     (or fix its key)",
                    e.pass, e.key
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let a = Allowlist::parse(
            "# header\n\nlint-rng | tag:0xd4a3 | engines must stay draw-identical\n",
        );
        assert_eq!(a.entries.len(), 1);
        assert!(a.parse_findings.is_empty());
        assert_eq!(a.entries[0].pass, "lint-rng");
        assert_eq!(a.entries[0].line, 3);
    }

    #[test]
    fn short_justifications_are_findings() {
        let a = Allowlist::parse("decode-panic | k | ok\n");
        assert!(a.entries.is_empty());
        assert_eq!(a.parse_findings.len(), 1);
        assert!(a.parse_findings[0].message.contains("too short"));
    }

    #[test]
    fn malformed_lines_are_findings() {
        let a = Allowlist::parse("just one field\n");
        assert_eq!(a.parse_findings.len(), 1);
        assert!(a.parse_findings[0].message.contains("malformed"));
    }

    #[test]
    fn stale_entries_are_reported() {
        let a = Allowlist::parse("p1 | k1 | a fine justification\np2 | k2 | also justified here\n");
        let used = vec![("p1".to_string(), "k1".to_string())];
        let stale = a.stale_findings(&used);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("k2"));
        assert_eq!(stale[0].line, 2);
    }
}
