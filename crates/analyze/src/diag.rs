//! Diagnostics: the finding record every pass emits and the report the
//! driver assembles.

/// One diagnostic from one pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced this finding (e.g. `decode-panic`).
    pub pass: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 when the finding is about a whole file,
    /// e.g. a missing lint header).
    pub line: u32,
    /// A stable key identifying the finding *site* independent of line
    /// numbers, so allowlist entries survive unrelated edits. Keys are
    /// documented per pass in DESIGN.md §12.
    pub key: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Renders the finding in compiler style: `file:line: [pass] message`.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!(
                "{}: [{}] {} (key: {})",
                self.file, self.pass, self.message, self.key
            )
        } else {
            format!(
                "{}:{}: [{}] {} (key: {})",
                self.file, self.line, self.pass, self.message, self.key
            )
        }
    }
}

/// An allowlist entry that matched a finding, with its justification —
/// reported so suppressions stay visible instead of silent.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The suppressed finding.
    pub finding: Finding,
    /// The justification string from the allowlist entry.
    pub justification: String,
}

/// The complete result of an analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by the allowlist — these fail `--deny`.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry.
    pub allowlisted: Vec<Suppressed>,
    /// Allowlist entries that matched nothing — stale suppressions are
    /// themselves findings (they hide nothing and rot the file).
    pub stale: Vec<Finding>,
    /// Names of the passes that ran, in order.
    pub passes_run: Vec<&'static str>,
}

impl Report {
    /// Whether the run is clean: no live findings and no stale entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }

    /// Every finding that fails a `--deny` run: live findings first,
    /// then stale-allowlist findings.
    pub fn denials(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().chain(self.stale.iter())
    }

    /// Renders the report as a JSON document (hand-rolled — this crate
    /// is zero-dependency by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"clean\": {},\n  \"passes\": [{}],\n",
            self.is_clean(),
            self.passes_run
                .iter()
                .map(|p| format!("\"{p}\""))
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str("  \"findings\": [");
        out.push_str(&render_findings(&self.findings));
        out.push_str("],\n  \"allowlisted\": [");
        let cells: Vec<String> = self
            .allowlisted
            .iter()
            .map(|s| {
                format!(
                    "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"key\": \"{}\", \
                     \"justification\": \"{}\"}}",
                    escape(s.finding.pass),
                    escape(&s.finding.file),
                    s.finding.line,
                    escape(&s.finding.key),
                    escape(&s.justification)
                )
            })
            .collect();
        out.push_str(&cells.join(","));
        if !cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"stale_allowlist\": [");
        out.push_str(&render_findings(&self.stale));
        out.push_str("]\n}\n");
        out
    }

    /// One-line summary suitable for bench artifacts: which invariant
    /// set the tree satisfied when the run was measured.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "clean ({} passes, {} allowlisted)",
                self.passes_run.len(),
                self.allowlisted.len()
            )
        } else {
            format!(
                "{} finding(s), {} stale allowlist entr{}",
                self.findings.len(),
                self.stale.len(),
                if self.stale.len() == 1 { "y" } else { "ies" }
            )
        }
    }
}

fn render_findings(findings: &[Finding]) -> String {
    let cells: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"key\": \"{}\", \
                 \"message\": \"{}\"}}",
                escape(f.pass),
                escape(&f.file),
                f.line,
                escape(&f.key),
                escape(&f.message)
            )
        })
        .collect();
    let mut out = cells.join(",");
    if !out.is_empty() {
        out.push_str("\n  ");
    }
    out
}

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(pass: &'static str, key: &str) -> Finding {
        Finding {
            pass,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            key: key.into(),
            message: "msg".into(),
        }
    }

    #[test]
    fn clean_report_is_clean() {
        let r = Report {
            passes_run: vec!["decode-panic"],
            ..Default::default()
        };
        assert!(r.is_clean());
        assert!(r.summary().starts_with("clean"));
        assert!(r.to_json().contains("\"clean\": true"));
    }

    #[test]
    fn stale_entries_break_cleanliness() {
        let r = Report {
            stale: vec![f("allowlist", "k")],
            ..Default::default()
        };
        assert!(!r.is_clean());
        assert_eq!(r.denials().count(), 1);
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let r = Report {
            findings: vec![f("decode-panic", "a\"b")],
            allowlisted: vec![Suppressed {
                finding: f("lint-rng", "tag:0xd4a3"),
                justification: "because \\ reasons".into(),
            }],
            stale: vec![],
            passes_run: vec!["decode-panic", "lint-rng"],
        };
        let doc = r.to_json();
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count(), "{doc}");
        assert!(doc.contains("a\\\"b"));
        assert!(doc.contains("because \\\\ reasons"));
    }
}
