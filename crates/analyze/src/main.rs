//! The `pts-analyze` command-line interface.
//!
//! ```text
//! pts-analyze [--root DIR] [--deny] [--json FILE|-] [--pass NAME]…
//! ```
//!
//! * `--root DIR` — workspace root (default: ascend from the current
//!   directory to the first `Cargo.toml` + `crates/`).
//! * `--deny` — exit 1 when any unallowlisted finding (or stale
//!   allowlist entry) remains. This is the CI mode.
//! * `--json FILE` — also write the machine-readable report (`-` for
//!   stdout, replacing the human output).
//! * `--pass NAME` — run only the named pass(es); repeatable. Filtered
//!   runs skip stale-allowlist detection (a partial run cannot judge
//!   the whole file).
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage error.

use pts_analyze::{analyze, find_workspace_root, passes};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(f) => json = Some(f),
                None => return usage("--json needs a file path (or `-`)"),
            },
            "--pass" => match args.next() {
                Some(p) => {
                    if !passes::ALL.iter().any(|&(name, _)| name == p) {
                        return usage(&format!(
                            "unknown pass `{p}` (known: {})",
                            pass_names().join(", ")
                        ));
                    }
                    only.push(p);
                }
                None => return usage("--pass needs a pass name"),
            },
            "--help" | "-h" => {
                println!(
                    "pts-analyze [--root DIR] [--deny] [--json FILE|-] [--pass NAME]...\n\
                     passes: {}",
                    pass_names().join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.or_else(|| find_workspace_root(&PathBuf::from("."))) {
        Some(r) => r,
        None => {
            eprintln!("pts-analyze: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = analyze(&root, &only);

    let json_doc = report.to_json();
    match json.as_deref() {
        Some("-") => print!("{json_doc}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json_doc) {
                eprintln!("pts-analyze: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            render_human(&report);
        }
        None => render_human(&report),
    }

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_human(report: &pts_analyze::diag::Report) {
    for f in report.denials() {
        println!("{}", f.render());
    }
    for s in &report.allowlisted {
        println!("allowlisted: {} — {}", s.finding.render(), s.justification);
    }
    println!(
        "pts-analyze: {} pass(es), {} finding(s), {} allowlisted, {} stale allowlist entr{} — {}",
        report.passes_run.len(),
        report.findings.len(),
        report.allowlisted.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
        if report.is_clean() {
            "clean"
        } else {
            "NOT clean"
        },
    );
}

fn pass_names() -> Vec<&'static str> {
    passes::ALL.iter().map(|&(name, _)| name).collect()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pts-analyze: {msg}");
    ExitCode::from(2)
}
