//! A hand-rolled Rust lexer: just enough token structure for invariant
//! passes, with zero dependencies.
//!
//! The sandbox has no crates.io access, so `syn` is off the table — and a
//! full parse is more than the passes need anyway. Every pass in this
//! crate is a *token-stream visitor*: it needs identifiers, literals,
//! punctuation, and byte-accurate line numbers, with comments and string
//! contents correctly skipped (so the word `unwrap` inside a doc comment
//! or a diagnostic message never counts as a call). That is exactly what
//! this lexer produces.
//!
//! Correctness notes, because a static analyzer that mis-lexes lies:
//!
//! * Line/block comments are skipped (block comments nest, as in Rust).
//! * String (`"…"`), raw string (`r#"…"#`), byte string, and char
//!   literals are single tokens; their contents are never re-lexed.
//! * `'a` (lifetime) and `'a'` (char) are disambiguated by lookahead.
//! * Numeric literals keep their parsed value when they fit a `u64`
//!   (hex/octal/binary/decimal, `_` separators, type suffixes), which is
//!   what lets the wire pass evaluate `1 << 26` and compare it to a
//!   documented "64 MiB".
//! * Tokens carry byte offsets, so adjacency (`<` `<` forming `<<`) is
//!   recoverable without a multi-char punctuation table.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (keywords are not distinguished).
    Ident,
    /// An integer literal (value in [`Tok::value`] when it fits a `u64`).
    Int,
    /// A float literal (or an integer with an `f32`/`f64` suffix).
    Float,
    /// A string or byte-string literal (text is the raw contents).
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// The token text: identifier name, literal contents (without quotes
    /// or prefix), or the punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// The numeric value of an [`TokKind::Int`] token, when it fits.
    pub value: Option<u64>,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// The cursor state shared by the lexing helpers.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, keeping the line count current. Multi-byte
    /// UTF-8 continuation bytes never equal `\n`, so byte-wise counting
    /// is exact.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Unterminated literals and other
/// malformed input never panic: the lexer consumes what it can and moves
/// on (the workspace it scans is rustc-accepted code, so in practice the
/// stream is exact).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let start = c.pos;
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'r' | b'b' if raw_or_byte_literal(&mut c, &mut out, start, line) => {}
            b'"' => {
                let text = lex_string(&mut c);
                out.push(tok(TokKind::Str, text, line, start, c.pos));
            }
            b'\'' => {
                lex_quote(&mut c, &mut out, start, line);
            }
            b if b.is_ascii_digit() => {
                lex_number(&mut c, &mut out, start, line);
            }
            b if is_ident_start(b) => {
                let mut text = Vec::new();
                while let Some(b) = c.peek() {
                    if !is_ident_continue(b) {
                        break;
                    }
                    text.push(b);
                    c.bump();
                }
                let text = String::from_utf8_lossy(&text).into_owned();
                out.push(tok(TokKind::Ident, text, line, start, c.pos));
            }
            other => {
                c.bump();
                out.push(tok(
                    TokKind::Punct,
                    (other as char).to_string(),
                    line,
                    start,
                    c.pos,
                ));
            }
        }
    }
    out
}

fn tok(kind: TokKind, text: String, line: u32, start: usize, end: usize) -> Tok {
    let value = if kind == TokKind::Int {
        parse_int(&text)
    } else {
        None
    };
    Tok {
        kind,
        text,
        line,
        start,
        end,
        value,
    }
}

/// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, and `b'…'`.
/// Returns false (consuming nothing) when the `r`/`b` is a plain
/// identifier start.
fn raw_or_byte_literal(c: &mut Cursor<'_>, out: &mut Vec<Tok>, start: usize, line: u32) -> bool {
    let first = c.peek().unwrap_or(0);
    // Work out the literal shape by lookahead before consuming anything.
    let (skip, hashes, quote, is_char) = {
        let mut ahead = 1usize; // past the r/b
        let mut hashes = 0usize;
        if first == b'b' && c.peek_at(ahead) == Some(b'r') {
            ahead += 1;
        }
        while c.peek_at(ahead) == Some(b'#') {
            ahead += 1;
            hashes += 1;
        }
        match c.peek_at(ahead) {
            Some(b'"') => (ahead + 1, hashes, true, false),
            Some(b'\'') if first == b'b' && hashes == 0 => (ahead + 1, 0, false, true),
            // `r#ident` (raw identifier): lex as a plain identifier below.
            Some(bb) if first == b'r' && hashes == 1 && is_ident_start(bb) => {
                for _ in 0..2 {
                    c.bump(); // consume `r#`
                }
                let mut text = Vec::new();
                while let Some(b) = c.peek() {
                    if !is_ident_continue(b) {
                        break;
                    }
                    text.push(b);
                    c.bump();
                }
                out.push(tok(
                    TokKind::Ident,
                    String::from_utf8_lossy(&text).into_owned(),
                    line,
                    start,
                    c.pos,
                ));
                return true;
            }
            _ => return false,
        }
    };
    for _ in 0..skip {
        c.bump();
    }
    if is_char {
        // b'…' byte literal: escapes allowed.
        let mut text = Vec::new();
        while let Some(b) = c.peek() {
            if b == b'\\' {
                c.bump();
                if let Some(e) = c.bump() {
                    text.push(e);
                }
                continue;
            }
            if b == b'\'' {
                c.bump();
                break;
            }
            text.push(b);
            c.bump();
        }
        out.push(tok(
            TokKind::Char,
            String::from_utf8_lossy(&text).into_owned(),
            line,
            start,
            c.pos,
        ));
        return true;
    }
    let mut text = Vec::new();
    if hashes == 0 && !quote {
        return false;
    }
    if hashes == 0 {
        // r"…" or b"…": raw strings have no escapes, but byte strings do.
        let raw = c.src.get(start) == Some(&b'r');
        while let Some(b) = c.peek() {
            if !raw && b == b'\\' {
                c.bump();
                if let Some(e) = c.bump() {
                    text.push(b'\\');
                    text.push(e);
                }
                continue;
            }
            if b == b'"' {
                c.bump();
                break;
            }
            text.push(b);
            c.bump();
        }
    } else {
        // r#"…"# with `hashes` terminating hashes: scan for `"` + hashes.
        'outer: while let Some(b) = c.bump() {
            if b == b'"' {
                let mut seen = 0usize;
                while seen < hashes {
                    if c.peek() == Some(b'#') {
                        c.bump();
                        seen += 1;
                    } else {
                        // A quote that is not the terminator: keep it.
                        text.push(b'"');
                        text.extend(std::iter::repeat_n(b'#', seen));
                        continue 'outer;
                    }
                }
                break;
            }
            text.push(b);
        }
    }
    out.push(tok(
        TokKind::Str,
        String::from_utf8_lossy(&text).into_owned(),
        line,
        start,
        c.pos,
    ));
    true
}

/// Lexes a `"`-delimited string (cursor on the opening quote), returning
/// its raw contents.
fn lex_string(c: &mut Cursor<'_>) -> String {
    c.bump(); // opening quote
    let mut text = Vec::new();
    while let Some(b) = c.peek() {
        if b == b'\\' {
            c.bump();
            if let Some(e) = c.bump() {
                text.push(b'\\');
                text.push(e);
            }
            continue;
        }
        if b == b'"' {
            c.bump();
            break;
        }
        text.push(b);
        c.bump();
    }
    String::from_utf8_lossy(&text).into_owned()
}

/// Disambiguates `'a`/`'static` (lifetime) from `'x'`/`'\n'` (char
/// literal) with the cursor on the `'`.
fn lex_quote(c: &mut Cursor<'_>, out: &mut Vec<Tok>, start: usize, line: u32) {
    c.bump(); // the opening '
    match c.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            let mut text = Vec::new();
            while let Some(b) = c.peek() {
                if b == b'\\' {
                    c.bump();
                    if let Some(e) = c.bump() {
                        text.push(b'\\');
                        text.push(e);
                    }
                    continue;
                }
                if b == b'\'' {
                    c.bump();
                    break;
                }
                text.push(b);
                c.bump();
            }
            out.push(tok(
                TokKind::Char,
                String::from_utf8_lossy(&text).into_owned(),
                line,
                start,
                c.pos,
            ));
        }
        Some(b) if is_ident_continue(b) => {
            // Could be 'x' (char) or 'x…[no quote] (lifetime). A char
            // literal is exactly one character wide; multi-byte UTF-8
            // chars need the full char width checked.
            let width = utf8_width(b);
            if c.peek_at(width) == Some(b'\'') {
                let mut text = Vec::new();
                for _ in 0..width {
                    if let Some(ch) = c.bump() {
                        text.push(ch);
                    }
                }
                c.bump(); // closing quote
                out.push(tok(
                    TokKind::Char,
                    String::from_utf8_lossy(&text).into_owned(),
                    line,
                    start,
                    c.pos,
                ));
            } else {
                let mut text = Vec::new();
                while let Some(b) = c.peek() {
                    if !is_ident_continue(b) {
                        break;
                    }
                    text.push(b);
                    c.bump();
                }
                out.push(tok(
                    TokKind::Lifetime,
                    String::from_utf8_lossy(&text).into_owned(),
                    line,
                    start,
                    c.pos,
                ));
            }
        }
        _ => {
            // A bare `'` (only in malformed input): emit as punct.
            out.push(tok(TokKind::Punct, "'".into(), line, start, c.pos));
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Lexes a numeric literal with the cursor on its first digit.
fn lex_number(c: &mut Cursor<'_>, out: &mut Vec<Tok>, start: usize, line: u32) {
    let mut text = Vec::new();
    let mut is_float = false;
    text.push(c.bump().unwrap_or(b'0'));
    let radix_prefix = text[0] == b'0'
        && matches!(
            c.peek(),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        );
    if radix_prefix {
        text.push(c.bump().unwrap_or(b'x'));
        while let Some(b) = c.peek() {
            if b.is_ascii_hexdigit() || b == b'_' {
                text.push(b);
                c.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(b) = c.peek() {
            if b.is_ascii_digit() || b == b'_' {
                text.push(b);
                c.bump();
            } else {
                break;
            }
        }
        // Fractional part: `.` followed by a digit (so `1..5` ranges and
        // `1.to_string()` method calls are untouched).
        if c.peek() == Some(b'.') && c.peek_at(1).map(|b| b.is_ascii_digit()) == Some(true) {
            is_float = true;
            text.push(c.bump().unwrap_or(b'.'));
            while let Some(b) = c.peek() {
                if b.is_ascii_digit() || b == b'_' {
                    text.push(b);
                    c.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(c.peek(), Some(b'e') | Some(b'E'))
            && matches!(
                (c.peek_at(1), c.peek_at(2)),
                (Some(d), _) if d.is_ascii_digit())
            || (matches!(c.peek(), Some(b'e') | Some(b'E'))
                && matches!(c.peek_at(1), Some(b'+') | Some(b'-'))
                && c.peek_at(2).map(|b| b.is_ascii_digit()) == Some(true))
        {
            is_float = true;
            text.push(c.bump().unwrap_or(b'e'));
            if matches!(c.peek(), Some(b'+') | Some(b'-')) {
                text.push(c.bump().unwrap_or(b'+'));
            }
            while let Some(b) = c.peek() {
                if b.is_ascii_digit() || b == b'_' {
                    text.push(b);
                    c.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`u64`, `usize`, `f64`, …) — a float suffix flips kind.
    let mut suffix = Vec::new();
    while let Some(b) = c.peek() {
        if is_ident_continue(b) {
            suffix.push(b);
            c.bump();
        } else {
            break;
        }
    }
    if suffix.first() == Some(&b'f') {
        is_float = true;
    }
    let kind = if is_float {
        TokKind::Float
    } else {
        TokKind::Int
    };
    out.push(tok(
        kind,
        String::from_utf8_lossy(&text).into_owned(),
        line,
        start,
        c.pos,
    ));
}

/// Parses a lexed integer literal's value (underscores stripped, any
/// radix prefix honored). `None` when it overflows a `u64`.
pub fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(rest) = clean.strip_prefix("0x").or(clean.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = clean.strip_prefix("0o").or(clean.strip_prefix("0O")) {
        (8, rest)
    } else if let Some(rest) = clean.strip_prefix("0b").or(clean.strip_prefix("0B")) {
        (2, rest)
    } else {
        (10, clean.as_str())
    };
    u64::from_str_radix(digits, radix).ok()
}

/// Removes every item annotated with a `test`-mentioning attribute
/// (`#[cfg(test)] mod tests { … }`, `#[test] fn …`, `#[cfg(all(test, …))]`)
/// from the token stream, so passes never report on test code. The
/// attribute tokens themselves and the item they cover are dropped.
pub fn strip_test_items(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).map(|t| t.is_punct('[')) == Some(true) {
            // Find the matching `]`, collecting attribute identifiers.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut mentions_test = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                // Skip any stacked attributes, then the item itself.
                i = skip_attributes(toks, j);
                i = skip_item(toks, i);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Advances past any `#[…]` attribute groups starting at `i`.
fn skip_attributes(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len()
        && toks[i].is_punct('#')
        && toks.get(i + 1).map(|t| t.is_punct('[')) == Some(true)
    {
        let mut depth = 1i32;
        i += 2;
        while i < toks.len() && depth > 0 {
            if toks[i].is_punct('[') {
                depth += 1;
            } else if toks[i].is_punct(']') {
                depth -= 1;
            }
            i += 1;
        }
    }
    i
}

/// Advances past one item starting at `i`: through the matching `}` of
/// its first body brace, or through a `;` reached before any brace.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    let mut delim = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if delim == 0 && t.is_punct(';') {
            return i + 1;
        }
        if t.is_punct('{') {
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        if t.is_punct('(') || t.is_punct('[') {
            delim += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            delim -= 1;
        }
        i += 1;
    }
    i
}

/// A function item located in a token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub kw: usize,
    /// Token range of the body, *excluding* the outer braces
    /// (`body.0 ..= body.1` is inside `{ … }`). Declarations without a
    /// body are not reported.
    pub body: (usize, usize),
}

/// Finds every `fn` item (free functions and methods alike) with a body.
pub fn find_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    // Scan the signature for the body `{` at delimiter
                    // depth 0 (a `;` first means a bodiless declaration).
                    let mut j = i + 2;
                    let mut delim = 0i32;
                    let mut body = None;
                    while j < toks.len() {
                        let t = &toks[j];
                        if delim == 0 && t.is_punct(';') {
                            break;
                        }
                        if t.is_punct('{') && delim == 0 {
                            // Match the braces.
                            let open = j;
                            let mut depth = 0i32;
                            while j < toks.len() {
                                if toks[j].is_punct('{') {
                                    depth += 1;
                                } else if toks[j].is_punct('}') {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                j += 1;
                            }
                            body = Some((open + 1, j.saturating_sub(1)));
                            break;
                        }
                        if t.is_punct('(') || t.is_punct('[') {
                            delim += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            delim -= 1;
                        }
                        j += 1;
                    }
                    if let Some(body) = body {
                        out.push(FnItem {
                            name: name_tok.text.clone(),
                            kw: i,
                            body,
                        });
                        i = body.1 + 1;
                        continue;
                    }
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds every `impl … <Trait> for <Type> { … }` block for the named
/// trait, returning `(type_name, body_range)` with the range excluding
/// the outer braces.
pub fn find_trait_impls(toks: &[Tok], trait_name: &str) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Optional generic parameter list.
        if toks.get(j).map(|t| t.is_punct('<')) == Some(true) {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // A path ending in the trait name, then `for`.
        let mut last_ident = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Ident {
                if t.text == "for" {
                    break;
                }
                last_ident = Some(t.text.clone());
                j += 1;
            } else if t.is_punct(':')
                || t.is_punct('<')
                || t.is_punct('>')
                || t.is_punct('\'')
                || t.kind == TokKind::Lifetime
            {
                j += 1;
            } else {
                break;
            }
        }
        if last_ident.as_deref() != Some(trait_name)
            || toks.get(j).map(|t| t.is_ident("for")) != Some(true)
        {
            i += 1;
            continue;
        }
        // The implementing type: idents up to the body brace.
        j += 1;
        let mut type_name = String::new();
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].kind == TokKind::Ident && type_name.is_empty() {
                type_name = toks[j].text.clone();
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let open = j;
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        out.push((type_name, (open + 1, j.saturating_sub(1))));
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let toks = lex(r#"
            // unwrap in a comment
            /* unwrap /* nested unwrap */ still comment */
            let s = "unwrap() inside a string";
            let r = r#and_a_raw_ident;
        "#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("and_a_raw_ident")));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn int_values_parse_across_radixes() {
        let toks = lex("const A: u64 = 0xC157; const B: u64 = 1 << 26; const C: u64 = 0b1010;");
        let ints: Vec<u64> = toks.iter().filter_map(|t| t.value).collect();
        assert_eq!(ints, vec![0xC157, 1, 26, 0b1010]);
    }

    #[test]
    fn float_method_calls_are_not_floats() {
        let toks = lex("let x = 1.max(2); let y = 1.5; let z = 1..5;");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5"]);
    }

    #[test]
    fn line_numbers_are_exact() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn test_items_are_stripped() {
        let src = r#"
            fn keep() { body(); }
            #[cfg(test)]
            mod tests {
                fn gone() { hidden(); }
            }
            #[test]
            fn also_gone() { hidden_too(); }
            fn keep2() {}
        "#;
        let toks = strip_test_items(&lex(src));
        assert!(toks.iter().any(|t| t.is_ident("keep")));
        assert!(toks.iter().any(|t| t.is_ident("keep2")));
        assert!(!toks.iter().any(|t| t.is_ident("hidden")));
        assert!(!toks.iter().any(|t| t.is_ident("hidden_too")));
    }

    #[test]
    fn fns_and_impls_are_located() {
        let src = r#"
            impl Decode for Foo {
                fn decode(r: &mut R) -> Result<Self, E> { r.get() }
            }
            fn free(x: [u8; 4]) -> u8 { x[0] }
            fn decl_only();
        "#;
        let toks = lex(src);
        let impls = find_trait_impls(&toks, "Decode");
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].0, "Foo");
        let fns = find_fns(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["decode", "free"]);
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = lex(r###"let x = r#"inner "quote" kept"# ; let y = 1;"###);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, r#"inner "quote" kept"#);
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }
}
