//! Pass `lint-rng`: top-level RNG stream tags are distinct.
//!
//! `Xoshiro256pp::from_seed_stream(seed, TAG)` partitions one master
//! seed into independent streams by tag. Two call sites sharing a tag
//! draw *the same stream* — statistically invisible in any single test,
//! and fatal to the perfect-sampling law when the colliding components
//! interact (the coordinator's node pick correlating with an engine's
//! accept/reject loop would bias the very distribution the chi-squared
//! pins certify). Tags must therefore be globally unique, and the one
//! intentional share in this tree (`ShardedEngine` and
//! `ConcurrentEngine`, which must stay draw-for-draw identical) must be
//! *visibly* intentional: allowlisted with its justification.
//!
//! Scope: `from_seed_stream` call sites outside `rng.rs` (the definition
//! site). `derive_seed(parent, i)` child streams are *not* stream tags —
//! they are scoped to their parent seed, so equal second arguments under
//! different parents are independent by construction.
//!
//! Tags are resolved from integer literals or same-file `const NAME:
//! u64 = <literal>;` definitions. A duplicate value produces **one
//! finding per extra site**, keyed `tag:0x…` — one allowlist entry
//! covers the tag, however many sites share it.

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// This pass's name.
pub const NAME: &str = "lint-rng";

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    // tag value -> first site (file, line)
    let mut seen: BTreeMap<u64, (String, u32)> = BTreeMap::new();
    for src in &ws.sources {
        if src.file_name() == "rng.rs" {
            continue;
        }
        let consts = file_consts(&src.toks);
        for i in 0..src.toks.len() {
            let t = &src.toks[i];
            if !(t.kind == TokKind::Ident && t.text == "from_seed_stream") {
                continue;
            }
            if src.toks.get(i + 1).map(|n| n.is_punct('(')) != Some(true) {
                continue;
            }
            let Some(tag) = second_arg_value(&src.toks, i + 1, &consts) else {
                continue;
            };
            match seen.get(&tag) {
                None => {
                    seen.insert(tag, (src.rel.clone(), t.line));
                }
                Some((first_file, first_line)) => {
                    out.push(Finding {
                        pass: NAME,
                        file: src.rel.clone(),
                        line: t.line,
                        key: format!("tag:{tag:#x}"),
                        message: format!(
                            "RNG stream tag {tag:#x} is also used at {first_file}:{first_line} — \
                             tags must be unique or the streams are identical"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// `const NAME: <ty> = <int literal>;` definitions in this file.
fn file_consts(toks: &[Tok]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("const") {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident {
                    // Find `=` then a single Int then `;` within a short
                    // window (type annotations are 1–3 tokens here).
                    let window = &toks[(i + 2).min(toks.len())..(i + 8).min(toks.len())];
                    for w in 0..window.len().saturating_sub(2) {
                        if window[w].is_punct('=')
                            && window[w + 1].kind == TokKind::Int
                            && window[w + 2].is_punct(';')
                        {
                            if let Some(v) = window[w + 1].value {
                                out.insert(name.text.clone(), v);
                            }
                            break;
                        }
                    }
                }
            }
        }
    }
    out
}

/// The second top-level argument of the call whose `(` is at `open`,
/// resolved to a value when it is a lone literal or known const.
fn second_arg_value(toks: &[Tok], open: usize, consts: &BTreeMap<String, u64>) -> Option<u64> {
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut current: Vec<&Tok> = Vec::new();
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            if depth > 1 {
                current.push(t);
            }
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
            current.push(t);
        } else if depth == 1 && t.is_punct(',') {
            if arg == 1 {
                break;
            }
            arg += 1;
            current.clear();
        } else if depth >= 1 {
            current.push(t);
        }
        i += 1;
    }
    if arg != 1 || current.len() != 1 {
        return None;
    }
    let t = current[0];
    match t.kind {
        TokKind::Int => t.value,
        TokKind::Ident => consts.get(&t.text).copied(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::workspace::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: std::path::PathBuf::new(),
            sources: files
                .into_iter()
                .map(|(rel, text)| SourceFile {
                    rel: rel.to_string(),
                    toks: lex(text),
                    text: text.to_string(),
                })
                .collect(),
            docs: Vec::new(),
        }
    }

    #[test]
    fn duplicate_tags_across_files_are_one_finding_per_extra_site() {
        let w = ws(vec![
            (
                "crates/a/src/x.rs",
                "fn f(s: u64) { let r = Xoshiro256pp::from_seed_stream(s, 0xD4A3); }",
            ),
            (
                "crates/b/src/y.rs",
                "fn g(s: u64) { let r = Xoshiro256pp::from_seed_stream(s, 0xD4A3); }",
            ),
        ]);
        let out = run(&w);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].key, "tag:0xd4a3");
        assert_eq!(out[0].file, "crates/b/src/y.rs");
    }

    #[test]
    fn const_tags_resolve_within_a_file() {
        let w = ws(vec![
            (
                "crates/a/src/x.rs",
                "const STREAM: u64 = 0xC157;\n\
                 fn f(s: u64) { let r = Xoshiro256pp::from_seed_stream(s, STREAM); }",
            ),
            (
                "crates/b/src/y.rs",
                "fn g(s: u64) { let r = Xoshiro256pp::from_seed_stream(s, 0xC157); }",
            ),
        ]);
        let out = run(&w);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].key, "tag:0xc157");
    }

    #[test]
    fn distinct_tags_and_the_definition_site_are_quiet() {
        let w = ws(vec![
            (
                "crates/util/src/rng.rs",
                "pub fn from_seed_stream(seed: u64, stream: u64) -> Self { todo() }",
            ),
            (
                "crates/a/src/x.rs",
                "fn f(s: u64) { Xoshiro256pp::from_seed_stream(s, 1); \
                 Xoshiro256pp::from_seed_stream(s, 2); }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }
}
