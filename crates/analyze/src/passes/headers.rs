//! Pass `lint-headers`: every library crate root carries the workspace's
//! protective lint headers.
//!
//! Three inner attributes are the floor for library code here:
//!
//! * `#![forbid(unsafe_code)]` — the whole reproduction is safe Rust;
//!   `forbid` (not `deny`) so no module can quietly opt back in.
//! * `#![deny(clippy::print_stdout, clippy::print_stderr)]` — the
//!   never-print rule (DESIGN.md S37): libraries record events and
//!   metrics, they do not write to a terminal they don't own. Binaries
//!   (`src/bin/**`, `src/main.rs`) own their output and are exempt, as
//!   are `examples/`, and a module may locally `allow` with a comment
//!   when output *is* the product (the bench progress reporter).
//! * `#![warn(missing_docs)]` — public API stays documented.
//!
//! Shim crates (`shims/*`) mirror external crates' APIs and only need
//! `#![forbid(unsafe_code)]`: their print behavior imitates the real
//! crate (criterion prints measurement lines by design).

use crate::diag::Finding;
use crate::workspace::Workspace;

/// This pass's name.
pub const NAME: &str = "lint-headers";

const FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";
const DENY_PRINT: &str = "#![deny(clippy::print_stdout, clippy::print_stderr)]";
const WARN_MISSING_DOCS: &str = "#![warn(missing_docs)]";

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for src in &ws.sources {
        let is_lib = src.rel.ends_with("src/lib.rs");
        if !is_lib {
            continue;
        }
        let shim = src.rel.starts_with("shims/");
        let krate = src.crate_name();
        let mut require = vec![("forbid-unsafe", FORBID_UNSAFE)];
        if !shim {
            require.push(("deny-print", DENY_PRINT));
            require.push(("warn-missing-docs", WARN_MISSING_DOCS));
        }
        for (slug, header) in require {
            if !src.text.contains(header) {
                out.push(Finding {
                    pass: NAME,
                    file: src.rel.clone(),
                    line: 0,
                    key: format!("{slug}:{krate}"),
                    message: format!("library crate `{krate}` is missing the `{header}` header"),
                });
            }
        }
    }
    out
}
