//! Pass `lock-io`: no `MutexGuard` live across socket I/O in the
//! service crates.
//!
//! The server runs one handler thread per connection over **one shared
//! engine `Mutex`**; the coordinator serializes node conversations the
//! same way. A guard held across a socket read or write couples every
//! other connection's latency to one peer's network behavior — a slow
//! client becomes a whole-server stall. The discipline (DESIGN.md §10)
//! is: lock, compute, unlock, *then* talk to the network.
//!
//! The pass walks every function body in `crates/server/src` and
//! `crates/cluster/src`, tracks `.lock(` acquisitions (the binding's
//! name and brace depth, via the enclosing `let`; an unbound temporary
//! dies at its statement's `;`), releases them on scope exit or an
//! explicit `drop(guard)`, and flags any call to an I/O-shaped callee
//! while a guard is live.
//!
//! This is a token-level approximation, deliberately conservative in
//! what it *tracks* (only `.lock(` — `RwLock` would be `read`/`write`,
//! added when the tree grows one) and in what it *flags* (a fixed list
//! of I/O callee names, not alias analysis). False positives go to the
//! allowlist with a justification; the value is that the *next* refactor
//! that threads a socket call under the engine lock fails CI instead of
//! shipping a tail-latency cliff.

use crate::diag::Finding;
use crate::lexer::{find_fns, Tok, TokKind};
use crate::workspace::Workspace;

/// This pass's name.
pub const NAME: &str = "lock-io";

/// Callee names that perform socket (or socket-shaped) I/O.
const IO_FNS: [&str; 12] = [
    "write_all",
    "read_exact",
    "read_to_end",
    "flush",
    "write_response",
    "write_request",
    "read_response",
    "read_request",
    "read_frame",
    "read_frame_lenient",
    "connect",
    "shutdown_socket",
];

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for src in ws.sources.iter().filter(|s| {
        s.rel.starts_with("crates/server/src") || s.rel.starts_with("crates/cluster/src")
    }) {
        for f in find_fns(&src.toks) {
            scan_fn(&src.toks, f.body.0, f.body.1, &f.name, &src.rel, &mut out);
        }
    }
    out
}

struct Guard {
    name: Option<String>,
    depth: i32,
    line: u32,
}

fn scan_fn(toks: &[Tok], lo: usize, hi: usize, fn_name: &str, file: &str, out: &mut Vec<Finding>) {
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    // The token index of the current statement's `let`, if the statement
    // started with one (reset at `;` and block boundaries).
    let mut stmt_let: Option<usize> = None;
    let mut i = lo;
    while i <= hi && i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_let = None;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            stmt_let = None;
        } else if t.is_punct(';') {
            guards.retain(|g| !(g.name.is_none() && g.depth == depth));
            stmt_let = None;
        } else if t.is_ident("let") {
            stmt_let = Some(i);
        } else if t.kind == TokKind::Ident
            && t.text == "lock"
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
        {
            let name = if chain_ends_statement(toks, i + 1) {
                stmt_let.and_then(|l| binding_name(toks, l, i))
            } else {
                // `let n = x.lock().unwrap().len();` — the guard is a
                // temporary inside the chain, not what `n` binds.
                None
            };
            guards.push(Guard {
                name,
                depth,
                line: t.line,
            });
        } else if t.is_ident("drop") && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true) {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                }
            }
        } else if t.kind == TokKind::Ident
            && IO_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
        {
            if let Some(g) = guards.last() {
                let held = match &g.name {
                    Some(n) => format!("guard `{n}` (locked on line {})", g.line),
                    None => format!("a temporary guard (locked on line {})", g.line),
                };
                out.push(Finding {
                    pass: NAME,
                    file: file.to_string(),
                    line: t.line,
                    key: format!("{file}:{fn_name}:{}", t.text),
                    message: format!(
                        "`{}` in `fn {fn_name}` performs I/O while {held} is live — release the \
                         lock before touching the socket",
                        t.text
                    ),
                });
            }
        }
        i += 1;
    }
}

/// Whether the method chain continuing at `open` (the `(` of `.lock`)
/// reaches the end of its statement through guard-preserving steps only
/// (`.unwrap()`, `.expect("…")`, `?`). A further method call consumes
/// the guard as a temporary instead of binding it.
fn chain_ends_statement(toks: &[Tok], open: usize) -> bool {
    // Skip the balanced `(…)` of the lock call.
    let mut i = open;
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        }
        i += 1;
    }
    loop {
        let Some(t) = toks.get(i) else { return true };
        if t.is_punct('?') {
            i += 1;
            continue;
        }
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .map(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                == Some(true)
            && toks.get(i + 2).map(|n| n.is_punct('(')) == Some(true)
        {
            // Skip `.unwrap(…)` / `.expect(…)`.
            i += 2;
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct('(') {
                    depth += 1;
                } else if toks[i].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        // `;`, `else`, `)` (call argument), `}` — the chain is over and
        // nothing consumed the guard: it is what the statement binds.
        // Any other `.method(` consumes it.
        return !t.is_punct('.');
    }
}

/// The bound name of `let <pat> = …` starting at `let_idx`, for a
/// statement whose `=` precedes `lock_idx`: the last plain identifier
/// before the `=` that is not a pattern keyword or constructor.
fn binding_name(toks: &[Tok], let_idx: usize, lock_idx: usize) -> Option<String> {
    let mut name = None;
    for t in &toks[let_idx + 1..lock_idx] {
        if t.is_punct('=') {
            break;
        }
        if t.kind == TokKind::Ident
            && !matches!(
                t.text.as_str(),
                "mut" | "ref" | "Ok" | "Some" | "Err" | "else"
            )
        {
            name = Some(t.text.clone());
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{find_fns, lex};

    fn scan(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let mut out = Vec::new();
        for f in find_fns(&toks) {
            scan_fn(&toks, f.body.0, f.body.1, &f.name, "f.rs", &mut out);
        }
        out
    }

    #[test]
    fn io_under_a_live_guard_is_flagged() {
        let out = scan(
            "fn bad(s: &Shared, w: &mut W) {\n\
                 let mut engine = s.engine.lock().unwrap();\n\
                 engine.apply();\n\
                 w.write_all(b\"x\").unwrap();\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("guard `engine`"));
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let out = scan(
            "fn good(s: &Shared, w: &mut W) {\n\
                 { let g = s.engine.lock().unwrap(); g.apply(); }\n\
                 w.write_all(b\"x\").unwrap();\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let out = scan(
            "fn good(s: &Shared, w: &mut W) {\n\
                 let g = s.engine.lock().unwrap();\n\
                 let n = g.len();\n\
                 drop(g);\n\
                 w.write_all(b\"x\").unwrap();\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn let_else_binding_is_tracked() {
        let out = scan(
            "fn bad(s: &Shared, w: &mut W) {\n\
                 let Ok(mut engine) = s.engine.lock() else { return };\n\
                 w.write_response(engine.answer());\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("guard `engine`"));
    }

    #[test]
    fn temporary_guard_dies_at_the_statement() {
        let out = scan(
            "fn good(s: &Shared, w: &mut W) {\n\
                 let n = s.engine.lock().unwrap().len();\n\
                 w.write_all(b\"x\").unwrap();\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn io_after_a_same_statement_lock_is_flagged() {
        let out = scan(
            "fn bad(s: &Shared, w: &mut W) {\n\
                 let g = s.engine.lock().unwrap();\n\
                 if g.ready() { w.flush().unwrap(); }\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].key.ends_with(":flush"));
    }
}
