//! The invariant passes. Each is a pure function from a loaded
//! [`Workspace`] to findings, so passes
//! compose, run in any subset (`--pass`), and self-test against fixture
//! trees without touching the real one.

pub mod decode;
pub mod headers;
pub mod lockio;
pub mod metrics;
pub mod rngtag;
pub mod wiredoc;

use crate::diag::Finding;
use crate::workspace::Workspace;

/// A pass: a name and an entry point.
pub type Pass = (&'static str, fn(&Workspace) -> Vec<Finding>);

/// Every pass, in the order they run and report.
pub const ALL: &[Pass] = &[
    (decode::NAME, decode::run),
    (wiredoc::NAME, wiredoc::run),
    (metrics::NAME, metrics::run),
    (lockio::NAME, lockio::run),
    (headers::NAME, headers::run),
    (rngtag::NAME, rngtag::run),
];
