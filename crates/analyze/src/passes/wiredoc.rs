//! Pass `wire-doc`: the wire grammar and PROTOCOL.md cannot drift apart.
//!
//! PROTOCOL.md is normative together with `wire.rs`/`protocol.rs` — a
//! third party implements from the document, so a stale byte there is an
//! interoperability bug. This pass extracts the authoritative values
//! *from the code* (a tiny const-expression evaluator over the token
//! stream — `1 << 26` and `MAX_FRAME_BYTES - 11` resolve, no rustc
//! needed) and checks, in code and document both:
//!
//! * **Tag uniqueness** — `KIND_*`, `REQ_*`, `RESP_*` constants and
//!   `ErrorCode` discriminants are distinct within their family.
//! * **Normative tables** — the request-tag, response-tag, and
//!   error-code tables in PROTOCOL.md are set-equal to the code's
//!   constants (both directions: a documented tag the code lacks is as
//!   much drift as an undocumented one).
//! * **Quoted constants** — every PROTOCOL.md line quoting
//!   `WIRE_VERSION` as a hex byte matches the code; `kind` bytes quoted
//!   next to the words *request*/*response* match `KIND_REQUEST`/
//!   `KIND_RESPONSE`; the document renders `MAX_FRAME_BYTES` in MiB and
//!   `MAX_SAMPLE_COUNT` in digit-grouped form correctly; the FNV-1a
//!   offset/prime quoted in §1 are the ones `wire.rs` actually uses.
//! * **Worked hex examples** — every fenced block in §6 whose lines
//!   lead with hex byte pairs is decoded as a complete frame: magic,
//!   version, kind, LEB128 length vs. actual payload size, and a
//!   *recomputed* FNV-1a 64 checksum must all hold. (The annotation
//!   text after the bytes is ignored, so `fnv1a64(02 04 ‖ 04)` notes
//!   cannot confuse the parser: extraction stops at the first
//!   non-hex-pair token on each line.)

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// This pass's name.
pub const NAME: &str = "wire-doc";

/// The FNV-1a 64 offset basis (checked against both wire.rs and
/// PROTOCOL.md §1, and used to recompute worked-example checksums).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// The FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Everything extracted from wire.rs + protocol.rs.
#[derive(Default)]
struct CodeModel {
    /// `const NAME = value` for every evaluatable integer const, with
    /// the defining file and line.
    consts: BTreeMap<String, (u64, String, u32)>,
    /// The `WIRE_MAGIC` bytes.
    magic: Option<Vec<u8>>,
    /// `ErrorCode` variants in declaration order.
    error_codes: Vec<(String, u64, u32)>,
    /// All integer literal values seen in wire.rs (for the FNV check).
    wire_ints: Vec<u64>,
    /// Relative path of protocol.rs (for finding locations).
    protocol_file: String,
}

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut model = CodeModel::default();
    // wire.rs first: protocol.rs's MAX_RESTORE_BYTES refers to its own
    // file, but keeping one env across both is harmless and ordered.
    for name in ["wire.rs", "protocol.rs"] {
        for src in ws.sources.iter().filter(|s| s.file_name() == name) {
            extract(src.toks.as_slice(), &src.rel, &mut model);
            if name == "wire.rs" {
                model
                    .wire_ints
                    .extend(src.toks.iter().filter_map(|t| t.value));
            } else {
                model.protocol_file = src.rel.clone();
            }
        }
    }
    if model.consts.is_empty() {
        // No wire layer in this tree (e.g. a fixture for another pass):
        // nothing to check.
        return out;
    }
    check_uniqueness(&model, &mut out);
    check_fnv_in_code(&model, &mut out);
    if let Some(doc) = ws.doc("PROTOCOL.md") {
        check_doc(doc, &model, &mut out);
    } else {
        out.push(Finding {
            pass: NAME,
            file: "PROTOCOL.md".into(),
            line: 0,
            key: "doc:missing".into(),
            message: "PROTOCOL.md is missing but the wire layer exists — the protocol must stay \
                      documented"
                .into(),
        });
    }
    out
}

/// Extracts consts and the ErrorCode enum from one file's tokens.
fn extract(toks: &[Tok], rel: &str, model: &mut CodeModel) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("const") && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // Skip the type annotation: scan to `=` at delimiter depth 0.
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if depth == 0 && t.is_punct('=') {
                    break;
                }
                if depth == 0 && t.is_punct(';') {
                    break;
                }
                if t.is_punct('[') || t.is_punct('(') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('>') {
                    depth -= 1;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('=') {
                // Expression tokens until `;` at depth 0.
                let lo = j + 1;
                let mut k = lo;
                let mut d = 0i32;
                while k < toks.len() {
                    let t = &toks[k];
                    if d == 0 && t.is_punct(';') {
                        break;
                    }
                    if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
                        d += 1;
                    } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
                        d -= 1;
                    }
                    k += 1;
                }
                let expr = &toks[lo..k.min(toks.len())];
                if name == "WIRE_MAGIC" {
                    if let Some(s) = expr.iter().find(|t| t.kind == TokKind::Str) {
                        model.magic = Some(s.text.clone().into_bytes());
                    }
                } else if let Some(v) = eval(expr, &model.consts) {
                    model.consts.insert(name, (v, rel.to_string(), line));
                }
                i = k + 1;
                continue;
            }
        }
        if toks[i].is_ident("enum")
            && toks.get(i + 1).map(|t| t.is_ident("ErrorCode")) == Some(true)
        {
            // Parse `Variant = Int ,` pairs inside the braces.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && toks[j].kind == TokKind::Ident
                    && toks.get(j + 1).map(|t| t.is_punct('=')) == Some(true)
                {
                    if let Some(v) = toks.get(j + 2).and_then(|t| t.value) {
                        model
                            .error_codes
                            .push((toks[j].text.clone(), v, toks[j].line));
                    }
                    j += 2;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Evaluates a const expression: integer literals, previously-defined
/// const names, `<<`, `+`, `-`, `*`, parentheses. Left-associative,
/// single precedence — exactly enough for `1 << 26` and `MAX - 11`;
/// anything richer returns `None` and the const is simply not modeled.
fn eval(expr: &[Tok], env: &BTreeMap<String, (u64, String, u32)>) -> Option<u64> {
    fn operand(
        expr: &[Tok],
        i: &mut usize,
        env: &BTreeMap<String, (u64, String, u32)>,
    ) -> Option<u64> {
        let t = expr.get(*i)?;
        if t.kind == TokKind::Int {
            *i += 1;
            return t.value;
        }
        if t.kind == TokKind::Ident {
            *i += 1;
            return env.get(&t.text).map(|&(v, _, _)| v);
        }
        if t.is_punct('(') {
            // Find the matching close, evaluate the inside.
            let mut depth = 1i32;
            let open = *i;
            let mut j = open + 1;
            while j < expr.len() && depth > 0 {
                if expr[j].is_punct('(') {
                    depth += 1;
                } else if expr[j].is_punct(')') {
                    depth -= 1;
                }
                j += 1;
            }
            let v = eval(&expr[open + 1..j - 1], env)?;
            *i = j;
            return Some(v);
        }
        None
    }
    let mut i = 0usize;
    let mut acc = operand(expr, &mut i, env)?;
    while i < expr.len() {
        let op = expr.get(i)?;
        // `<<` arrives as two adjacent `<` puncts.
        if op.is_punct('<')
            && expr
                .get(i + 1)
                .map(|t| t.is_punct('<') && t.start == op.end)
                == Some(true)
        {
            i += 2;
            let rhs = operand(expr, &mut i, env)?;
            acc = acc.checked_shl(rhs as u32)?;
        } else if op.is_punct('+') {
            i += 1;
            acc = acc.checked_add(operand(expr, &mut i, env)?)?;
        } else if op.is_punct('-') {
            i += 1;
            acc = acc.checked_sub(operand(expr, &mut i, env)?)?;
        } else if op.is_punct('*') {
            i += 1;
            acc = acc.checked_mul(operand(expr, &mut i, env)?)?;
        } else {
            // A cast (`as u64`) or anything else: stop at a cast, fail on
            // the rest.
            if op.is_ident("as") {
                break;
            }
            return None;
        }
    }
    Some(acc)
}

/// Constants within one `prefix` family must have distinct values.
fn check_uniqueness(model: &CodeModel, out: &mut Vec<Finding>) {
    for family in ["KIND_", "REQ_", "RESP_"] {
        let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
        for (name, &(v, ref file, line)) in &model.consts {
            if !name.starts_with(family) {
                continue;
            }
            if let Some(first) = seen.get(&v) {
                out.push(Finding {
                    pass: NAME,
                    file: file.clone(),
                    line,
                    key: format!("dup:{family}{v:#04x}"),
                    message: format!(
                        "`{name}` and `{first}` share tag value {v:#04x} — wire tags must be \
                         unique within their family"
                    ),
                });
            } else {
                seen.insert(v, name);
            }
        }
    }
    let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
    for (name, v, line) in &model.error_codes {
        if let Some(first) = seen.get(v) {
            out.push(Finding {
                pass: NAME,
                file: model.protocol_file.clone(),
                line: *line,
                key: format!("dup:ErrorCode:{v}"),
                message: format!(
                    "`ErrorCode::{name}` and `ErrorCode::{first}` share discriminant {v}"
                ),
            });
        } else {
            seen.insert(*v, name);
        }
    }
}

/// wire.rs must actually contain the FNV offset/prime this pass (and
/// PROTOCOL.md §1) assume.
fn check_fnv_in_code(model: &CodeModel, out: &mut Vec<Finding>) {
    for (value, what) in [(FNV_OFFSET, "offset basis"), (FNV_PRIME, "prime")] {
        if !model.wire_ints.contains(&value) {
            out.push(Finding {
                pass: NAME,
                file: "crates/util/src/wire.rs".into(),
                line: 0,
                key: format!("fnv:{what}"),
                message: format!(
                    "wire.rs does not contain the FNV-1a 64 {what} {value:#x} — if the checksum \
                     changed, PROTOCOL.md §1 and this analyzer must change with it"
                ),
            });
        }
    }
}

fn get(model: &CodeModel, name: &str) -> Option<u64> {
    model.consts.get(name).map(|&(v, _, _)| v)
}

/// All document-side checks.
fn check_doc(doc: &str, model: &CodeModel, out: &mut Vec<Finding>) {
    let mut finding = |line: u32, key: String, message: String| {
        out.push(Finding {
            pass: NAME,
            file: "PROTOCOL.md".into(),
            line,
            key,
            message,
        });
    };

    // --- Quoted scalar constants, line by line -------------------------
    let version = get(model, "WIRE_VERSION");
    let kind_req = get(model, "KIND_REQUEST");
    let kind_resp = get(model, "KIND_RESPONSE");
    let mut in_code_block = false;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if line.trim_start().starts_with("```") {
            in_code_block = !in_code_block;
            continue;
        }
        if in_code_block {
            continue; // worked examples are validated as frames below
        }
        let hexes = hex_literals(line);
        if let Some(v) = version {
            if line.contains("WIRE_VERSION") && hexes.len() == 1 && hexes[0].1 != v {
                finding(
                    lineno,
                    "doc:version".into(),
                    format!(
                        "PROTOCOL.md quotes WIRE_VERSION as {:#04x} but the code says {v:#04x}",
                        hexes[0].1
                    ),
                );
            }
        }
        // `kind` bytes quoted next to the words request/response.
        let lower = line.to_lowercase();
        if lower.contains("kind") && !hexes.is_empty() {
            for (word, expect, cname) in [
                ("request", kind_req, "KIND_REQUEST"),
                ("response", kind_resp, "KIND_RESPONSE"),
            ] {
                let Some(expect) = expect else { continue };
                let Some(wpos) = lower.find(word) else {
                    continue;
                };
                // The hex literal nearest the word is the one quoting it.
                if let Some(&(_, got)) = hexes
                    .iter()
                    .min_by_key(|&&(pos, _)| (pos as i64 - wpos as i64).unsigned_abs())
                {
                    if got != expect {
                        finding(
                            lineno,
                            format!("doc:kind:{word}"),
                            format!(
                                "PROTOCOL.md quotes the {word} kind byte as {got:#04x} but \
                                 `{cname}` is {expect:#04x}"
                            ),
                        );
                    }
                }
            }
        }
        // MAX_FRAME_BYTES rendered in MiB.
        if let Some(frame) = get(model, "MAX_FRAME_BYTES") {
            if line.contains("MAX_FRAME_BYTES") && line.contains("MiB") {
                let expect = frame >> 20;
                if !line.contains(&format!("{expect} MiB")) {
                    finding(
                        lineno,
                        "doc:frame-cap".into(),
                        format!(
                            "PROTOCOL.md renders MAX_FRAME_BYTES in MiB but not as `{expect} \
                             MiB` (code value: {frame} bytes)"
                        ),
                    );
                }
            }
        }
    }

    // --- Whole-document renderings ------------------------------------
    if let Some(cap) = get(model, "MAX_SAMPLE_COUNT") {
        let grouped = group_digits(cap);
        if !doc.contains(&grouped) {
            finding(
                0,
                "doc:sample-cap".into(),
                format!(
                    "PROTOCOL.md never renders MAX_SAMPLE_COUNT as `{grouped}` — the Sample \
                     request row must state the current cap"
                ),
            );
        }
    }
    for (value, what) in [(FNV_OFFSET, "offset basis"), (FNV_PRIME, "prime")] {
        if !doc.to_lowercase().contains(&format!("{value:#x}")) {
            finding(
                0,
                format!("doc:fnv:{what}"),
                format!("PROTOCOL.md does not quote the FNV-1a 64 {what} {value:#x}"),
            );
        }
    }

    // --- Normative tag tables -----------------------------------------
    check_table(doc, model, "REQ_", "request", out);
    check_table(doc, model, "RESP_", "response", out);
    check_error_table(doc, model, out);

    // --- Worked hex examples ------------------------------------------
    check_hex_examples(doc, model, out);
}

/// `0x`-prefixed hex literals on a line, with their positions.
fn hex_literals(line: &str) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i + 2 < bytes.len() {
        if bytes[i] == b'0' && (bytes[i + 1] | 0x20) == b'x' && bytes[i + 2].is_ascii_hexdigit() {
            let start = i;
            i += 2;
            let mut v: u64 = 0;
            let mut overflow = false;
            while i < bytes.len() && (bytes[i].is_ascii_hexdigit() || bytes[i] == b'_') {
                if bytes[i] != b'_' {
                    let d = (bytes[i] as char).to_digit(16).unwrap_or(0) as u64;
                    match v.checked_mul(16).and_then(|v| v.checked_add(d)) {
                        Some(nv) => v = nv,
                        None => overflow = true,
                    }
                }
                i += 1;
            }
            if !overflow {
                out.push((start, v));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Digit-grouping with spaces, as PROTOCOL.md renders large counts
/// (`65 536`).
fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

/// Set-compares one tag table (`| tag | request |` or `| tag | response |`
/// headers) with the code's `REQ_*` / `RESP_*` family.
fn check_table(
    doc: &str,
    model: &CodeModel,
    family: &str,
    header_word: &str,
    out: &mut Vec<Finding>,
) {
    let code: BTreeMap<u64, &str> = model
        .consts
        .iter()
        .filter(|(name, _)| name.starts_with(family))
        .map(|(name, &(v, _, _))| (v, name.as_str()))
        .collect();
    if code.is_empty() {
        return;
    }
    let mut doc_tags: BTreeMap<u64, u32> = BTreeMap::new();
    let mut in_table = false;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let t = line.trim();
        if !t.starts_with('|') {
            in_table = false;
            continue;
        }
        let cells: Vec<String> = t
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').to_string())
            .collect();
        if cells.first().map(String::as_str) == Some("tag")
            && cells.get(1).map(String::as_str) == Some(header_word)
        {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let Some(first) = cells.first() else { continue };
        if let Some(stripped) = first.strip_prefix("0x").or(first.strip_prefix("0X")) {
            if let Ok(v) = u64::from_str_radix(stripped, 16) {
                doc_tags.insert(v, lineno);
            }
        }
    }
    if doc_tags.is_empty() {
        out.push(Finding {
            pass: NAME,
            file: "PROTOCOL.md".into(),
            line: 0,
            key: format!("table:{header_word}:missing"),
            message: format!(
                "PROTOCOL.md has no `| tag | {header_word} |` table, but the code defines {} \
                 `{family}*` tags",
                code.len()
            ),
        });
        return;
    }
    for (&v, &lineno) in &doc_tags {
        if !code.contains_key(&v) {
            out.push(Finding {
                pass: NAME,
                file: "PROTOCOL.md".into(),
                line: lineno,
                key: format!("table:{header_word}:{v:#04x}"),
                message: format!(
                    "PROTOCOL.md documents {header_word} tag {v:#04x}, which no `{family}*` \
                     constant defines"
                ),
            });
        }
    }
    for (&v, name) in &code {
        if !doc_tags.contains_key(&v) {
            out.push(Finding {
                pass: NAME,
                file: "PROTOCOL.md".into(),
                line: 0,
                key: format!("table:{header_word}:{v:#04x}"),
                message: format!(
                    "`{name}` ({v:#04x}) is missing from PROTOCOL.md's {header_word} tag table"
                ),
            });
        }
    }
}

/// Set-compares the `| code | name |` error table with the `ErrorCode`
/// discriminants.
fn check_error_table(doc: &str, model: &CodeModel, out: &mut Vec<Finding>) {
    if model.error_codes.is_empty() {
        return;
    }
    let code: BTreeMap<u64, &str> = model
        .error_codes
        .iter()
        .map(|(name, v, _)| (*v, name.as_str()))
        .collect();
    let mut doc_codes: BTreeMap<u64, u32> = BTreeMap::new();
    let mut in_table = false;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let t = line.trim();
        if !t.starts_with('|') {
            in_table = false;
            continue;
        }
        let cells: Vec<String> = t
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').to_string())
            .collect();
        if cells.first().map(String::as_str) == Some("code")
            && cells.get(1).map(String::as_str) == Some("name")
        {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if let Some(v) = cells.first().and_then(|c| c.parse::<u64>().ok()) {
            doc_codes.insert(v, lineno);
        }
    }
    if doc_codes.is_empty() {
        out.push(Finding {
            pass: NAME,
            file: "PROTOCOL.md".into(),
            line: 0,
            key: "table:error:missing".into(),
            message: "PROTOCOL.md has no `| code | name |` error table, but ErrorCode exists"
                .into(),
        });
        return;
    }
    for (&v, &lineno) in &doc_codes {
        if !code.contains_key(&v) {
            out.push(Finding {
                pass: NAME,
                file: "PROTOCOL.md".into(),
                line: lineno,
                key: format!("table:error:{v}"),
                message: format!("PROTOCOL.md documents error code {v}, which ErrorCode lacks"),
            });
        }
    }
    for (&v, name) in &code {
        if !doc_codes.contains_key(&v) {
            out.push(Finding {
                pass: NAME,
                file: "PROTOCOL.md".into(),
                line: 0,
                key: format!("table:error:{v}"),
                message: format!(
                    "`ErrorCode::{name}` ({v}) is missing from PROTOCOL.md's error code table"
                ),
            });
        }
    }
}

/// Decodes every hex-leading fenced block in the document as a frame and
/// verifies envelope structure and checksum.
fn check_hex_examples(doc: &str, model: &CodeModel, out: &mut Vec<Finding>) {
    let magic = model.magic.clone().unwrap_or_else(|| b"PTSW".to_vec());
    let version = get(model, "WIRE_VERSION");
    let kind_req = get(model, "KIND_REQUEST");
    let kind_resp = get(model, "KIND_RESPONSE");
    let mut block_start = 0u32;
    let mut bytes: Vec<u8> = Vec::new();
    let mut in_block = false;
    let mut block_idx = 0usize;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if line.trim_start().starts_with("```") {
            if in_block {
                // Block closed: validate if it looked like a frame dump.
                if bytes.len() >= 12 {
                    block_idx += 1;
                    validate_frame(
                        &bytes,
                        block_idx,
                        block_start,
                        &magic,
                        version,
                        kind_req,
                        kind_resp,
                        out,
                    );
                }
                bytes.clear();
                in_block = false;
            } else {
                in_block = true;
                block_start = lineno;
            }
            continue;
        }
        if in_block {
            for tok in line.split_whitespace() {
                if tok.len() == 2 && tok.chars().all(|c| c.is_ascii_hexdigit()) {
                    if let Ok(b) = u8::from_str_radix(tok, 16) {
                        bytes.push(b);
                    }
                } else {
                    break; // annotation text starts here
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn validate_frame(
    bytes: &[u8],
    block_idx: usize,
    line: u32,
    magic: &[u8],
    version: Option<u64>,
    kind_req: Option<u64>,
    kind_resp: Option<u64>,
    out: &mut Vec<Finding>,
) {
    let mut bad = |detail: String| {
        out.push(Finding {
            pass: NAME,
            file: "PROTOCOL.md".into(),
            line,
            key: format!("hex:{block_idx}"),
            message: format!("worked example #{block_idx}: {detail}"),
        });
    };
    if bytes.len() < magic.len() + 2 || &bytes[..magic.len()] != magic {
        bad(format!("does not open with the wire magic {:02X?}", magic));
        return;
    }
    let v = bytes[magic.len()] as u64;
    let k = bytes[magic.len() + 1] as u64;
    if version.is_some() && Some(v) != version {
        bad(format!(
            "version byte is {v:#04x} but WIRE_VERSION is {:#04x}",
            version.unwrap_or(0)
        ));
        return;
    }
    if Some(k) != kind_req && Some(k) != kind_resp {
        bad(format!(
            "kind byte {k:#04x} is neither KIND_REQUEST nor KIND_RESPONSE"
        ));
        return;
    }
    // LEB128 length.
    let mut pos = magic.len() + 2;
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(pos) else {
            bad("ends inside the length varint".into());
            return;
        };
        pos += 1;
        len |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            bad("length varint is overlong".into());
            return;
        }
    }
    let expect_total = pos as u64 + len + 8;
    if expect_total != bytes.len() as u64 {
        bad(format!(
            "length field says {len} payload bytes, so the frame should be {expect_total} bytes, \
             but the example has {}",
            bytes.len()
        ));
        return;
    }
    let payload = &bytes[pos..pos + len as usize];
    let mut hashed = Vec::with_capacity(payload.len() + 2);
    hashed.push(v as u8);
    hashed.push(k as u8);
    hashed.extend_from_slice(payload);
    let want = fnv1a64(&hashed);
    let got = u64::from_le_bytes(match bytes[pos + len as usize..].try_into() {
        Ok(tail) => tail,
        Err(_) => {
            bad("checksum tail is not 8 bytes".into());
            return;
        }
    });
    if want != got {
        bad(format!(
            "checksum mismatch: document says {got:#018x}, recomputed FNV-1a 64 is {want:#018x}"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_from(src: &str) -> CodeModel {
        let mut m = CodeModel::default();
        extract(&lex(src), "crates/util/src/protocol.rs", &mut m);
        m
    }

    #[test]
    fn const_expressions_evaluate() {
        let m = model_from(
            "pub const A: u64 = 1 << 26; pub const B: u64 = A - 11; const C: u8 = 0x04;",
        );
        assert_eq!(get(&m, "A"), Some(1 << 26));
        assert_eq!(get(&m, "B"), Some((1 << 26) - 11));
        assert_eq!(get(&m, "C"), Some(4));
    }

    #[test]
    fn magic_and_error_codes_extract() {
        let m = model_from(
            "pub const WIRE_MAGIC: [u8; 4] = *b\"PTSW\";\n\
             pub enum ErrorCode { Malformed = 1, TooLarge = 4, }",
        );
        assert_eq!(m.magic.as_deref(), Some(b"PTSW".as_slice()));
        assert_eq!(m.error_codes.len(), 2);
        assert_eq!(m.error_codes[1], ("TooLarge".to_string(), 4, 2));
    }

    #[test]
    fn duplicate_tags_are_findings() {
        let m = model_from("const REQ_A: u8 = 0x01; const REQ_B: u8 = 0x01;");
        let mut out = Vec::new();
        check_uniqueness(&m, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("share tag value 0x01"));
    }

    #[test]
    fn a_good_frame_validates_and_a_bad_checksum_fails() {
        // "PTSW" 02 04 01 04 + fnv1a64(02 04 04) LE — the §6.1 Stats frame.
        let mut frame = b"PTSW".to_vec();
        frame.extend_from_slice(&[0x02, 0x04, 0x01, 0x04]);
        let sum = fnv1a64(&[0x02, 0x04, 0x04]);
        frame.extend_from_slice(&sum.to_le_bytes());
        let mut out = Vec::new();
        validate_frame(&frame, 1, 10, b"PTSW", Some(2), Some(4), Some(5), &mut out);
        assert!(out.is_empty(), "{out:?}");
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        validate_frame(&frame, 1, 10, b"PTSW", Some(2), Some(4), Some(5), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("checksum mismatch"));
    }

    #[test]
    fn hex_literal_scan_finds_positions() {
        let hexes = hex_literals("| 4 | 1 | version | `0x02` (`WIRE_VERSION`) |");
        assert_eq!(hexes.len(), 1);
        assert_eq!(hexes[0].1, 2);
    }

    #[test]
    fn digit_grouping_matches_doc_style() {
        assert_eq!(group_digits(65536), "65 536");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1234567), "1 234 567");
    }
}
