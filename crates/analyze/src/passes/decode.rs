//! Pass `decode-panic`: decode paths must never panic.
//!
//! The wire layer's contract (DESIGN.md §8, PROTOCOL.md §4) is
//! adversarial-input safety: malformed bytes yield a `WireError`, never a
//! panic. A single `unwrap` in a `Decode` impl is a remote denial of
//! service, so the contract is enforced mechanically over:
//!
//! * every `impl Decode for …` block, workspace-wide, and
//! * every parsing-shaped function (`get_*`, `read_*`, `decode`,
//!   `from_wire_bytes`, `from_u8`) in a file named `wire.rs` or
//!   `protocol.rs`.
//!
//! Inside those regions the pass flags `.unwrap(` / `.expect(` calls,
//! the panic macro family (`panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, `assert*!`, `debug_assert*!`), and direct indexing
//! `x[i]` — with one carve-out: indexing with a *pure integer literal*
//! into a value is allowed, because `buf[0]` on a fixed-size array the
//! type system already sized (e.g. a `[u8; 2]` read buffer) cannot be
//! data-dependent. Anything computed must go through `get(..)`.
//!
//! Finding keys are `file:region:token` (line-free, so allowlist entries
//! survive edits above them).

use crate::diag::Finding;
use crate::lexer::{find_fns, find_trait_impls, Tok, TokKind};
use crate::workspace::Workspace;

/// This pass's name.
pub const NAME: &str = "decode-panic";

const PANIC_MACROS: [&str; 10] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Function-name shapes that mark a frame/value parser in wire.rs /
/// protocol.rs.
fn is_parsing_fn(name: &str) -> bool {
    name.starts_with("get_")
        || name.starts_with("read_")
        || name == "decode"
        || name == "from_wire_bytes"
        || name == "from_u8"
}

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for src in &ws.sources {
        // Decode impls anywhere.
        for (type_name, (lo, hi)) in find_trait_impls(&src.toks, "Decode") {
            let region = format!("impl Decode for {type_name}");
            scan_region(&src.toks, lo, hi, &src.rel, &region, &mut out);
        }
        // Parsing functions in the wire/protocol modules. Decode-impl
        // bodies are excluded so a site inside both regions reports once.
        if src.file_name() == "wire.rs" || src.file_name() == "protocol.rs" {
            let impl_ranges: Vec<(usize, usize)> = find_trait_impls(&src.toks, "Decode")
                .into_iter()
                .map(|(_, r)| r)
                .collect();
            for f in find_fns(&src.toks) {
                if !is_parsing_fn(&f.name) {
                    continue;
                }
                if impl_ranges.iter().any(|&(lo, hi)| f.kw >= lo && f.kw <= hi) {
                    continue;
                }
                let region = format!("fn {}", f.name);
                scan_region(&src.toks, f.body.0, f.body.1, &src.rel, &region, &mut out);
            }
        }
    }
    out
}

/// Scans `toks[lo..=hi]` for panic sources, emitting findings keyed on
/// `region`.
fn scan_region(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    file: &str,
    region: &str,
    out: &mut Vec<Finding>,
) {
    let mut emit = |t: &Tok, what: &str, detail: String| {
        out.push(Finding {
            pass: NAME,
            file: file.to_string(),
            line: t.line,
            key: format!("{file}:{region}:{what}"),
            message: format!(
                "{detail} in `{region}` — decode paths must return WireError, never panic"
            ),
        });
    };
    let mut i = lo;
    while i <= hi && i < toks.len() {
        let t = &toks[i];
        // `.unwrap(` / `.expect(`
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
        {
            emit(t, &t.text, format!("`.{}()` call", t.text));
        }
        // panic-family macro invocation.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true)
        {
            emit(t, &t.text, format!("`{}!` macro", t.text));
        }
        // Direct indexing: `[` after an expression tail (identifier or a
        // closing `)` / `]`), with non-literal contents.
        if t.is_punct('[')
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
        {
            // `ident [` where ident is a keyword introducing a slice
            // pattern or type position is not indexing; the keywords that
            // can directly precede `[` in those positions are few.
            let prev = &toks[i - 1];
            let keyword_prev = prev.kind == TokKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "let" | "mut" | "ref" | "in" | "return" | "break" | "else" | "match" | "impl"
                );
            if !keyword_prev {
                // Literal-only index? Find the matching `]`.
                let mut j = i + 1;
                let mut depth = 1i32;
                let mut inner = Vec::new();
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('[') {
                        depth += 1;
                    } else if toks[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    inner.push(j);
                    j += 1;
                }
                let literal_only = inner.len() == 1 && toks[inner[0]].kind == TokKind::Int;
                let empty = inner.is_empty();
                if !literal_only && !empty {
                    let subject = if prev.kind == TokKind::Ident {
                        prev.text.clone()
                    } else {
                        "expression".to_string()
                    };
                    emit(
                        t,
                        &format!("index:{subject}"),
                        format!("direct indexing of `{subject}`"),
                    );
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let mut out = Vec::new();
        scan_region(&toks, 0, toks.len() - 1, "f.rs", "fn test", &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let out = scan("let x = v.unwrap(); let y = w.expect(\"m\"); panic!(\"no\");");
        assert_eq!(out.len(), 3);
        assert!(out[0].message.contains("unwrap"));
        assert!(out[2].message.contains("panic"));
    }

    #[test]
    fn literal_index_is_allowed_computed_is_not() {
        let out = scan("let a = head[0]; let b = buf[i]; let c = rows[n + 1];");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].key.contains("index:buf"));
        assert!(out[1].key.contains("index:rows"));
    }

    #[test]
    fn attribute_and_slice_type_brackets_are_not_indexing() {
        let out = scan("fn f(x: [u8; 4], v: &mut [u8]) { g(&mut v[..2]); }");
        // `v[..2]` is real indexing (can panic) and must be flagged;
        // the type-position brackets must not be.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].key.contains("index:v"));
    }

    #[test]
    fn unwrap_without_receiver_dot_is_ignored() {
        let out = scan("fn unwrap() {} unwrap();");
        assert!(out.is_empty(), "{out:?}");
    }
}
