//! Pass `metrics-doc`: the metric inventory in DESIGN.md §11 and the
//! registrations in code are the same set, with consistent naming and
//! kinds.
//!
//! Dashboards and alerts are written against DESIGN.md's inventory table
//! (S39); a renamed or re-typed series that the table misses is an
//! outage in the monitoring, not the service. The pass extracts every
//! registration call (`counter`, `gauge`, `histogram`,
//! `counter_labeled`, `histogram_labeled` — an identifier followed by a
//! parenthesized string literal) from library sources and checks:
//!
//! * **Naming** — `crate.segment[.segment…]`: at least two lowercase
//!   dot-separated segments of `[a-z][a-z0-9_]*`, the first being the
//!   registering crate's name. A series name encodes its owner.
//! * **Kind consistency** — one name, one kind; a name registered both
//!   labeled and unlabeled (or under two label keys) is also drift: the
//!   Prometheus exposition would emit conflicting series.
//! * **Inventory diff** — the DESIGN.md `### Metric inventory` table and
//!   the registration set must match in both directions. The table's
//!   `/`-shorthand (`` `server.conn.opened` / `.closed` ``) expands by
//!   replacing as many trailing segments of the previous name as the
//!   fragment carries. A row's kind cell checks positionally when it
//!   lists one kind or exactly one kind per name; its label cell, when
//!   it names a single backticked key, must match the registrations.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// This pass's name.
pub const NAME: &str = "metrics-doc";

/// One metric registration found in code.
#[derive(Debug, Clone)]
struct Registration {
    name: String,
    kind: &'static str,
    label: Option<String>,
    file: String,
    line: u32,
    krate: String,
}

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let regs = collect_registrations(ws);
    if regs.is_empty() {
        return out; // not an instrumented tree (e.g. a fixture)
    }
    check_naming(&regs, &mut out);
    check_kind_consistency(&regs, &mut out);
    if let Some(doc) = ws.doc("DESIGN.md") {
        check_inventory(doc, &regs, &mut out);
    } else {
        out.push(Finding {
            pass: NAME,
            file: "DESIGN.md".into(),
            line: 0,
            key: "doc:missing".into(),
            message: format!(
                "DESIGN.md is missing but {} metric series are registered — the inventory must \
                 stay documented",
                regs.len()
            ),
        });
    }
    out
}

fn collect_registrations(ws: &Workspace) -> Vec<Registration> {
    let mut out = Vec::new();
    for src in &ws.sources {
        let toks = &src.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let kind = match t.text.as_str() {
                "counter" | "counter_labeled" => "counter",
                "gauge" => "gauge",
                "histogram" | "histogram_labeled" => "histogram",
                _ => continue,
            };
            let labeled = t.text.ends_with("_labeled");
            if toks.get(i + 1).map(|n| n.is_punct('(')) != Some(true) {
                continue;
            }
            let Some(name_tok) = toks.get(i + 2) else {
                continue;
            };
            if name_tok.kind != TokKind::Str {
                continue; // a declaration or a non-literal call
            }
            let label = if labeled {
                // `counter_labeled("name", "key", value)`: the key must be
                // the literal after the next comma.
                match (toks.get(i + 3), toks.get(i + 4)) {
                    (Some(c), Some(k)) if c.is_punct(',') && k.kind == TokKind::Str => {
                        Some(k.text.clone())
                    }
                    _ => continue, // not the registration-call shape
                }
            } else {
                None
            };
            out.push(Registration {
                name: name_tok.text.clone(),
                kind,
                label,
                file: src.rel.clone(),
                line: name_tok.line,
                krate: src.crate_name().to_string(),
            });
        }
    }
    out
}

fn valid_segment(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn check_naming(regs: &[Registration], out: &mut Vec<Finding>) {
    for r in regs {
        let segments: Vec<&str> = r.name.split('.').collect();
        if segments.len() < 2 || !segments.iter().all(|s| valid_segment(s)) {
            out.push(Finding {
                pass: NAME,
                file: r.file.clone(),
                line: r.line,
                key: format!("name:{}", r.name),
                message: format!(
                    "metric `{}` violates the naming convention: ≥ 2 dot-separated segments of \
                     `[a-z][a-z0-9_]*`",
                    r.name
                ),
            });
            continue;
        }
        if segments[0] != r.krate {
            out.push(Finding {
                pass: NAME,
                file: r.file.clone(),
                line: r.line,
                key: format!("owner:{}", r.name),
                message: format!(
                    "metric `{}` is registered by crate `{}` but its first segment claims `{}` — \
                     a series name encodes its owner",
                    r.name, r.krate, segments[0]
                ),
            });
        }
    }
}

fn check_kind_consistency(regs: &[Registration], out: &mut Vec<Finding>) {
    let mut by_name: BTreeMap<&str, &Registration> = BTreeMap::new();
    for r in regs {
        match by_name.get(r.name.as_str()) {
            None => {
                by_name.insert(&r.name, r);
            }
            Some(first) => {
                if first.kind != r.kind {
                    out.push(Finding {
                        pass: NAME,
                        file: r.file.clone(),
                        line: r.line,
                        key: format!("kind:{}", r.name),
                        message: format!(
                            "metric `{}` is registered as {} here but as {} in {}:{}",
                            r.name, r.kind, first.kind, first.file, first.line
                        ),
                    });
                } else if first.label != r.label {
                    out.push(Finding {
                        pass: NAME,
                        file: r.file.clone(),
                        line: r.line,
                        key: format!("label:{}", r.name),
                        message: format!(
                            "metric `{}` is registered with label {:?} here but {:?} in {}:{} — \
                             one series, one label key",
                            r.name, r.label, first.label, first.file, first.line
                        ),
                    });
                }
            }
        }
    }
}

/// One row of the documented inventory.
struct DocRow {
    names: Vec<String>,
    kinds: Vec<String>,
    label: Option<String>,
    line: u32,
}

/// Parses the first markdown table after the `### Metric inventory`
/// heading.
fn parse_inventory(doc: &str) -> Vec<DocRow> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut in_table = false;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let t = line.trim();
        if t.starts_with("###") {
            if in_table {
                break;
            }
            in_section = t.contains("Metric inventory");
            continue;
        }
        if !in_section {
            continue;
        }
        if !t.starts_with('|') {
            if in_table {
                break; // table ended
            }
            continue;
        }
        in_table = true;
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        // Skip the header and separator rows.
        if cells[0] == "metric" || cells[0].chars().all(|c| c == '-' || c == ' ') {
            continue;
        }
        // Backticked fragments of the first cell, `/`-shorthand expanded.
        let mut names = Vec::new();
        let mut prev: Option<String> = None;
        for frag in backticked(cells[0]) {
            let expanded = if let Some(rest) = frag.strip_prefix('.') {
                match &prev {
                    Some(p) => {
                        let add: Vec<&str> = rest.split('.').collect();
                        let base: Vec<&str> = p.split('.').collect();
                        if base.len() <= add.len() {
                            frag.clone()
                        } else {
                            let mut segs = base[..base.len() - add.len()].to_vec();
                            segs.extend(add);
                            segs.join(".")
                        }
                    }
                    None => frag.clone(),
                }
            } else {
                frag.clone()
            };
            prev = Some(expanded.clone());
            names.push(expanded);
        }
        let kinds: Vec<String> = cells[1]
            .split('/')
            .map(|k| k.trim().to_string())
            .filter(|k| !k.is_empty())
            .collect();
        let labels = backticked(cells[2]);
        let label = if labels.len() == 1 {
            Some(labels[0].clone())
        } else {
            None
        };
        if !names.is_empty() {
            rows.push(DocRow {
                names,
                kinds,
                label,
                line: lineno,
            });
        }
    }
    rows
}

fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

fn check_inventory(doc: &str, regs: &[Registration], out: &mut Vec<Finding>) {
    let rows = parse_inventory(doc);
    if rows.is_empty() {
        out.push(Finding {
            pass: NAME,
            file: "DESIGN.md".into(),
            line: 0,
            key: "inventory:missing".into(),
            message: "DESIGN.md has no `### Metric inventory` table, but metric series are \
                      registered"
                .into(),
        });
        return;
    }
    let by_name: BTreeMap<&str, &Registration> =
        regs.iter().map(|r| (r.name.as_str(), r)).collect();
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    for row in &rows {
        for (i, name) in row.names.iter().enumerate() {
            documented.insert(name.clone(), row.line);
            let Some(reg) = by_name.get(name.as_str()) else {
                out.push(Finding {
                    pass: NAME,
                    file: "DESIGN.md".into(),
                    line: row.line,
                    key: format!("inventory:{name}"),
                    message: format!(
                        "DESIGN.md documents metric `{name}`, which nothing registers"
                    ),
                });
                continue;
            };
            // Kind: one kind covers the row; one-kind-per-name checks
            // positionally; other shapes (e.g. 2 kinds for 3 names) are
            // not checkable from the table and are skipped.
            let expect = if row.kinds.len() == 1 {
                row.kinds.first()
            } else if row.kinds.len() == row.names.len() {
                row.kinds.get(i)
            } else {
                None
            };
            if let Some(expect) = expect {
                if expect != reg.kind {
                    out.push(Finding {
                        pass: NAME,
                        file: "DESIGN.md".into(),
                        line: row.line,
                        key: format!("inventory-kind:{name}"),
                        message: format!(
                            "DESIGN.md documents `{name}` as a {expect} but it is registered as \
                             a {} in {}:{}",
                            reg.kind, reg.file, reg.line
                        ),
                    });
                }
            }
            if let Some(label) = &row.label {
                if reg.label.as_deref() != Some(label.as_str()) {
                    out.push(Finding {
                        pass: NAME,
                        file: "DESIGN.md".into(),
                        line: row.line,
                        key: format!("inventory-label:{name}"),
                        message: format!(
                            "DESIGN.md documents `{name}` with label `{label}` but it is \
                             registered with {:?} in {}:{}",
                            reg.label, reg.file, reg.line
                        ),
                    });
                }
            }
        }
    }
    for r in regs {
        if !documented.contains_key(&r.name) {
            out.push(Finding {
                pass: NAME,
                file: r.file.clone(),
                line: r.line,
                key: format!("inventory:{}", r.name),
                message: format!(
                    "metric `{}` is registered but missing from DESIGN.md's metric inventory",
                    r.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthand_expansion_replaces_trailing_segments() {
        let rows = parse_inventory(
            "### Metric inventory (S39)\n\n\
             | metric | kind | labels | meaning |\n\
             |---|---|---|---|\n\
             | `server.conn.opened` / `.closed` / `.active` | counter/gauge | | lifecycle |\n\
             | `obs.scrapes` / `obs.scrape.bytes_out` | counter | | self |\n",
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].names,
            vec![
                "server.conn.opened",
                "server.conn.closed",
                "server.conn.active"
            ]
        );
        assert_eq!(rows[1].names, vec!["obs.scrapes", "obs.scrape.bytes_out"]);
    }

    #[test]
    fn naming_convention_is_enforced() {
        let regs = vec![
            Registration {
                name: "BadName".into(),
                kind: "counter",
                label: None,
                file: "crates/server/src/obs.rs".into(),
                line: 3,
                krate: "server".into(),
            },
            Registration {
                name: "engine.thing".into(),
                kind: "counter",
                label: None,
                file: "crates/server/src/obs.rs".into(),
                line: 4,
                krate: "server".into(),
            },
        ];
        let mut out = Vec::new();
        check_naming(&regs, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("naming convention"));
        assert!(out[1].message.contains("encodes its owner"));
    }

    #[test]
    fn kind_conflicts_are_findings() {
        let mk = |kind: &'static str, line: u32| Registration {
            name: "server.x".into(),
            kind,
            label: None,
            file: "f.rs".into(),
            line,
            krate: "server".into(),
        };
        let mut out = Vec::new();
        check_kind_consistency(&[mk("counter", 1), mk("histogram", 2)], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0]
            .message
            .contains("registered as histogram here but as counter"));
    }
}
