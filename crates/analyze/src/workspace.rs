//! Workspace discovery: loads the source files and documents the passes
//! visit.
//!
//! Scope rules (documented for users in DESIGN.md §12):
//!
//! * Rust sources come from `crates/*/src/**`, the root `src/**`, and
//!   `shims/*/src/**`.
//! * `target/`, `tests/`, `benches/`, `examples/`, and `fixtures/`
//!   directories are skipped entirely: integration tests and examples
//!   are allowed to `unwrap` and print, and fixtures are deliberately
//!   bad code. (`#[cfg(test)]` items inside library files are stripped
//!   at the token level instead — see `lexer::strip_test_items`.)
//! * Docs (`PROTOCOL.md`, `DESIGN.md`, `README.md`) and the allowlist
//!   are loaded as plain text.

use crate::lexer::{lex, strip_test_items, Tok};
use std::fs;
use std::path::{Path, PathBuf};

/// One loaded Rust source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Raw file text (used by header checks and doc-comment scans).
    pub text: String,
    /// Token stream with `#[cfg(test)]`/`#[test]` items stripped.
    pub toks: Vec<Tok>,
}

impl SourceFile {
    /// The file name (final path component).
    pub fn file_name(&self) -> &str {
        self.rel.rsplit('/').next().unwrap_or(&self.rel)
    }

    /// The crate directory name for files under `crates/<name>/…`,
    /// `shims/<name>/…`, or the root package for `src/…`.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel.split('/');
        match parts.next() {
            Some("crates") | Some("shims") => parts.next().unwrap_or(""),
            Some("src") => ".",
            _ => "",
        }
    }
}

/// The loaded workspace.
pub struct Workspace {
    /// Root directory the paths are relative to.
    pub root: PathBuf,
    /// All in-scope Rust sources, sorted by path.
    pub sources: Vec<SourceFile>,
    /// Documents by workspace-relative path (missing files are absent).
    pub docs: Vec<(String, String)>,
}

/// Directory components that take a subtree out of scope.
const SKIP_DIRS: [&str; 5] = ["target", "tests", "benches", "examples", "fixtures"];

/// The documents passes cross-check against code.
const DOC_FILES: [&str; 3] = ["PROTOCOL.md", "DESIGN.md", "README.md"];

impl Workspace {
    /// Loads the workspace rooted at `root`. I/O errors on individual
    /// files are skipped (a vanished file cannot hold a violation);
    /// an unreadable *root* yields an empty workspace the driver turns
    /// into a finding.
    pub fn load(root: &Path) -> Workspace {
        let mut sources = Vec::new();
        for top in ["crates", "shims"] {
            let dir = root.join(top);
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            let mut crates: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crates.sort();
            for krate in crates {
                collect_rs(&krate.join("src"), root, &mut sources);
            }
        }
        collect_rs(&root.join("src"), root, &mut sources);
        sources.sort_by(|a, b| a.rel.cmp(&b.rel));
        let docs = DOC_FILES
            .iter()
            .filter_map(|name| {
                fs::read_to_string(root.join(name))
                    .ok()
                    .map(|text| (name.to_string(), text))
            })
            .collect();
        Workspace {
            root: root.to_path_buf(),
            sources,
            docs,
        }
    }

    /// The named document's text, if present.
    pub fn doc(&self, name: &str) -> Option<&str> {
        self.docs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }

    /// Sources whose relative path starts with `prefix`.
    pub fn sources_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.sources
            .iter()
            .filter(move |s| s.rel.starts_with(prefix))
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, root, out);
        } else if path.extension().map(|e| e == "rs") == Some(true) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let toks = strip_test_items(&lex(&text));
            out.push(SourceFile { rel, text, toks });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_resolves_per_layout() {
        let f = |rel: &str| SourceFile {
            rel: rel.to_string(),
            text: String::new(),
            toks: Vec::new(),
        };
        assert_eq!(f("crates/util/src/wire.rs").crate_name(), "util");
        assert_eq!(f("shims/proptest/src/lib.rs").crate_name(), "proptest");
        assert_eq!(f("src/lib.rs").crate_name(), ".");
        assert_eq!(f("crates/util/src/wire.rs").file_name(), "wire.rs");
    }

    #[test]
    fn loads_this_workspace() {
        // The analyzer's own repo is a valid fixture: its sources and
        // docs must load, and skip rules must hold.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let ws = Workspace::load(&root);
        assert!(ws
            .sources
            .iter()
            .any(|s| s.rel == "crates/util/src/wire.rs"));
        assert!(ws.doc("PROTOCOL.md").is_some());
        assert!(
            !ws.sources.iter().any(|s| s.rel.contains("/tests/")
                || s.rel.contains("/fixtures/")
                || s.rel.contains("/examples/")),
            "out-of-scope paths leaked into the workspace"
        );
    }
}
