//! The hard distribution pair of Definition 4.1 (lower-bound experiment).
//!
//! * `α = N(0, I_n)` — a standard Gaussian vector.
//! * `β = x + C·E_{n−1}·e_i` — a Gaussian vector plus one planted spike of
//!   magnitude `C · E[‖x‖_p]` at a uniformly random coordinate.
//!
//! Theorem 4.2/4.3: distinguishing the two from a linear sketch with
//! probability 0.6 requires sketching dimension `Ω(n^{1−2/p} log n)`, and an
//! approximate L_p sampler distinguishes them by checking whether two
//! independent samples collide. Experiment E7 measures that protocol's
//! success rate as the sketch shrinks.

use crate::vector::FrequencyVector;
use pts_util::stats::ln_gamma;
use pts_util::variates::gaussian_from;
use pts_util::Xoshiro256pp;

/// `E[|g|^p]` for `g ~ N(0,1)`: `2^{p/2} · Γ((p+1)/2) / √π`.
pub fn gaussian_abs_moment(p: f64) -> f64 {
    assert!(p > 0.0, "moment order must be positive");
    ((p / 2.0) * std::f64::consts::LN_2 + ln_gamma((p + 1.0) / 2.0)
        - 0.5 * std::f64::consts::PI.ln())
    .exp()
}

/// The deterministic proxy for `E_n = E[‖x‖_p]` used when planting the
/// spike: `(n · E|g|^p)^{1/p} = Θ(n^{1/p})` (§4 notes `E_n = Θ(n^{1/p})`).
pub fn expected_lp_norm(n: usize, p: f64) -> f64 {
    ((n as f64) * gaussian_abs_moment(p)).powf(1.0 / p)
}

/// A draw from the hard pair: the real-valued vector plus, for β, the
/// planted coordinate.
#[derive(Debug, Clone)]
pub struct HardDraw {
    /// The drawn vector.
    pub values: Vec<f64>,
    /// `Some(i)` iff the draw came from β with spike at `i`.
    pub planted: Option<usize>,
}

/// Draws from `α = N(0, I_n)`.
pub fn draw_alpha(n: usize, rng: &mut Xoshiro256pp) -> HardDraw {
    HardDraw {
        values: (0..n).map(|_| gaussian_from(rng)).collect(),
        planted: None,
    }
}

/// Draws from `β`: Gaussian plus `C · E_{n−1}` planted on a uniform
/// coordinate.
pub fn draw_beta(n: usize, c_mult: f64, p: f64, rng: &mut Xoshiro256pp) -> HardDraw {
    assert!(n >= 2);
    let mut values: Vec<f64> = (0..n).map(|_| gaussian_from(rng)).collect();
    let i = rng.next_index(n);
    values[i] += c_mult * expected_lp_norm(n - 1, p);
    HardDraw {
        values,
        planted: Some(i),
    }
}

/// Quantizes a real-valued draw onto the integer grid (scale then round) so
/// the integer-stream machinery can process it. `scale` controls the
/// resolution; relative quantization error is `O(1/scale)` on unit-variance
/// entries, far below the constants in Theorem 4.3's protocol.
pub fn quantize(values: &[f64], scale: f64) -> FrequencyVector {
    assert!(scale > 0.0);
    FrequencyVector::from_values(values.iter().map(|v| (v * scale).round() as i64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_abs_moment_known_values() {
        // E|g| = sqrt(2/π); E g² = 1; E|g|³ = 2·sqrt(2/π); E g⁴ = 3.
        let root_2_pi = (2.0 / std::f64::consts::PI).sqrt();
        assert!((gaussian_abs_moment(1.0) - root_2_pi).abs() < 1e-12);
        assert!((gaussian_abs_moment(2.0) - 1.0).abs() < 1e-12);
        assert!((gaussian_abs_moment(3.0) - 2.0 * root_2_pi).abs() < 1e-12);
        assert!((gaussian_abs_moment(4.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_lp_norm_matches_simulation() {
        let (n, p) = (256usize, 4.0);
        let mut rng = Xoshiro256pp::new(17);
        let trials = 400;
        let mut norms = Vec::with_capacity(trials);
        for _ in 0..trials {
            let d = draw_alpha(n, &mut rng);
            let fp: f64 = d.values.iter().map(|v| v.abs().powf(p)).sum();
            norms.push(fp.powf(1.0 / p));
        }
        let sim = pts_util::stats::mean(&norms);
        let analytic = expected_lp_norm(n, p);
        // (E F_p)^{1/p} upper-bounds E ‖x‖_p (Jensen) but they agree to a few
        // percent at this n.
        assert!(
            (sim - analytic).abs() / analytic < 0.05,
            "sim {sim} vs analytic {analytic}"
        );
    }

    #[test]
    fn beta_spike_dominates_fp() {
        let (n, p) = (512usize, 4.0);
        let mut rng = Xoshiro256pp::new(18);
        for _ in 0..20 {
            let d = draw_beta(n, 8.0, p, &mut rng);
            let i = d.planted.unwrap();
            let fp: f64 = d.values.iter().map(|v| v.abs().powf(p)).sum();
            let share = d.values[i].abs().powf(p) / fp;
            assert!(share > 0.9, "spike share {share}");
        }
    }

    #[test]
    fn alpha_has_no_dominant_coordinate() {
        let (n, p) = (512usize, 4.0);
        let mut rng = Xoshiro256pp::new(19);
        for _ in 0..20 {
            let d = draw_alpha(n, &mut rng);
            let fp: f64 = d.values.iter().map(|v| v.abs().powf(p)).sum();
            let max_share = d
                .values
                .iter()
                .map(|v| v.abs().powf(p) / fp)
                .fold(0.0, f64::max);
            assert!(max_share < 0.9, "max share {max_share}");
            assert!(d.planted.is_none());
        }
    }

    #[test]
    fn quantize_preserves_shape() {
        let values = [0.5, -1.25, 3.0];
        let q = quantize(&values, 100.0);
        assert_eq!(q.values(), &[50, -125, 300]);
    }
}
