//! The atomic unit of the turnstile model: a signed coordinate update.

/// A single turnstile update `(i_t, Δ_t)`: coordinate `index` changes by
/// `delta ∈ {−M, …, M}` (Δ may be negative — that is what "turnstile" means).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// The coordinate being updated, in `[0, n)`.
    pub index: u64,
    /// The signed change applied to the coordinate.
    pub delta: i64,
}

impl Update {
    /// Creates an update.
    #[inline]
    pub fn new(index: u64, delta: i64) -> Self {
        Self { index, delta }
    }

    /// An insertion (`delta = +1`).
    #[inline]
    pub fn insert(index: u64) -> Self {
        Self { index, delta: 1 }
    }

    /// A deletion (`delta = −1`).
    #[inline]
    pub fn delete(index: u64) -> Self {
        Self { index, delta: -1 }
    }

    /// Whether this update is legal in the insertion-only model.
    #[inline]
    pub fn is_insertion(&self) -> bool {
        self.delta >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Update::insert(3), Update::new(3, 1));
        assert_eq!(Update::delete(3), Update::new(3, -1));
        assert!(Update::insert(0).is_insertion());
        assert!(!Update::delete(0).is_insertion());
        assert!(Update::new(1, 0).is_insertion());
    }
}
