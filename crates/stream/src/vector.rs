//! Exact ground truth: the frequency vector induced by a stream.
//!
//! Every experiment compares a sketch/sampler output against quantities
//! computed here exactly (norms, moments, G-masses, subset moments). The
//! vector is dense `i64` — experiments run at laptop-scale universes where
//! exactness matters more than memory.

use crate::update::Update;

/// The frequency vector `x ∈ Z^n` defined by `x_i = Σ_{t: i_t = i} Δ_t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyVector {
    values: Vec<i64>,
}

impl FrequencyVector {
    /// The zero vector over universe size `n`.
    pub fn zeros(n: usize) -> Self {
        Self { values: vec![0; n] }
    }

    /// Wraps explicit values.
    pub fn from_values(values: Vec<i64>) -> Self {
        Self { values }
    }

    /// Universe size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The value of coordinate `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    #[inline]
    pub fn value(&self, i: u64) -> i64 {
        self.values[i as usize]
    }

    /// All values as a slice.
    #[inline]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Applies one turnstile update.
    #[inline]
    pub fn apply(&mut self, u: Update) {
        self.values[u.index as usize] += u.delta;
    }

    /// Applies a sequence of updates.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a Update>>(&mut self, updates: I) {
        for u in updates {
            self.apply(*u);
        }
    }

    /// Iterator over `(index, value)` pairs with `value != 0`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i as u64, v))
    }

    /// `F_0 = |{i : x_i ≠ 0}|`, the number of non-zero coordinates.
    pub fn f0(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count()
    }

    /// `F_p(x) = Σ |x_i|^p`, the `p`-th frequency moment.
    pub fn fp_moment(&self, p: f64) -> f64 {
        assert!(p > 0.0, "fp_moment: p must be positive");
        self.values.iter().map(|&v| (v.abs() as f64).powf(p)).sum()
    }

    /// `‖x‖_p = F_p(x)^{1/p}`.
    pub fn lp_norm(&self, p: f64) -> f64 {
        self.fp_moment(p).powf(1.0 / p)
    }

    /// `F_2(x)` as an exact integer-backed sum (no `powf` rounding).
    pub fn f2(&self) -> f64 {
        self.values.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// `‖x‖_1` (sum of magnitudes).
    pub fn l1(&self) -> f64 {
        self.values.iter().map(|&v| v.abs() as f64).sum()
    }

    /// `max_i |x_i|`.
    pub fn linf(&self) -> i64 {
        self.values.iter().map(|&v| v.abs()).max().unwrap_or(0)
    }

    /// The per-coordinate sampling weights `|x_i|^p` (the ideal L_p law,
    /// unnormalized).
    pub fn lp_weights(&self, p: f64) -> Vec<f64> {
        self.values
            .iter()
            .map(|&v| (v.abs() as f64).powf(p))
            .collect()
    }

    /// The per-coordinate weights `G(x_i)` for an arbitrary non-negative `G`
    /// (the ideal G-sampling law, unnormalized).
    pub fn g_weights<G: Fn(f64) -> f64>(&self, g: G) -> Vec<f64> {
        self.values.iter().map(|&v| g(v as f64)).collect()
    }

    /// `Σ_i G(x_i)`.
    pub fn g_mass<G: Fn(f64) -> f64>(&self, g: G) -> f64 {
        self.values.iter().map(|&v| g(v as f64)).sum()
    }

    /// `‖x_Q‖_p^p = Σ_{i∈Q} |x_i|^p` for a query subset `Q` (Theorem 1.6).
    pub fn subset_fp(&self, q: &[u64], p: f64) -> f64 {
        q.iter()
            .map(|&i| (self.values[i as usize].abs() as f64).powf(p))
            .sum()
    }

    /// Coordinate-wise sum (turnstile linearity ground truth).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &FrequencyVector) -> FrequencyVector {
        assert_eq!(self.n(), other.n(), "dimension mismatch");
        FrequencyVector::from_values(
            self.values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Zeroes the coordinates *not* in `keep` — the RFDS "forget" operation
    /// applied at the end of the stream (§5.1).
    pub fn restricted_to(&self, keep: &[u64]) -> FrequencyVector {
        let mut out = vec![0i64; self.n()];
        for &i in keep {
            out[i as usize] = self.values[i as usize];
        }
        FrequencyVector::from_values(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[i64]) -> FrequencyVector {
        FrequencyVector::from_values(vals.to_vec())
    }

    #[test]
    fn apply_accumulates() {
        let mut x = FrequencyVector::zeros(4);
        x.apply(Update::new(1, 5));
        x.apply(Update::new(1, -2));
        x.apply(Update::new(3, -7));
        assert_eq!(x.values(), &[0, 3, 0, -7]);
    }

    #[test]
    fn moments_match_hand_computation() {
        let x = v(&[3, -4, 0, 1]);
        assert_eq!(x.f0(), 3);
        assert_eq!(x.f2(), 26.0);
        assert_eq!(x.l1(), 8.0);
        assert_eq!(x.linf(), 4);
        assert!((x.fp_moment(3.0) - (27.0 + 64.0 + 1.0)).abs() < 1e-12);
        assert!((x.lp_norm(2.0) - 26f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn lp_weights_are_magnitude_powers() {
        let x = v(&[2, -3]);
        let w = x.lp_weights(3.0);
        assert!((w[0] - 8.0).abs() < 1e-12);
        assert!((w[1] - 27.0).abs() < 1e-12);
    }

    #[test]
    fn g_mass_and_weights_agree() {
        let x = v(&[1, -2, 5]);
        let g = |z: f64| (1.0 + z.abs()).ln();
        let weights = x.g_weights(g);
        let total: f64 = weights.iter().sum();
        assert!((x.g_mass(g) - total).abs() < 1e-12);
    }

    #[test]
    fn subset_fp_sums_only_query_set() {
        let x = v(&[1, 2, 3, 4]);
        assert!((x.subset_fp(&[1, 3], 2.0) - (4.0 + 16.0)).abs() < 1e-12);
        assert_eq!(x.subset_fp(&[], 2.0), 0.0);
    }

    #[test]
    fn add_is_coordinatewise() {
        let a = v(&[1, -2, 3]);
        let b = v(&[4, 5, -6]);
        assert_eq!(a.add(&b).values(), &[5, 3, -3]);
    }

    #[test]
    fn restricted_to_zeroes_forgotten() {
        let x = v(&[9, 8, 7, 6]);
        let kept = x.restricted_to(&[0, 2]);
        assert_eq!(kept.values(), &[9, 0, 7, 0]);
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let x = v(&[0, 5, 0, -1]);
        let nz: Vec<(u64, i64)> = x.iter_nonzero().collect();
        assert_eq!(nz, vec![(1, 5), (3, -1)]);
    }
}
