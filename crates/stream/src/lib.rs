//! # pts-stream
//!
//! The turnstile streaming model: updates, materialized streams, the exact
//! frequency-vector ground truth, and the synthetic workload generators the
//! experiments run on (DESIGN.md S6–S7).
//!
//! A stream `S` of updates `(i_t, Δ_t)` induces `x_i = Σ_{t: i_t=i} Δ_t`
//! (Definition 1.1 of the paper). [`Stream::from_target`] decomposes any
//! target vector into insertion-only / turnstile / bulk update sequences so
//! the same workload can exercise every model variant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod gen;
pub mod hard;
pub mod model;
pub mod update;
pub mod vector;

pub use model::{Stream, StreamStyle};
pub use update::Update;
pub use vector::FrequencyVector;
