//! Materialized streams and the decomposition of a target vector into a
//! turnstile update sequence.
//!
//! Linear sketches are insensitive to update order and grouping, but the
//! *algorithms* must work one update at a time; representing streams
//! explicitly lets the tests assert that the streaming path and the
//! ingest-final-vector path agree (the linearity invariant of DESIGN.md §6).

use crate::update::Update;
use crate::vector::FrequencyVector;
use pts_util::Xoshiro256pp;

/// How a target vector is decomposed into updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamStyle {
    /// Only non-negative deltas, each coordinate delivered in unit steps
    /// (classic insertion-only stream). Negative targets are rejected.
    InsertionOnly,
    /// Turnstile: each coordinate is overshot by a factor and the excess is
    /// deleted again, interleaved at random — exercises cancellation.
    /// `churn` is the overshoot fraction (0.0 = direct, 1.0 = write twice
    /// the mass and delete half of it back).
    Turnstile {
        /// Extra cancelled mass as a fraction of the target magnitude.
        churn: f64,
    },
    /// One bulk update per non-zero coordinate (fast path for experiments).
    Bulk,
}

/// A finite stream over universe `[0, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stream {
    universe: usize,
    updates: Vec<Update>,
}

impl Stream {
    /// Creates a stream from explicit updates.
    ///
    /// # Panics
    /// Panics if any update addresses a coordinate outside the universe.
    pub fn new(universe: usize, updates: Vec<Update>) -> Self {
        assert!(
            updates.iter().all(|u| (u.index as usize) < universe),
            "update outside universe"
        );
        Self { universe, updates }
    }

    /// Universe size `n`.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Stream length `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the stream has no updates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The updates in order.
    #[inline]
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Iterates over the updates.
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.updates.iter()
    }

    /// Whether every update is an insertion.
    pub fn is_insertion_only(&self) -> bool {
        self.updates.iter().all(Update::is_insertion)
    }

    /// Total gross update mass `Σ_t |Δ_t|` (the paper's stream length `m`
    /// when updates are ±1).
    pub fn gross_mass(&self) -> u64 {
        self.updates.iter().map(|u| u.delta.unsigned_abs()).sum()
    }

    /// Replays the stream into the exact frequency vector.
    pub fn final_vector(&self) -> FrequencyVector {
        let mut x = FrequencyVector::zeros(self.universe);
        x.apply_all(self.iter());
        x
    }

    /// Decomposes `target` into a stream in the given style, shuffled by
    /// `rng` so coordinates interleave (linear sketches don't care, but the
    /// per-update code paths get exercised realistically).
    ///
    /// Unit-step styles cap the per-coordinate step count at `max_steps`
    /// per coordinate, switching to chunked deltas beyond it so pathological
    /// magnitudes don't explode the stream length.
    pub fn from_target(
        target: &FrequencyVector,
        style: StreamStyle,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        const MAX_STEPS: i64 = 64;
        let mut updates = Vec::new();
        let emit = |index: u64, amount: i64, updates: &mut Vec<Update>| {
            if amount == 0 {
                return;
            }
            let steps = amount.abs().min(MAX_STEPS);
            let chunk = amount / steps;
            let mut remaining = amount;
            for _ in 0..steps - 1 {
                updates.push(Update::new(index, chunk));
                remaining -= chunk;
            }
            updates.push(Update::new(index, remaining));
        };
        for (i, &v) in target.values().iter().enumerate() {
            let i = i as u64;
            match style {
                StreamStyle::InsertionOnly => {
                    assert!(v >= 0, "insertion-only stream cannot reach negative value");
                    emit(i, v, &mut updates);
                }
                StreamStyle::Turnstile { churn } => {
                    assert!((0.0..=8.0).contains(&churn), "unreasonable churn {churn}");
                    let extra = ((v.abs() as f64) * churn).round() as i64;
                    if extra > 0 {
                        let sign = if v >= 0 { 1 } else { -1 };
                        emit(i, v + sign * extra, &mut updates);
                        emit(i, -sign * extra, &mut updates);
                    } else {
                        emit(i, v, &mut updates);
                    }
                }
                StreamStyle::Bulk => {
                    if v != 0 {
                        updates.push(Update::new(i, v));
                    }
                }
            }
        }
        // Shuffle, but keep the (overshoot, cancel) pairs valid: a shuffle
        // can reorder them freely — turnstile semantics allow transiently
        // negative values, and insertion-only streams contain no deletes.
        rng.shuffle(&mut updates);
        Self::new(target.n(), updates)
    }

    /// Iterates the stream as contiguous batches of at most `batch_len`
    /// updates — the unit the engine's batched ingest consumes. The final
    /// batch may be shorter; the concatenation of all batches is exactly
    /// the stream.
    ///
    /// # Panics
    /// Panics if `batch_len == 0`.
    pub fn batches(&self, batch_len: usize) -> impl Iterator<Item = &[Update]> {
        assert!(batch_len >= 1, "batch length must be positive");
        self.updates.chunks(batch_len)
    }

    /// Splits the stream round-robin into `parts` update sequences (how a
    /// load balancer might spray one logical stream across ingest nodes).
    /// Update `t` lands in part `t mod parts`; concatenating the parts in
    /// any order reaches the same final vector (linearity).
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn split_round_robin(&self, parts: usize) -> Vec<Vec<Update>> {
        assert!(parts >= 1, "need at least one part");
        let mut out: Vec<Vec<Update>> = (0..parts)
            .map(|_| Vec::with_capacity(self.updates.len() / parts + 1))
            .collect();
        for (t, u) in self.updates.iter().enumerate() {
            out[t % parts].push(*u);
        }
        out
    }

    /// Concatenates two streams over the same universe.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn concat(&self, other: &Stream) -> Stream {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut updates = self.updates.clone();
        updates.extend_from_slice(&other.updates);
        Stream::new(self.universe, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(vals: &[i64]) -> FrequencyVector {
        FrequencyVector::from_values(vals.to_vec())
    }

    #[test]
    fn replay_reconstructs_target_all_styles() {
        let target = vec_of(&[5, -3, 0, 120, -999, 7]);
        let mut rng = Xoshiro256pp::new(1);
        for style in [
            StreamStyle::Turnstile { churn: 0.0 },
            StreamStyle::Turnstile { churn: 1.5 },
            StreamStyle::Bulk,
        ] {
            let s = Stream::from_target(&target, style, &mut rng);
            assert_eq!(s.final_vector(), target, "style {style:?}");
        }
    }

    #[test]
    fn insertion_only_replay_and_flag() {
        let target = vec_of(&[4, 0, 17, 1]);
        let mut rng = Xoshiro256pp::new(2);
        let s = Stream::from_target(&target, StreamStyle::InsertionOnly, &mut rng);
        assert!(s.is_insertion_only());
        assert_eq!(s.final_vector(), target);
    }

    #[test]
    #[should_panic(expected = "insertion-only")]
    fn insertion_only_rejects_negative_target() {
        let target = vec_of(&[-1]);
        let mut rng = Xoshiro256pp::new(3);
        let _ = Stream::from_target(&target, StreamStyle::InsertionOnly, &mut rng);
    }

    #[test]
    fn churn_inflates_gross_mass_but_not_net() {
        let target = vec_of(&[100, -100]);
        let mut rng = Xoshiro256pp::new(4);
        let direct = Stream::from_target(&target, StreamStyle::Turnstile { churn: 0.0 }, &mut rng);
        let churned = Stream::from_target(&target, StreamStyle::Turnstile { churn: 2.0 }, &mut rng);
        assert!(churned.gross_mass() > 2 * direct.gross_mass());
        assert_eq!(churned.final_vector(), target);
        assert!(!churned.is_insertion_only());
    }

    #[test]
    fn bulk_uses_one_update_per_nonzero() {
        let target = vec_of(&[0, 5, 0, -2]);
        let mut rng = Xoshiro256pp::new(5);
        let s = Stream::from_target(&target, StreamStyle::Bulk, &mut rng);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn concat_streams_add_vectors() {
        let a = vec_of(&[1, 2, 3]);
        let b = vec_of(&[10, -2, 0]);
        let mut rng = Xoshiro256pp::new(6);
        let sa = Stream::from_target(&a, StreamStyle::Bulk, &mut rng);
        let sb = Stream::from_target(&b, StreamStyle::Bulk, &mut rng);
        assert_eq!(sa.concat(&sb).final_vector(), a.add(&b));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_universe_updates() {
        let _ = Stream::new(2, vec![Update::new(5, 1)]);
    }

    #[test]
    fn batches_cover_the_stream_exactly() {
        let target = vec_of(&[3, -2, 7, 0, 5]);
        let mut rng = Xoshiro256pp::new(8);
        let s = Stream::from_target(&target, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
        for batch_len in [1usize, 3, 7, 1000] {
            let flat: Vec<Update> = s.batches(batch_len).flatten().copied().collect();
            assert_eq!(flat, s.updates(), "batch_len {batch_len}");
            assert!(s.batches(batch_len).all(|b| b.len() <= batch_len));
        }
    }

    #[test]
    fn round_robin_split_preserves_the_vector() {
        let target = vec_of(&[5, -9, 2, 0, 14, -1]);
        let mut rng = Xoshiro256pp::new(9);
        let s = Stream::from_target(&target, StreamStyle::Turnstile { churn: 0.7 }, &mut rng);
        for parts in [1usize, 3, 4] {
            let split = s.split_round_robin(parts);
            assert_eq!(split.len(), parts);
            assert_eq!(split.iter().map(Vec::len).sum::<usize>(), s.len());
            let mut x = FrequencyVector::zeros(s.universe());
            for part in &split {
                x.apply_all(part.iter());
            }
            assert_eq!(x, target, "parts {parts}");
        }
    }

    #[test]
    fn chunked_emission_caps_stream_length() {
        // A coordinate of magnitude 10^6 must not emit 10^6 updates.
        let target = vec_of(&[1_000_000]);
        let mut rng = Xoshiro256pp::new(7);
        let s = Stream::from_target(&target, StreamStyle::Turnstile { churn: 0.0 }, &mut rng);
        assert!(s.len() <= 64);
        assert_eq!(s.final_vector(), target);
    }
}
