//! Workload generators.
//!
//! Every experiment in DESIGN.md §5 names one of these synthetic workloads.
//! All generators are deterministic in their seed and return exact
//! [`FrequencyVector`]s; `Stream::from_target` turns them into update
//! sequences in the desired stream style.

use crate::model::{Stream, StreamStyle};
use crate::vector::FrequencyVector;
use pts_util::Xoshiro256pp;

/// Zipf-distributed magnitudes: the rank-`r` coordinate has magnitude
/// `round(top / r^s)` (minimum 1), ranks assigned to random indices, random
/// signs. The classic skewed frequency workload.
///
/// # Panics
/// Panics if `n == 0` or `top < 1`.
pub fn zipf_vector(n: usize, s: f64, top: i64, seed: u64) -> FrequencyVector {
    assert!(n > 0, "empty universe");
    assert!(top >= 1, "top magnitude must be >= 1");
    let mut rng = Xoshiro256pp::new(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut values = vec![0i64; n];
    for (rank, &idx) in perm.iter().enumerate() {
        let mag = ((top as f64) / ((rank + 1) as f64).powf(s)).round() as i64;
        values[idx] = rng.next_sign() * mag.max(1);
    }
    FrequencyVector::from_values(values)
}

/// Uniform magnitudes in `[1, max_mag]` with random signs on every
/// coordinate (a flat, heavy-support workload).
pub fn uniform_vector(n: usize, max_mag: i64, seed: u64) -> FrequencyVector {
    assert!(n > 0 && max_mag >= 1);
    let mut rng = Xoshiro256pp::new(seed);
    let values = (0..n)
        .map(|_| rng.next_sign() * (1 + rng.next_below(max_mag as u64) as i64))
        .collect();
    FrequencyVector::from_values(values)
}

/// `n_heavy` planted heavy coordinates of magnitude `heavy` on a noise floor
/// of magnitude ≤ `noise` — the regime where L_p sampling for large `p`
/// should concentrate on the planted set.
pub fn planted_vector(
    n: usize,
    n_heavy: usize,
    heavy: i64,
    noise: i64,
    seed: u64,
) -> FrequencyVector {
    assert!(n_heavy <= n, "more heavy coordinates than universe");
    assert!(heavy > noise, "heavy magnitude must exceed the noise floor");
    let mut rng = Xoshiro256pp::new(seed);
    let mut values: Vec<i64> = (0..n)
        .map(|_| {
            if noise == 0 {
                0
            } else {
                rng.next_sign() * rng.next_below(noise as u64 + 1) as i64
            }
        })
        .collect();
    let heavy_at = rng.sample_indices(n, n_heavy);
    for &i in &heavy_at {
        values[i] = rng.next_sign() * heavy;
    }
    FrequencyVector::from_values(values)
}

/// The adversarial instance from §3's motivation of duplication:
/// `x = (factor·n, 1, 1, …, 1)` — one overwhelming coordinate whose
/// conditional failure probability exposes non-duplicated samplers.
pub fn adversarial_vector(n: usize, factor: i64) -> FrequencyVector {
    assert!(n >= 2);
    let mut values = vec![1i64; n];
    values[0] = factor * n as i64;
    FrequencyVector::from_values(values)
}

/// Geometric ladder `(base^0, base^1, …)` truncated at `n` coordinates, with
/// alternating signs — a workload with mass at every scale, useful for the
/// non-scale-invariant polynomial sampler (E8).
pub fn ladder_vector(n: usize, base: f64, seed: u64) -> FrequencyVector {
    assert!(n > 0 && base > 1.0);
    let mut rng = Xoshiro256pp::new(seed);
    let values = (0..n)
        .map(|i| {
            let mag = base.powi((i % 24) as i32).round() as i64;
            rng.next_sign() * mag.max(1)
        })
        .collect();
    FrequencyVector::from_values(values)
}

/// Splits the universe into a kept query set `Q` and a forgotten complement
/// for the RFDS workload (§5.1): `frac_kept` of the coordinates are kept.
pub fn rfds_split(n: usize, frac_kept: f64, seed: u64) -> (Vec<u64>, Vec<u64>) {
    assert!((0.0..=1.0).contains(&frac_kept));
    let mut rng = Xoshiro256pp::new(seed);
    let k = ((n as f64) * frac_kept).round() as usize;
    let kept: Vec<u64> = rng
        .sample_indices(n, k)
        .into_iter()
        .map(|i| i as u64)
        .collect();
    let kept_set: std::collections::HashSet<u64> = kept.iter().copied().collect();
    let forgotten = (0..n as u64).filter(|i| !kept_set.contains(i)).collect();
    (kept, forgotten)
}

/// A named workload bundle used by the experiment harness.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in experiment tables.
    pub name: &'static str,
    /// The target vector.
    pub vector: FrequencyVector,
}

impl Workload {
    /// The standard battery of workloads used across experiments
    /// (T1, E1, E4, E8, …).
    pub fn standard_battery(n: usize, seed: u64) -> Vec<Workload> {
        vec![
            Workload {
                name: "zipf(1.1)",
                vector: zipf_vector(n, 1.1, 1000, pts_util::derive_seed(seed, 1)),
            },
            Workload {
                name: "uniform",
                vector: uniform_vector(n, 50, pts_util::derive_seed(seed, 2)),
            },
            Workload {
                name: "planted",
                vector: planted_vector(n, 3, 500, 10, pts_util::derive_seed(seed, 3)),
            },
            Workload {
                name: "adversarial",
                vector: adversarial_vector(n, 100),
            },
        ]
    }

    /// Materializes the workload as a turnstile stream with moderate churn.
    pub fn to_stream(&self, seed: u64) -> Stream {
        let mut rng = Xoshiro256pp::new(pts_util::derive_seed(seed, 0xC0FFEE));
        Stream::from_target(
            &self.vector,
            StreamStyle::Turnstile { churn: 0.5 },
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let a = zipf_vector(100, 1.2, 1000, 7);
        let b = zipf_vector(100, 1.2, 1000, 7);
        assert_eq!(a, b);
        assert_eq!(a.f0(), 100, "every coordinate non-zero (min magnitude 1)");
        assert_eq!(a.linf(), 1000);
        // Skew: the top coordinate dominates F_4.
        let top_share = (a.linf() as f64).powi(4) / a.fp_moment(4.0);
        assert!(top_share > 0.9, "top share {top_share}");
    }

    #[test]
    fn zipf_seed_sensitivity() {
        assert_ne!(zipf_vector(50, 1.0, 100, 1), zipf_vector(50, 1.0, 100, 2));
    }

    #[test]
    fn uniform_values_in_range() {
        let x = uniform_vector(200, 9, 3);
        assert!(x.values().iter().all(|&v| v != 0 && v.abs() <= 9));
    }

    #[test]
    fn planted_has_exactly_k_heavy() {
        let x = planted_vector(300, 5, 1000, 10, 11);
        let heavy = x.values().iter().filter(|v| v.abs() == 1000).count();
        assert_eq!(heavy, 5);
        assert!(x.values().iter().all(|&v| v.abs() == 1000 || v.abs() <= 10));
    }

    #[test]
    fn planted_zero_noise() {
        let x = planted_vector(50, 2, 100, 0, 1);
        assert_eq!(x.f0(), 2);
    }

    #[test]
    fn adversarial_shape() {
        let x = adversarial_vector(10, 100);
        assert_eq!(x.value(0), 1000);
        assert!(x.values()[1..].iter().all(|&v| v == 1));
    }

    #[test]
    fn ladder_spans_scales() {
        let x = ladder_vector(24, 2.0, 5);
        assert_eq!(x.linf(), 1 << 23);
        assert_eq!(x.values()[0].abs(), 1);
    }

    #[test]
    fn rfds_split_partitions_universe() {
        let (kept, forgotten) = rfds_split(100, 0.3, 9);
        assert_eq!(kept.len(), 30);
        assert_eq!(forgotten.len(), 70);
        let mut all: Vec<u64> = kept.iter().chain(forgotten.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn standard_battery_covers_named_workloads() {
        let battery = Workload::standard_battery(64, 1);
        assert_eq!(battery.len(), 4);
        for w in &battery {
            assert_eq!(w.vector.n(), 64, "{}", w.name);
            let s = w.to_stream(2);
            assert_eq!(s.final_vector(), w.vector, "{}", w.name);
        }
    }
}
