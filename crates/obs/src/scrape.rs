//! The scrape endpoint: a tiny side TCP listener serving the global
//! registry in Prometheus text exposition format.
//!
//! Design rule: **never parse, always answer**. A Prometheus scraper
//! sends `GET /metrics HTTP/1.1`, but an adversary (or a port scanner,
//! or `nc` piping `/dev/urandom`) may send anything — so the handler does
//! not interpret the request at all. It drains bytes until it sees the
//! end of an HTTP header block (blank line), hits EOF, hits a hard
//! deadline, or hits a size cap — then writes one fixed, well-formed
//! `HTTP/1.0 200` response with the current exposition and closes. Every
//! outcome (including a deadline or cap trip) gets the same valid
//! response; nothing the peer sends can change the response grammar,
//! allocate unboundedly, or pin the handler thread past the deadline.
//!
//! The listener/handler machinery is [`TextServer`], shared with the
//! traces endpoint ([`crate::TraceServer`]) — one render-a-string
//! contract, two expositions.
//!
//! The server compiles in both obs modes so `--metrics-addr` keeps
//! working under `--no-default-features` — the obs-off exposition is
//! simply empty.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry;

/// Limits for one scrape connection. Defaults are generous for a real
/// scraper and stingy for an adversary.
#[derive(Debug, Clone, Copy)]
pub struct MetricsServerConfig {
    /// Hard wall-clock deadline for draining the request before the
    /// response is written regardless (default 2 s). A slow-trickle
    /// client gets its exposition early; it cannot pin the thread.
    pub read_deadline: Duration,
    /// Request bytes drained before giving up and answering anyway
    /// (default 8 KiB). An oversized request is truncated, not buffered.
    pub max_request_bytes: usize,
}

impl Default for MetricsServerConfig {
    fn default() -> Self {
        MetricsServerConfig {
            read_deadline: Duration::from_secs(2),
            max_request_bytes: 8 * 1024,
        }
    }
}

/// The shared drain-then-answer listener: accepts connections, drains
/// each request without interpreting it, and answers with whatever the
/// render callback produces at that moment. [`MetricsServer`] and
/// [`crate::TraceServer`] are this with different callbacks.
#[derive(Debug)]
pub(crate) struct TextServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TextServer {
    pub(crate) fn bind_with<A: ToSocketAddrs, F>(
        addr: A,
        config: MetricsServerConfig,
        render: F,
    ) -> std::io::Result<TextServer>
    where
        F: Fn() -> String + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(render);
        let accept = std::thread::Builder::new()
            .name("pts-obs-scrape".into())
            .spawn(move || accept_loop(listener, flag, config, render))?;
        Ok(TextServer {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    pub(crate) fn join(mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TextServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// A running scrape endpoint. Dropping it (or calling
/// [`MetricsServer::join`]) shuts the listener down and joins every
/// handler thread — same teardown discipline as `pts-server`.
#[derive(Debug)]
pub struct MetricsServer {
    inner: TextServer,
}

impl MetricsServer {
    /// Binds a scrape endpoint with default limits. Use port 0 for an
    /// ephemeral port; read it back with [`MetricsServer::local_addr`].
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
        Self::bind_with(addr, MetricsServerConfig::default())
    }

    /// Binds a scrape endpoint with explicit limits.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        config: MetricsServerConfig,
    ) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            inner: TextServer::bind_with(addr, config, || {
                let obs = scrape_obs();
                obs.scrapes.inc();
                let body = registry().render_prometheus();
                obs.bytes_out.add(body.len() as u64);
                body
            })?,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Flags shutdown and wakes the blocking accept. Returns
    /// immediately; use [`MetricsServer::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// Blocks until the accept loop and every handler have exited.
    pub fn join(self) {
        self.inner.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    config: MetricsServerConfig,
    render: Arc<dyn Fn() -> String + Send + Sync>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let conn = listener.accept();
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok((stream, _peer)) => {
                let render = Arc::clone(&render);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("pts-obs-conn".into())
                    .spawn(move || serve_text(stream, config, &*render))
                {
                    handlers.push(handle);
                }
            }
            Err(_) => continue,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection (see the module docs for the contract): drain
/// without parsing, then answer with one fixed `HTTP/1.0 200` carrying
/// the rendered exposition.
fn serve_text(mut stream: TcpStream, config: MetricsServerConfig, render: &dyn Fn() -> String) {
    drain_request(&mut stream, config);
    let body = render();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(header.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Drains the request until a blank line ends an HTTP header block, EOF,
/// the deadline, or the byte cap — whichever comes first. Errors are
/// treated like EOF: the caller answers regardless.
fn drain_request(stream: &mut TcpStream, config: MetricsServerConfig) {
    // Short poll timeout so the hard deadline is honored even against a
    // peer that trickles one byte per second forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let start = Instant::now();
    let mut seen = 0usize;
    let mut tail = [0u8; 4]; // last 4 bytes seen, for \r\n\r\n / \n\n
    let mut buf = [0u8; 512];
    while start.elapsed() < config.read_deadline && seen < config.max_request_bytes {
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => {
                seen += n;
                for &b in &buf[..n] {
                    tail.rotate_left(1);
                    tail[3] = b;
                }
                if &tail == b"\r\n\r\n" || &tail[2..] == b"\n\n" {
                    break; // end of an HTTP header block
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => break,
        }
    }
}

/// Self-instrumentation handles (no-ops in the obs-off build).
struct ScrapeObs {
    scrapes: crate::Counter,
    bytes_out: crate::Counter,
}

fn scrape_obs() -> &'static ScrapeObs {
    static OBS: std::sync::OnceLock<ScrapeObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| ScrapeObs {
        scrapes: registry().counter("obs.scrapes"),
        bytes_out: registry().counter("obs.scrape.bytes_out"),
    })
}
