//! The no-op stub — compiled when the `on` feature is disabled (the
//! "obs-off" build the `o1` experiment benchmarks against).
//!
//! Every type and method from [`crate::on`] exists here with an identical
//! signature, so instrumented crates compile unchanged; every body is
//! empty or constant and marked `#[inline]`, so call sites optimize to
//! nothing — including [`Stopwatch::start`], which skips the
//! `Instant::now()` syscall, not just the atomic write it would feed.

use crate::types::MetricsSnapshot;

/// No-op counter (obs-off build).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Does nothing.
    #[inline]
    pub fn inc(&self) {}

    /// Always 0.
    #[inline]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge (obs-off build).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline]
    pub fn set(&self, _v: i64) {}

    /// Does nothing.
    #[inline]
    pub fn add(&self, _delta: i64) {}

    /// Always 0.
    #[inline]
    pub fn get(&self) -> i64 {
        0
    }
}

/// No-op histogram (obs-off build).
#[derive(Debug, Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline]
    pub fn observe(&self, _value: u64) {}

    /// Does nothing.
    #[inline]
    pub fn observe_elapsed(&self, _sw: Stopwatch) {}

    /// Always 0.
    #[inline]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always 0.
    #[inline]
    pub fn sum(&self) -> u64 {
        0
    }
}

/// No-op stopwatch: no `Instant::now()` syscall in the obs-off build.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stopwatch;

impl Stopwatch {
    /// Does nothing.
    #[inline]
    pub fn start() -> Self {
        Stopwatch
    }

    /// Always 0.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

/// No-op registry (obs-off build): every registration returns the unit
/// handle, every snapshot is empty, every render is the empty exposition.
#[derive(Debug, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// Creates the unit registry.
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// Returns the unit counter.
    #[inline]
    pub fn counter(&self, _name: &'static str) -> Counter {
        Counter
    }

    /// Returns the unit counter.
    #[inline]
    pub fn counter_labeled(
        &self,
        _name: &'static str,
        _key: &'static str,
        _value: &'static str,
    ) -> Counter {
        Counter
    }

    /// Returns the unit gauge.
    #[inline]
    pub fn gauge(&self, _name: &'static str) -> Gauge {
        Gauge
    }

    /// Returns the unit histogram.
    #[inline]
    pub fn histogram(&self, _name: &'static str) -> Histogram {
        Histogram
    }

    /// Returns the unit histogram.
    #[inline]
    pub fn histogram_labeled(
        &self,
        _name: &'static str,
        _key: &'static str,
        _value: &'static str,
    ) -> Histogram {
        Histogram
    }

    /// Always the empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Always the empty exposition.
    pub fn render_prometheus(&self) -> String {
        String::new()
    }
}

/// The process-global registry (unit in the obs-off build).
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry;
    &GLOBAL
}
