//! Byte-counting I/O adapters.
//!
//! [`CountingWriter`] / [`CountingReader`] wrap any `Write` / `Read` and
//! tally the bytes that actually pass through — the instrumented crates
//! use them to feed `*.bytes` counters (checkpoint size, wire traffic)
//! without guessing at serialized lengths. They are compiled in both
//! obs modes: counting a `u64` is not worth feature-gating, and the
//! engine's checkpoint paths use the counts for their own stats too.

use std::io::{Read, Result, Write};

/// A `Write` adapter that counts bytes written.
#[derive(Debug)]
pub struct CountingWriter<W> {
    inner: W,
    count: u64,
}

impl<W: Write> CountingWriter<W> {
    /// Wraps `inner` with a zeroed count.
    pub fn new(inner: W) -> Self {
        CountingWriter { inner, count: 0 }
    }

    /// Bytes successfully written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Unwraps, returning `(inner, bytes_written)`.
    pub fn into_parts(self) -> (W, u64) {
        (self.inner, self.count)
    }

    /// Borrows the wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        let n = self.inner.write(buf)?;
        self.count += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that counts bytes read.
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    count: u64,
}

impl<R: Read> CountingReader<R> {
    /// Wraps `inner` with a zeroed count.
    pub fn new(inner: R) -> Self {
        CountingReader { inner, count: 0 }
    }

    /// Bytes successfully read so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Unwraps, returning `(inner, bytes_read)`.
    pub fn into_parts(self) -> (R, u64) {
        (self.inner, self.count)
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn writer_counts_bytes() {
        let mut w = CountingWriter::new(Vec::new());
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        assert_eq!(w.count(), 11);
        let (inner, n) = w.into_parts();
        assert_eq!(inner, b"hello world");
        assert_eq!(n, 11);
    }

    #[test]
    fn reader_counts_bytes() {
        let mut r = CountingReader::new(Cursor::new(b"abcdef".to_vec()));
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(r.count(), 4);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(r.count(), 6);
    }
}
