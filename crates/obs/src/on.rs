//! The real registry — compiled when `feature = "on"` (the default).
//!
//! Layout: registration is the slow path (a `Mutex` over the series list,
//! hit once per call site thanks to `OnceLock` caching in the macros and
//! the pre-registered handle structs in instrumented crates); reads and
//! writes are the hot path — a handle is a `Copy` wrapper around a
//! `&'static` atomic cell leaked at registration, so `Counter::add` is one
//! relaxed `fetch_add` with no locks, no hashing, and no allocation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::types::{
    bucket_bound, bucket_index, HistogramSnapshot, MetricPoint, MetricValue, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};

/// A monotone counter. `Copy` — grab one at startup (or through the
/// `counter!` macro's per-site cache) and bump it forever.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` (relaxed; the hot path).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed gauge.
#[derive(Debug, Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// The atomic state behind a histogram handle.
#[derive(Debug)]
struct HistogramCells {
    // One slot per finite bucket plus the +Inf overflow slot.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-log-bucket histogram: bucket = bit length of the observed
/// value, so `observe` is a `leading_zeros` plus three relaxed atomic
/// adds — no floats, no binary search, no locks.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    cells: &'static HistogramCells,
}

impl Histogram {
    /// Records one observation (the hot path).
    #[inline]
    pub fn observe(&self, value: u64) {
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed nanoseconds of a [`Stopwatch`].
    #[inline]
    pub fn observe_elapsed(&self, sw: Stopwatch) {
        self.observe(sw.elapsed_ns());
    }

    /// Total observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS);
        for (b, cell) in self.cells.buckets[..HISTOGRAM_BUCKETS].iter().enumerate() {
            cumulative += cell.load(Ordering::Relaxed);
            buckets.push((bucket_bound(b), cumulative));
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A started wall-clock timer; pair with [`Histogram::observe_elapsed`].
/// In the `obs-off` build this type is a unit struct and both methods are
/// empty, so the `Instant::now()` syscalls vanish too — not just the
/// atomic writes.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturated to `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The handle variants a series can hold.
#[derive(Debug, Clone, Copy)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// One registered series.
#[derive(Debug)]
struct Series {
    name: &'static str,
    label: Option<(&'static str, &'static str)>,
    handle: Handle,
}

/// The process-global metrics registry.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a mutex and is
/// idempotent: the same `(name, label)` always returns the same handle,
/// and re-registering under a different metric kind or label key panics —
/// that is a programming error that would corrupt the exposition.
/// Snapshot/render walk the series list under the same mutex; the handles
/// they read are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<Vec<Series>>,
}

impl MetricsRegistry {
    /// Creates an empty registry. Prefer [`registry`] (the process
    /// global); separate registries exist for tests.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, None)
    }

    /// Registers (or retrieves) a counter labeled `key="value"`. All
    /// series of one name must share the label key.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        key: &'static str,
        value: &'static str,
    ) -> Counter {
        self.counter_with(name, Some((key, value)))
    }

    fn counter_with(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> Counter {
        match self.register(name, label, || {
            Handle::Counter(Counter {
                cell: Box::leak(Box::new(AtomicU64::new(0))),
            })
        }) {
            Handle::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.register(name, None, || {
            Handle::Gauge(Gauge {
                cell: Box::leak(Box::new(AtomicI64::new(0))),
            })
        }) {
            Handle::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, None)
    }

    /// Registers (or retrieves) a histogram labeled `key="value"`.
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        key: &'static str,
        value: &'static str,
    ) -> Histogram {
        self.histogram_with(name, Some((key, value)))
    }

    fn histogram_with(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> Histogram {
        match self.register(name, label, || {
            Handle::Histogram(Histogram {
                cells: Box::leak(Box::new(HistogramCells {
                    buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS + 1],
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })),
            })
        }) {
            Handle::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    fn register(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        for s in series.iter() {
            if s.name == name {
                if s.label.map(|(k, _)| k) != label.map(|(k, _)| k) {
                    panic!("metric `{name}` registered with conflicting label keys");
                }
                if s.label == label {
                    return s.handle;
                }
            }
        }
        let handle = make();
        series.push(Series {
            name,
            label,
            handle,
        });
        handle
    }

    /// Reads every series into a sorted [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let mut points: Vec<MetricPoint> = series
            .iter()
            .map(|s| MetricPoint {
                name: s.name,
                label: s.label,
                value: match s.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        points.sort_by(|a, b| {
            (a.name, a.label.map(|(_, v)| v)).cmp(&(b.name, b.label.map(|(_, v)| v)))
        });
        MetricsSnapshot { points }
    }

    /// Snapshot + render in one call (what the scrape endpoint serves).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// The process-global registry every macro and instrumented crate uses.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_idempotent_and_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("on.test.shared");
        let b = r.counter("on.test.shared");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = MetricsRegistry::new();
        let x = r.counter_labeled("on.test.labeled", "kind", "x");
        let y = r.counter_labeled("on.test.labeled", "kind", "y");
        x.add(5);
        y.add(7);
        assert_eq!(x.get(), 5);
        assert_eq!(y.get(), 7);
        assert_eq!(r.snapshot().points.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("on.test.kind");
        r.gauge("on.test.kind");
    }

    #[test]
    #[should_panic(expected = "conflicting label keys")]
    fn label_key_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter_labeled("on.test.labelkey", "kind", "x");
        r.counter_labeled("on.test.labelkey", "node", "0");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("on.test.hist");
        for v in [0u64, 1, 2, 3, 900, u64::MAX] {
            h.observe(v);
        }
        let snap = match &r.snapshot().points[0].value {
            MetricValue::Histogram(h) => h.clone(),
            other => panic!("expected histogram, got {other:?}"),
        };
        assert_eq!(snap.count, 6);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 2 + 3 + 900).wrapping_add(u64::MAX)
        );
        // le=0 holds the single zero; le=1 adds the single 1; le=3 adds 2
        // and 3; u64::MAX lives in +Inf so the last finite bucket is 5.
        assert_eq!(snap.buckets[0], (0, 1));
        assert_eq!(snap.buckets[1], (1, 2));
        assert_eq!(snap.buckets[2], (3, 4));
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1].1, 5);
        // Cumulativity: counts never decrease along the bucket list.
        for w in snap.buckets.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        let r = MetricsRegistry::new();
        let h = r.histogram("on.test.sw");
        h.observe_elapsed(sw);
        assert_eq!(h.count(), 1);
    }
}
