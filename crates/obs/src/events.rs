//! The bounded structured event ring.
//!
//! Metrics answer "how many / how fast"; events answer "what happened" —
//! connection lifecycles, node failovers, rebalances, frame errors. The
//! ring is **quiet by default**: recording never prints, never blocks on
//! I/O, and never grows past its capacity (oldest events are dropped and
//! counted). Consumers drain on demand — an operator tool, a test, or the
//! scrape endpoint's `pts_obs_events_*` meta-metrics.
//!
//! Recording takes a short mutex (events are rare — per-connection, not
//! per-update — so this is deliberately *not* on the lock-free budget of
//! the metrics hot path). In the obs-off build recording is a no-op and
//! draining returns nothing.

use std::collections::VecDeque;
use std::sync::Mutex;
#[cfg(feature = "on")]
use std::time::{SystemTime, UNIX_EPOCH};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (gaps reveal drops).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// Static event kind, dotted like metric names (e.g. `server.conn.open`).
    pub kind: &'static str,
    /// Free-form detail (addresses, node ids, byte counts).
    pub detail: String,
}

#[derive(Debug, Default)]
#[cfg_attr(not(feature = "on"), allow(dead_code))]
struct RingState {
    events: VecDeque<Event>,
    next_seq: u64,
    recorded: u64,
    dropped: u64,
}

/// A bounded ring of [`Event`]s. See the module docs for semantics.
#[derive(Debug)]
pub struct EventRing {
    #[cfg_attr(not(feature = "on"), allow(dead_code))]
    capacity: usize,
    state: Mutex<RingState>,
}

/// Capacity of the process-global ring returned by [`events`].
pub const GLOBAL_RING_CAPACITY: usize = 1024;

impl EventRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) {
        #[cfg(not(feature = "on"))]
        {
            let _ = (kind, detail.into());
        }
        #[cfg(feature = "on")]
        {
            let unix_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let seq = state.next_seq;
            state.next_seq += 1;
            state.recorded += 1;
            if state.events.len() == self.capacity {
                state.events.pop_front();
                state.dropped += 1;
                // The same sequence-gap accounting, surfaced on the
                // scrape endpoint: silent event loss is itself an
                // observable.
                dropped_counter().inc();
            }
            state.events.push_back(Event {
                seq,
                unix_ms,
                kind,
                detail: detail.into(),
            });
        }
    }

    /// Removes and returns every pending event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.events.drain(..).collect()
    }

    /// Pending (undrained) event count.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Totals since process start: `(recorded, dropped)`.
    pub fn totals(&self) -> (u64, u64) {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (state.recorded, state.dropped)
    }
}

/// The `obs.events.dropped` counter handle, cached once: every ring
/// eviction (any [`EventRing`], not just the global one) bumps it.
#[cfg(feature = "on")]
fn dropped_counter() -> crate::Counter {
    static SITE: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    *SITE.get_or_init(|| crate::registry().counter("obs.events.dropped"))
}

/// The process-global event ring (capacity [`GLOBAL_RING_CAPACITY`]).
pub fn events() -> &'static EventRing {
    static GLOBAL: std::sync::OnceLock<EventRing> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| EventRing::new(GLOBAL_RING_CAPACITY))
}

/// Records an event on the process-global ring.
#[inline]
pub fn event(kind: &'static str, detail: impl Into<String>) {
    events().record(kind, detail);
}

/// Drains the process-global ring.
pub fn drain_events() -> Vec<Event> {
    events().drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "on")]
    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.record("test.kind", format!("e{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.totals(), (5, 2));
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted, seq gap reveals the drop"
        );
        assert_eq!(drained[0].detail, "e2");
        assert!(ring.is_empty());
    }

    #[cfg(not(feature = "on"))]
    #[test]
    fn ring_is_quiet_when_off() {
        let ring = EventRing::new(3);
        ring.record("test.kind", "ignored");
        assert!(ring.is_empty());
        assert_eq!(ring.totals(), (0, 0));
    }
}
