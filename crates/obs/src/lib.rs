//! # pts-obs — zero-dependency observability for the sampling stack
//!
//! A process-global, lock-free-on-the-hot-path metrics registry
//! ([`Counter`] / [`Gauge`] / fixed-log-bucket [`Histogram`]), a bounded
//! structured [`EventRing`], and a hand-rolled Prometheus-text scrape
//! endpoint ([`MetricsServer`]) — all plain `std`, because the sandbox
//! this repo grows in has no package registry and the instrumented hot
//! paths (per-update ingest, per-draw sampling) cannot afford a
//! dependency-grade metrics pipeline anyway.
//!
//! ## Cost model
//!
//! * **Hot path** (`Counter::add`, `Gauge::add`, `Histogram::observe`):
//!   one to three relaxed atomic RMWs on `&'static` cells leaked at
//!   registration. No locks, no hashing, no allocation, no branches on
//!   label strings — a labeled series is just a *different handle*,
//!   resolved once at registration.
//! * **Slow path** (registration, snapshot, render, event recording): a
//!   short `Mutex`. Registration happens once per call site — macros
//!   cache the handle in a per-site `OnceLock`, and the instrumented
//!   crates pre-register handle structs at first use.
//! * **Off** (`--no-default-features`): every type is a unit struct and
//!   every method an empty `#[inline]` body, including
//!   [`Stopwatch::start`] — so timing syscalls vanish, not just atomic
//!   writes. The `o1` bench experiment measures the difference between
//!   the two builds and records it in `EXPERIMENTS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use pts_obs::{counter, registry, MetricsServer};
//!
//! counter!("demo.requests");                   // unlabeled, +1
//! counter!("demo.requests.by_kind", kind = "sample"); // labeled series
//!
//! // In-process consumers:
//! let text = registry().render_prometheus();
//! # if pts_obs::enabled() {
//! assert!(text.contains("pts_demo_requests 1"));
//! # }
//!
//! // Network consumers — curl http://<addr>/metrics:
//! let server = MetricsServer::bind("127.0.0.1:0").unwrap();
//! let _addr = server.local_addr();
//! server.join();
//! ```
//!
//! See `DESIGN.md` §11 for the registry design and the full metric name
//! inventory (S36+).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

mod events;
mod io;
#[cfg(not(feature = "on"))]
mod off;
#[cfg(feature = "on")]
mod on;
mod scrape;
mod trace;
mod types;

pub use events::{drain_events, event, events, Event, EventRing, GLOBAL_RING_CAPACITY};
pub use io::{CountingReader, CountingWriter};
#[cfg(not(feature = "on"))]
pub use off::{registry, Counter, Gauge, Histogram, MetricsRegistry, Stopwatch};
#[cfg(feature = "on")]
pub use on::{registry, Counter, Gauge, Histogram, MetricsRegistry, Stopwatch};
pub use scrape::{MetricsServer, MetricsServerConfig};
pub use trace::{
    render_trace_spans, render_traces, set_slow_span_threshold, traces, Span, SpanRecord,
    TraceRing, TraceServer, Tracer, DEFAULT_SLOW_SPAN_THRESHOLD, TRACE_RING_CAPACITY,
};
pub use types::{
    bucket_bound, bucket_index, escape_label_value, prometheus_name, HistogramSnapshot,
    MetricPoint, MetricValue, MetricsSnapshot, HISTOGRAM_BUCKETS,
};

/// Whether this build carries the real registry (`feature = "on"`). The
/// obs-off build returns `false`; call sites rarely need to check — the
/// no-op API makes unconditional instrumentation free.
pub const fn enabled() -> bool {
    cfg!(feature = "on")
}

/// Renders the process-global registry in Prometheus text format (what
/// the scrape endpoint serves; empty in the obs-off build).
pub fn render_prometheus() -> String {
    registry().render_prometheus()
}

/// Bumps a counter on the process-global registry, caching the handle in
/// a per-call-site `OnceLock` so steady-state cost is one relaxed
/// `fetch_add` (a no-op in the obs-off build).
///
/// Forms: `counter!("name")` (+1), `counter!("name", n)` (+n),
/// `counter!("name", key = "value")` (+1 on the labeled series),
/// `counter!("name", key = "value", n)`.
#[macro_export]
macro_rules! counter {
    ($name:literal, $key:ident = $value:literal, $n:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| {
            $crate::registry().counter_labeled($name, ::core::stringify!($key), $value)
        })
        .add($n);
    }};
    ($name:literal, $key:ident = $value:literal) => {
        $crate::counter!($name, $key = $value, 1)
    };
    ($name:literal, $n:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::registry().counter($name))
            .add($n);
    }};
    ($name:literal) => {
        $crate::counter!($name, 1)
    };
}

/// Sets a gauge on the process-global registry (same per-site caching as
/// [`counter!`]): `gauge!("name", value)`.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::registry().gauge($name)).set($v);
    }};
}

/// Observes a value on a histogram on the process-global registry (same
/// per-site caching as [`counter!`]): `histogram!("name", value)`.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $v:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::registry().histogram($name))
            .observe($v);
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_matches_feature() {
        assert_eq!(super::enabled(), cfg!(feature = "on"));
    }

    #[cfg(feature = "on")]
    #[test]
    fn macros_register_on_the_global_registry() {
        super::counter!("lib.test.macro");
        super::counter!("lib.test.macro", 4);
        super::counter!("lib.test.macro.labeled", kind = "a");
        super::gauge!("lib.test.gauge", -3);
        super::histogram!("lib.test.hist", 100);
        let text = super::render_prometheus();
        assert!(text.contains("pts_lib_test_macro 5"), "{text}");
        assert!(
            text.contains("pts_lib_test_macro_labeled{kind=\"a\"} 1"),
            "{text}"
        );
        assert!(text.contains("pts_lib_test_gauge -3"), "{text}");
        assert!(text.contains("pts_lib_test_hist_count 1"), "{text}");
    }

    #[cfg(not(feature = "on"))]
    #[test]
    fn macros_are_noops_when_off() {
        super::counter!("lib.test.macro.off");
        super::gauge!("lib.test.gauge.off", 1);
        super::histogram!("lib.test.hist.off", 1);
        assert!(super::render_prometheus().is_empty());
    }
}
