//! Distributed request tracing: sampling, span handles, the bounded
//! trace ring, and a traces endpoint.
//!
//! Metrics say *that* latency exists; traces say *where* one request
//! spent it. A [`Tracer`] deterministically samples 1-in-N requests into
//! a trace; each stage that touches a sampled request opens a [`Span`]
//! and the finished spans land in the process-global [`TraceRing`]
//! (bounded, oldest evicted and counted — same discipline as the event
//! ring). Untraced requests cost one branch: [`Span::noop`] handles do
//! not allocate, do not read the clock, and record nothing, and in the
//! obs-off build *every* span is that no-op.
//!
//! Surfacing is threefold:
//!
//! * the [`TraceRing`], rendered as deterministic text by
//!   [`render_traces`] and served by [`TraceServer`] (the scrape
//!   endpoint's "never parse, always answer" contract, second listener);
//! * slow spans — duration at or over the
//!   [`set_slow_span_threshold`] threshold — are promoted into the
//!   structured event ring as `trace.slow` events;
//! * drop accounting (`obs.trace.spans` / `obs.trace.dropped` counters)
//!   keeps silent span loss visible on the metrics endpoint.
//!
//! Span ids are process-global and allocated once per span, so in a
//! loopback deployment (tests, benches) one ring holds a whole
//! multi-node trace tree; in a real deployment each node's ring holds
//! its shard of the tree and trace ids stitch them together.

use std::collections::VecDeque;
use std::sync::Mutex;
#[cfg(feature = "on")]
use std::sync::{
    atomic::{AtomicU64, Ordering},
    OnceLock,
};
use std::time::Duration;
#[cfg(feature = "on")]
use std::time::Instant;

/// Capacity of the process-global ring returned by [`traces`].
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Default slow-span threshold (100 ms): spans at or over it are
/// promoted into the event ring as `trace.slow` events. Configurable via
/// [`set_slow_span_threshold`].
pub const DEFAULT_SLOW_SPAN_THRESHOLD: Duration = Duration::from_millis(100);

#[cfg(feature = "on")]
static SLOW_SPAN_THRESHOLD_NS: AtomicU64 = AtomicU64::new(100_000_000);

/// Sets the process-wide slow-span threshold: any span finishing with a
/// duration at or over it is promoted into the event ring as a
/// `trace.slow` event. `Duration::MAX`-like values effectively disable
/// promotion. A no-op in the obs-off build.
pub fn set_slow_span_threshold(threshold: Duration) {
    #[cfg(not(feature = "on"))]
    let _ = threshold;
    #[cfg(feature = "on")]
    SLOW_SPAN_THRESHOLD_NS.store(
        u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
}

/// The process epoch every span timestamp is measured from — fixed at
/// first use, so `start_ns`/`end_ns` are comparable across threads.
#[cfg(feature = "on")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(feature = "on")]
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Allocates a fresh process-unique nonzero trace id.
#[cfg(feature = "on")]
fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Allocates a fresh process-unique nonzero span id.
#[cfg(feature = "on")]
fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Self-instrumentation handles (no-ops in the obs-off build).
#[cfg(feature = "on")]
struct TraceObs {
    spans: crate::Counter,
    dropped: crate::Counter,
    scrapes: crate::Counter,
}

#[cfg(feature = "on")]
fn trace_obs() -> &'static TraceObs {
    static OBS: OnceLock<TraceObs> = OnceLock::new();
    OBS.get_or_init(|| TraceObs {
        spans: crate::registry().counter("obs.trace.spans"),
        dropped: crate::registry().counter("obs.trace.dropped"),
        scrapes: crate::registry().counter("obs.trace.scrapes"),
    })
}

/// Deterministic 1-in-N request sampling.
///
/// A tracer decides, per request, whether the request joins a new
/// distributed trace. The decision is a modular counter — request `k`
/// (0-based) is sampled iff `k ≡ seed (mod every)` — so a fixed seed and
/// request sequence always sample the same requests: reproducible in
/// tests, evenly spread in production, and free of RNG state on the hot
/// path. `every = 0` disables sampling; `every = 1` samples everything.
///
/// Each connection owns its tracer (seeded per connection), so two
/// connections sample independently but each is individually
/// deterministic.
#[derive(Debug)]
pub struct Tracer {
    #[cfg(feature = "on")]
    every: u64,
    #[cfg(feature = "on")]
    offset: u64,
    #[cfg(feature = "on")]
    seen: AtomicU64,
}

impl Tracer {
    /// A tracer sampling 1 in `every` requests, phase-shifted by `seed`
    /// (`every = 0` never samples). In the obs-off build every tracer is
    /// disabled regardless of `every`.
    pub fn new(seed: u64, every: u64) -> Self {
        #[cfg(not(feature = "on"))]
        {
            let _ = (seed, every);
            Tracer {}
        }
        #[cfg(feature = "on")]
        Tracer {
            every,
            offset: if every == 0 { 0 } else { seed % every },
            seen: AtomicU64::new(0),
        }
    }

    /// A tracer that never samples.
    pub fn disabled() -> Self {
        Tracer::new(0, 0)
    }

    /// Counts one request; returns `Some(trace_id)` (fresh, nonzero) if
    /// this request is sampled into a new trace, `None` otherwise.
    pub fn sample(&self) -> Option<u64> {
        #[cfg(not(feature = "on"))]
        {
            None
        }
        #[cfg(feature = "on")]
        {
            if self.every == 0 {
                return None;
            }
            let k = self.seen.fetch_add(1, Ordering::Relaxed);
            (k % self.every == self.offset).then(next_trace_id)
        }
    }
}

/// One completed span: a named, timed segment of one request's journey,
/// linked into its trace by `trace_id` and `parent_span_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The distributed trace this span belongs to (≥ 1).
    pub trace_id: u64,
    /// This span's process-unique id (≥ 1).
    pub span_id: u64,
    /// The span this one nests under (0 = a trace root).
    pub parent_span_id: u64,
    /// Static stage name, dotted like metric names (e.g.
    /// `server.queue_wait`).
    pub name: &'static str,
    /// Free-form tags (e.g. `kind=sample ns=7`). Empty if none were set.
    pub detail: String,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End time, nanoseconds since the process trace epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(feature = "on")]
#[derive(Debug)]
struct SpanInner {
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
    name: &'static str,
    detail: String,
    start_ns: u64,
}

/// A live span handle. Created by [`Span::start`]; the span records
/// itself into the process-global [`TraceRing`] when the handle drops
/// (or [`Span::finish`] is called, which is the explicit spelling of the
/// same thing) — so error paths close their spans for free.
///
/// A no-op handle ([`Span::noop`], or any span started with trace id 0,
/// or *any* span in the obs-off build) costs one branch and records
/// nothing.
#[derive(Debug, Default)]
pub struct Span {
    #[cfg(feature = "on")]
    inner: Option<SpanInner>,
}

impl Span {
    /// A handle that records nothing.
    pub fn noop() -> Span {
        Span::default()
    }

    /// Opens a span in `trace_id` under `parent_span_id` (0 = this is a
    /// trace root). Passing trace id 0 — the wire's *untraced* marker —
    /// yields a no-op handle, so call sites can start spans
    /// unconditionally.
    pub fn start(trace_id: u64, parent_span_id: u64, name: &'static str) -> Span {
        #[cfg(not(feature = "on"))]
        {
            let _ = (trace_id, parent_span_id, name);
            Span::default()
        }
        #[cfg(feature = "on")]
        {
            if trace_id == 0 {
                return Span::default();
            }
            Span {
                inner: Some(SpanInner {
                    trace_id,
                    span_id: next_span_id(),
                    parent_span_id,
                    name,
                    detail: String::new(),
                    start_ns: now_ns(),
                }),
            }
        }
    }

    /// Whether this handle actually records (false for no-ops).
    pub fn is_recording(&self) -> bool {
        #[cfg(not(feature = "on"))]
        {
            false
        }
        #[cfg(feature = "on")]
        self.inner.is_some()
    }

    /// This span's id, for parenting child spans (0 for no-ops — child
    /// spans of a no-op started with that 0 parent in a real trace
    /// simply become roots).
    pub fn id(&self) -> u64 {
        #[cfg(not(feature = "on"))]
        {
            0
        }
        #[cfg(feature = "on")]
        self.inner.as_ref().map_or(0, |s| s.span_id)
    }

    /// The trace this span records into (0 for no-ops).
    pub fn trace_id(&self) -> u64 {
        #[cfg(not(feature = "on"))]
        {
            0
        }
        #[cfg(feature = "on")]
        self.inner.as_ref().map_or(0, |s| s.trace_id)
    }

    /// Replaces the span's free-form tag string (e.g. `kind=sample
    /// ns=7`). A no-op on no-op handles — the `impl Into<String>` is
    /// only materialized when recording.
    pub fn tag(&mut self, detail: impl Into<String>) {
        #[cfg(not(feature = "on"))]
        {
            let _ = &detail;
        }
        #[cfg(feature = "on")]
        if let Some(inner) = self.inner.as_mut() {
            inner.detail = detail.into();
        }
    }

    /// Closes the span, recording it into the global [`TraceRing`]
    /// (explicit spelling of dropping the handle).
    pub fn finish(self) {}
}

#[cfg(feature = "on")]
impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_ns = now_ns();
        let record = SpanRecord {
            trace_id: inner.trace_id,
            span_id: inner.span_id,
            parent_span_id: inner.parent_span_id,
            name: inner.name,
            detail: inner.detail,
            start_ns: inner.start_ns,
            end_ns,
        };
        let duration_ns = record.duration_ns();
        if duration_ns >= SLOW_SPAN_THRESHOLD_NS.load(Ordering::Relaxed) {
            crate::event(
                "trace.slow",
                format!(
                    "trace={} span={} name={} dur_ms={} {}",
                    record.trace_id,
                    record.span_id,
                    record.name,
                    duration_ns / 1_000_000,
                    record.detail
                ),
            );
        }
        traces().record(record);
    }
}

#[derive(Debug, Default)]
#[cfg_attr(not(feature = "on"), allow(dead_code))]
struct TraceRingState {
    spans: VecDeque<SpanRecord>,
    recorded: u64,
    dropped: u64,
}

/// A bounded ring of completed [`SpanRecord`]s — the landing zone for
/// every finished span. Oldest spans are evicted when full and the drop
/// is counted ([`TraceRing::totals`], plus the `obs.trace.dropped`
/// counter for the global ring's evictions), so a burst of traced
/// requests can never grow memory unboundedly or hide its own loss.
#[derive(Debug)]
pub struct TraceRing {
    #[cfg_attr(not(feature = "on"), allow(dead_code))]
    capacity: usize,
    state: Mutex<TraceRingState>,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            state: Mutex::new(TraceRingState::default()),
        }
    }

    /// Records a completed span, evicting the oldest if the ring is
    /// full. (Span handles call this on drop; tests may call it
    /// directly.) A no-op in the obs-off build.
    pub fn record(&self, span: SpanRecord) {
        #[cfg(not(feature = "on"))]
        {
            let _ = span;
        }
        #[cfg(feature = "on")]
        {
            let obs = trace_obs();
            obs.spans.inc();
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.recorded += 1;
            if state.spans.len() == self.capacity {
                state.spans.pop_front();
                state.dropped += 1;
                obs.dropped.inc();
            }
            state.spans.push_back(span);
        }
    }

    /// Removes and returns every pending span, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.spans.drain(..).collect()
    }

    /// Clones every pending span, oldest first, without consuming them
    /// (what the traces endpoint renders).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.spans.iter().cloned().collect()
    }

    /// Pending (undrained) span count.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .len()
    }

    /// Whether no spans are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Totals since process start: `(recorded, dropped)`.
    pub fn totals(&self) -> (u64, u64) {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (state.recorded, state.dropped)
    }
}

/// The process-global trace ring (capacity [`TRACE_RING_CAPACITY`]).
pub fn traces() -> &'static TraceRing {
    static GLOBAL: std::sync::OnceLock<TraceRing> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| TraceRing::new(TRACE_RING_CAPACITY))
}

/// Renders the global [`TraceRing`] as deterministic text: one block per
/// trace (ascending trace id), spans as an indented tree under their
/// parents, siblings ordered by `(start_ns, span_id)`. A span whose
/// parent is absent from the ring (still open, evicted, or recorded on
/// another node) renders at the trace's top level. Empty (one header
/// line) when nothing is pending or in the obs-off build.
pub fn render_traces() -> String {
    render_trace_spans(&traces().snapshot())
}

/// [`render_traces`] over an explicit span list (what tests pin).
pub fn render_trace_spans(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut trace_ids: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    let mut out = format!("traces {}\n", trace_ids.len());
    for trace_id in trace_ids {
        let mut members: Vec<&SpanRecord> =
            spans.iter().filter(|s| s.trace_id == trace_id).collect();
        members.sort_by_key(|s| (s.start_ns, s.span_id));
        let ids: std::collections::HashSet<u64> = members.iter().map(|s| s.span_id).collect();
        let start = members.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = members.iter().map(|s| s.end_ns).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "trace {} spans={} duration_ns={}",
            trace_id,
            members.len(),
            end.saturating_sub(start)
        );
        // Depth-first from the top-level spans; explicit stack, siblings
        // already in deterministic order.
        let mut stack: Vec<(&SpanRecord, usize)> = members
            .iter()
            .rev()
            .filter(|s| s.parent_span_id == 0 || !ids.contains(&s.parent_span_id))
            .map(|s| (*s, 1))
            .collect();
        while let Some((span, depth)) = stack.pop() {
            let _ = writeln!(
                out,
                "{}{} span={} parent={} start_ns={} dur_ns={}{}{}",
                "  ".repeat(depth),
                span.name,
                span.span_id,
                span.parent_span_id,
                span.start_ns.saturating_sub(start),
                span.duration_ns(),
                if span.detail.is_empty() { "" } else { " " },
                span.detail
            );
            for child in members
                .iter()
                .rev()
                .filter(|s| s.parent_span_id == span.span_id)
            {
                stack.push((child, depth + 1));
            }
        }
    }
    out
}

/// A running traces endpoint: [`MetricsServer`](crate::MetricsServer)'s
/// sibling listener, serving [`render_traces`] instead of the metric
/// exposition under the identical "never parse, always answer" contract
/// (and the same teardown discipline — drop or
/// [`TraceServer::join`] shuts down and joins every handler).
///
/// Compiles in both obs modes; the obs-off rendering is the empty
/// `traces 0` header.
#[derive(Debug)]
pub struct TraceServer {
    inner: crate::scrape::TextServer,
}

impl TraceServer {
    /// Binds a traces endpoint with default limits. Use port 0 for an
    /// ephemeral port; read it back with [`TraceServer::local_addr`].
    pub fn bind<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<TraceServer> {
        Self::bind_with(addr, crate::MetricsServerConfig::default())
    }

    /// Binds a traces endpoint with explicit limits (shared with the
    /// scrape endpoint's [`crate::MetricsServerConfig`]).
    pub fn bind_with<A: std::net::ToSocketAddrs>(
        addr: A,
        config: crate::MetricsServerConfig,
    ) -> std::io::Result<TraceServer> {
        Ok(TraceServer {
            inner: crate::scrape::TextServer::bind_with(addr, config, || {
                #[cfg(feature = "on")]
                trace_obs().scrapes.inc();
                render_traces()
            })?,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.inner.local_addr()
    }

    /// Flags shutdown and wakes the blocking accept. Returns
    /// immediately; use [`TraceServer::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// Blocks until the accept loop and every handler have exited.
    pub fn join(self) {
        self.inner.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, parent: u64, name: &'static str, t0: u64, t1: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span_id: parent,
            name,
            detail: String::new(),
            start_ns: t0,
            end_ns: t1,
        }
    }

    #[test]
    fn render_is_deterministic_and_tree_shaped() {
        let mut spans = vec![
            rec(2, 10, 0, "client.submit", 0, 100),
            rec(2, 11, 10, "server.queue_wait", 5, 20),
            rec(2, 12, 10, "server.engine", 20, 80),
            rec(1, 3, 0, "cluster.sample_many", 0, 50),
        ];
        let text = render_trace_spans(&spans);
        assert_eq!(
            text,
            "traces 2\n\
             trace 1 spans=1 duration_ns=50\n\
             \x20 cluster.sample_many span=3 parent=0 start_ns=0 dur_ns=50\n\
             trace 2 spans=3 duration_ns=100\n\
             \x20 client.submit span=10 parent=0 start_ns=0 dur_ns=100\n\
             \x20   server.queue_wait span=11 parent=10 start_ns=5 dur_ns=15\n\
             \x20   server.engine span=12 parent=10 start_ns=20 dur_ns=60\n"
        );
        // Order of recording must not matter.
        spans.reverse();
        assert_eq!(render_trace_spans(&spans), text);
    }

    #[test]
    fn orphan_spans_render_at_top_level() {
        let spans = vec![rec(7, 2, 99, "server.engine", 10, 30)];
        let text = render_trace_spans(&spans);
        assert!(
            text.contains("\n  server.engine span=2 parent=99 start_ns=0 dur_ns=20\n"),
            "{text}"
        );
    }

    #[cfg(feature = "on")]
    #[test]
    fn tracer_samples_deterministically_one_in_n() {
        let tracer = Tracer::new(3, 4); // offset 3 % 4 = 3
        let hits: Vec<bool> = (0..12).map(|_| tracer.sample().is_some()).collect();
        assert_eq!(
            hits,
            [false, false, false, true, false, false, false, true, false, false, false, true]
        );
        // Sampled trace ids are fresh and nonzero.
        let t = Tracer::new(0, 1);
        let a = t.sample().unwrap();
        let b = t.sample().unwrap();
        assert!(a >= 1 && b > a);
        // every = 0 and disabled() never sample.
        assert!(Tracer::new(5, 0).sample().is_none());
        assert!(Tracer::disabled().sample().is_none());
    }

    #[cfg(not(feature = "on"))]
    #[test]
    fn tracer_never_samples_when_off() {
        assert!(Tracer::new(0, 1).sample().is_none());
    }

    #[cfg(feature = "on")]
    #[test]
    fn spans_record_into_the_global_ring_on_drop() {
        let before = traces().totals().0;
        let mut root = Span::start(next_trace_id(), 0, "test.root");
        root.tag("kind=test");
        let trace_id = root.trace_id();
        let child = Span::start(trace_id, root.id(), "test.child");
        assert!(root.is_recording() && child.is_recording());
        let (root_id, child_id) = (root.id(), child.id());
        assert!(root_id >= 1 && child_id > root_id);
        child.finish();
        root.finish();
        assert!(traces().totals().0 >= before + 2);
        let ours: Vec<SpanRecord> = traces()
            .drain()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        assert_eq!(ours.len(), 2);
        let root_rec = ours.iter().find(|s| s.span_id == root_id).unwrap();
        let child_rec = ours.iter().find(|s| s.span_id == child_id).unwrap();
        assert_eq!(root_rec.name, "test.root");
        assert_eq!(root_rec.detail, "kind=test");
        assert_eq!(root_rec.parent_span_id, 0);
        assert_eq!(child_rec.parent_span_id, root_id);
        assert!(child_rec.end_ns >= child_rec.start_ns);
    }

    #[test]
    fn noop_spans_record_nothing() {
        let before = traces().totals().0;
        let mut span = Span::noop();
        assert!(!span.is_recording());
        assert_eq!((span.id(), span.trace_id()), (0, 0));
        span.tag("ignored");
        span.finish();
        Span::start(0, 5, "test.untraced").finish();
        assert_eq!(traces().totals().0, before);
    }

    #[cfg(feature = "on")]
    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = TraceRing::new(2);
        for i in 0..5u64 {
            ring.record(rec(1, i + 1, 0, "test.span", i, i + 1));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.totals(), (5, 3));
        let spans = ring.snapshot();
        assert_eq!(
            spans.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            vec![4, 5],
            "oldest evicted first"
        );
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[cfg(feature = "on")]
    #[test]
    fn slow_spans_promote_into_the_event_ring() {
        // A zero threshold promotes everything; restore the default after.
        set_slow_span_threshold(Duration::ZERO);
        let trace_id = next_trace_id();
        let mut span = Span::start(trace_id, 0, "test.slow");
        span.tag("kind=stats ns=0");
        span.finish();
        set_slow_span_threshold(DEFAULT_SLOW_SPAN_THRESHOLD);
        let slow: Vec<_> = crate::drain_events()
            .into_iter()
            .filter(|e| e.kind == "trace.slow" && e.detail.contains(&format!("trace={trace_id}")))
            .collect();
        assert_eq!(slow.len(), 1, "exactly one promotion per span");
        assert!(slow[0].detail.contains("name=test.slow"));
        assert!(slow[0].detail.contains("kind=stats ns=0"));
        traces().drain();
    }

    #[test]
    fn trace_server_answers_any_request() {
        use std::io::{Read as _, Write as _};
        let server = TraceServer::bind("127.0.0.1:0").unwrap();
        let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /traces HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("\r\n\r\ntraces "), "{response}");
        server.join();
    }
}
