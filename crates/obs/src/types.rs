//! Mode-independent snapshot types and the Prometheus text renderer.
//!
//! Both the real registry (`feature = "on"`) and the no-op stub produce a
//! [`MetricsSnapshot`]; everything downstream of the atomics — ordering,
//! name mangling, label escaping, bucket cumulativity — lives here, so the
//! exposition format is identical (and identically tested) in both builds.

use std::fmt::Write as _;

/// Number of finite histogram buckets. Bucket `b < HISTOGRAM_BUCKETS`
/// counts values whose bit length is `b` — i.e. values `v ≤ 2^b − 1`, so
/// the bucket's Prometheus `le` bound is exactly `2^b − 1` (bucket 0 holds
/// only zeros). One extra overflow bucket catches everything else
/// (`le="+Inf"`). With 40 finite buckets the largest finite bound is
/// `2^39 − 1` ≈ 5.5 · 10¹¹ — about nine minutes in nanoseconds, or half a
/// terabyte in bytes, with +Inf absorbing the pathological tail.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The finite `le` bound of histogram bucket `b` (see
/// [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_bound(b: usize) -> u64 {
    debug_assert!(b < HISTOGRAM_BUCKETS);
    (1u64 << b) - 1
}

/// The bucket a value falls into: its bit length, clamped to the overflow
/// bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS)
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(le, cumulative_count)` per finite bucket, in bound order; the
    /// implicit `+Inf` bucket's cumulative count is [`Self::count`].
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping `u64` arithmetic).
    pub sum: u64,
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time signed gauge.
    Gauge(i64),
    /// Fixed-log-bucket histogram.
    Histogram(HistogramSnapshot),
}

/// One registered series: a metric name, an optional `key="value"` label,
/// and the value read at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// The registration name (dotted, e.g. `server.requests`).
    pub name: &'static str,
    /// The series label, if the metric was registered with one.
    pub label: Option<(&'static str, &'static str)>,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time view of a whole registry, sorted by `(name, label)` so
/// repeated snapshots of unchanged state render byte-identically.
///
/// Consistency: values are read with relaxed atomics, one series at a
/// time — a snapshot is *per-series* exact but not a cross-series
/// consistent cut (scrape-grade, like every Prometheus exposition).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The series, sorted by `(name, label value)`.
    pub points: Vec<MetricPoint>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per family, then one sample
    /// line per series (histograms expand to `_bucket`/`_sum`/`_count`),
    /// with registration names mangled to valid Prometheus names
    /// ([`prometheus_name`]) and label values escaped
    /// ([`escape_label_value`]).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut last_family: Option<&str> = None;
        for point in &self.points {
            let prom = prometheus_name(point.name);
            if last_family != Some(point.name) {
                let kind = match point.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {prom} {kind}");
                last_family = Some(point.name);
            }
            match &point.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{prom}{} {v}", label_set(point.label, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{prom}{} {v}", label_set(point.label, None));
                }
                MetricValue::Histogram(h) => {
                    for &(le, cum) in &h.buckets {
                        let _ = writeln!(
                            out,
                            "{prom}_bucket{} {cum}",
                            label_set(point.label, Some(&le.to_string()))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{prom}_bucket{} {}",
                        label_set(point.label, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(out, "{prom}_sum{} {}", label_set(point.label, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{prom}_count{} {}",
                        label_set(point.label, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// Renders a `{key="value",le="…"}` label set ("" when empty).
fn label_set(label: Option<(&str, &str)>, le: Option<&str>) -> String {
    match (label, le) {
        (None, None) => String::new(),
        (Some((k, v)), None) => format!("{{{k}=\"{}\"}}", escape_label_value(v)),
        (None, Some(le)) => format!("{{le=\"{le}\"}}"),
        (Some((k, v)), Some(le)) => {
            format!("{{{k}=\"{}\",le=\"{le}\"}}", escape_label_value(v))
        }
    }
}

/// Mangles a dotted registration name into a valid Prometheus metric name:
/// `pts_` prefix, dots (and any other non-`[a-zA-Z0-9_]` byte) become
/// underscores. The prefix also guarantees the first character is legal
/// regardless of the registration name.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("pts_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value for the text exposition format: backslash,
/// double quote, and line feed (the three characters the format reserves).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        // Every value must land in the bucket whose `le` bound is the
        // smallest bound ≥ the value — the definition of cumulativity.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = bucket_index(v);
            if b < HISTOGRAM_BUCKETS {
                assert!(v <= bucket_bound(b), "v={v} above its bucket bound");
                if b > 0 {
                    assert!(v > bucket_bound(b - 1), "v={v} not above prior bound");
                }
            } else {
                assert!(v > bucket_bound(HISTOGRAM_BUCKETS - 1));
            }
        }
    }

    #[test]
    fn names_are_mangled_and_prefixed() {
        assert_eq!(prometheus_name("server.requests"), "pts_server_requests");
        assert_eq!(prometheus_name("a-b c"), "pts_a_b_c");
    }

    #[test]
    fn label_values_escape_reserved_characters() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }
}
