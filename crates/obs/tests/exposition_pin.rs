//! Pins the Prometheus text exposition format, byte for byte.
//!
//! A scraper config written against one release must parse every later
//! release, so the rendered grammar — `# TYPE` placement, name mangling,
//! label syntax, histogram expansion, ordering — is a compatibility
//! surface like the wire format. The snapshot types are mode-independent,
//! so the exact-string pin holds in both feature builds; the registry
//! round-trip half runs only when obs is compiled on.

use pts_obs::{HistogramSnapshot, MetricPoint, MetricValue, MetricsSnapshot};

/// The exact text a handcrafted snapshot must render to. Any diff here is
/// a breaking change for deployed scrapers — change it knowingly.
#[test]
fn exposition_format_is_pinned() {
    let snapshot = MetricsSnapshot {
        points: vec![
            MetricPoint {
                name: "server.conn.active",
                label: None,
                value: MetricValue::Gauge(-2),
            },
            MetricPoint {
                name: "server.lat.ns",
                label: None,
                value: MetricValue::Histogram(HistogramSnapshot {
                    buckets: vec![(0, 1), (1, 2), (3, 4)],
                    count: 5,
                    sum: 1006,
                }),
            },
            MetricPoint {
                name: "server.requests",
                label: Some(("kind", "ingest")),
                value: MetricValue::Counter(7),
            },
            MetricPoint {
                name: "server.requests",
                label: Some(("kind", "weird \"k\"\n\\end")),
                value: MetricValue::Counter(1),
            },
        ],
    };
    let expected = "\
# TYPE pts_server_conn_active gauge
pts_server_conn_active -2
# TYPE pts_server_lat_ns histogram
pts_server_lat_ns_bucket{le=\"0\"} 1
pts_server_lat_ns_bucket{le=\"1\"} 2
pts_server_lat_ns_bucket{le=\"3\"} 4
pts_server_lat_ns_bucket{le=\"+Inf\"} 5
pts_server_lat_ns_sum 1006
pts_server_lat_ns_count 5
# TYPE pts_server_requests counter
pts_server_requests{kind=\"ingest\"} 7
pts_server_requests{kind=\"weird \\\"k\\\"\\n\\\\end\"} 1
";
    assert_eq!(snapshot.render_prometheus(), expected);
}

/// The live registry renders through the same pinned grammar: real
/// handles, real atomics, deterministic byte-identical repeat renders.
#[cfg(feature = "on")]
#[test]
fn registry_round_trip_matches_pinned_grammar() {
    let r = pts_obs::registry();
    r.counter("pin.requests").add(3);
    r.counter_labeled("pin.hits", "kind", "b").add(2);
    r.counter_labeled("pin.hits", "kind", "a").inc();
    r.gauge("pin.active").add(7);
    let h = r.histogram("pin.lat");
    for v in [0u64, 1, 2, 3, 1000] {
        h.observe(v);
    }

    let text = pts_obs::render_prometheus();
    for line in [
        "# TYPE pts_pin_requests counter\npts_pin_requests 3\n",
        // Labeled series sort by label value regardless of registration
        // order.
        "pts_pin_hits{kind=\"a\"} 1\npts_pin_hits{kind=\"b\"} 2\n",
        "pts_pin_active 7\n",
        // Cumulative log-bucket counts: 0 ≤ le=0, 1 ≤ le=1, {2,3} ≤ le=3,
        // 1000 ≤ le=1023.
        "pts_pin_lat_bucket{le=\"0\"} 1\n",
        "pts_pin_lat_bucket{le=\"1\"} 2\n",
        "pts_pin_lat_bucket{le=\"3\"} 4\n",
        "pts_pin_lat_bucket{le=\"7\"} 4\n",
        "pts_pin_lat_bucket{le=\"1023\"} 5\n",
        "pts_pin_lat_bucket{le=\"+Inf\"} 5\n",
        "pts_pin_lat_sum 1006\npts_pin_lat_count 5\n",
    ] {
        assert!(text.contains(line), "missing {line:?} in:\n{text}");
    }
    assert_eq!(
        text,
        pts_obs::render_prometheus(),
        "unchanged state must render byte-identically"
    );
}

/// The obs-off build renders an empty exposition — same grammar, no
/// series — so a scraper pointed at an uninstrumented build sees a valid
/// (vacuous) page rather than an error.
#[cfg(not(feature = "on"))]
#[test]
fn off_build_renders_empty() {
    let r = pts_obs::registry();
    r.counter("pin.requests").add(3);
    assert_eq!(pts_obs::render_prometheus(), "");
}
