//! Adversarial-input fuzzing of the scrape endpoint.
//!
//! The `MetricsServer` contract is "never parse, always answer": whatever
//! a peer sends — a real HTTP request, random bytes, one byte per poll
//! interval, or megabytes of garbage — it must receive exactly one
//! well-formed `HTTP/1.0 200` response carrying a valid Prometheus text
//! exposition, within the configured deadline, and never crash, hang, or
//! vary the response grammar. These tests are the enforcement.

use pts_obs::{MetricsServer, MetricsServerConfig};
use pts_util::Xoshiro256pp;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Connects, writes `payload`, then reads the full response to EOF.
fn exchange(server: &MetricsServer, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).expect("request written");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response read");
    response
}

/// Asserts the response is one well-formed `HTTP/1.0 200` with a
/// `Content-Length` that matches the body, and that the body is a valid
/// exposition page: every line is a `# TYPE` comment or a
/// `pts_<name>[{labels}] <numeric value>` sample.
fn assert_valid_scrape_response(response: &[u8]) {
    let text = std::str::from_utf8(response).expect("response is UTF-8");
    assert!(
        text.starts_with("HTTP/1.0 200 OK\r\n"),
        "bad status line: {:?}",
        &text[..text.len().min(60)]
    );
    let (header, body) = text.split_once("\r\n\r\n").expect("header/body split");
    assert!(
        header.contains("Content-Type: text/plain; version=0.0.4"),
        "missing exposition content type: {header}"
    );
    let declared: usize = header
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(declared, body.len(), "Content-Length mismatch");
    for line in body.lines() {
        if line.is_empty() || line.starts_with("# TYPE pts_") {
            continue;
        }
        assert!(line.starts_with("pts_"), "unprefixed sample line: {line}");
        let value = line.rsplit(' ').next().expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in line: {line}"
        );
    }
}

#[test]
fn honest_get_gets_a_valid_exposition() {
    // Ensure at least one series exists in the instrumented build so the
    // body-validating loop has lines to chew on.
    pts_obs::registry().counter("fuzz.priming").add(42);
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let response = exchange(&server, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_valid_scrape_response(&response);
    if pts_obs::enabled() {
        assert!(
            std::str::from_utf8(&response)
                .unwrap()
                .contains("pts_fuzz_priming 42"),
            "primed counter missing from exposition"
        );
    }
    server.join();
}

#[test]
fn random_byte_soup_always_gets_a_valid_response() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        MetricsServerConfig {
            // Soup rarely contains a header terminator; keep the
            // answer-anyway deadline short so the test stays fast.
            read_deadline: Duration::from_millis(200),
            max_request_bytes: 4096,
        },
    )
    .expect("bind");
    let mut rng = Xoshiro256pp::new(0xF00D);
    for round in 0..8 {
        let len = 1 + (rng.next_u64() % 2048) as usize;
        let mut soup = Vec::with_capacity(len);
        while soup.len() < len {
            soup.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        soup.truncate(len);
        let response = exchange(&server, &soup);
        assert_valid_scrape_response(&response);
        assert!(!response.is_empty(), "round {round} got no response");
    }
    server.join();
}

#[test]
fn slow_trickle_cannot_pin_the_handler_past_the_deadline() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        MetricsServerConfig {
            read_deadline: Duration::from_millis(300),
            max_request_bytes: 8 * 1024,
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Trickle one byte at a time, never completing a header block; the
    // server must answer at its deadline, not wait for us.
    let writer = std::thread::spawn(move || {
        let mut trickle = TcpStream::connect(addr).expect("trickle connect");
        for _ in 0..50 {
            if trickle.write_all(b"G").is_err() {
                break; // server already answered and closed — expected
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    let started = Instant::now();
    stream.write_all(b"G").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response read");
    let waited = started.elapsed();
    assert_valid_scrape_response(&response);
    assert!(
        waited < Duration::from_secs(5),
        "deadline did not fire: waited {waited:?}"
    );
    writer.join().unwrap();
    server.join();
}

#[test]
fn oversized_request_is_truncated_not_buffered() {
    let server = MetricsServer::bind_with(
        "127.0.0.1:0",
        MetricsServerConfig {
            read_deadline: Duration::from_secs(2),
            max_request_bytes: 1024,
        },
    )
    .expect("bind");
    // 256 KiB of header-less garbage: the byte cap must answer long
    // before the deadline would.
    let blob = vec![b'A'; 256 * 1024];
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server may close its read side mid-write once the cap trips;
    // a write error then is acceptable, the response is not optional.
    let _ = stream.write_all(&blob);
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response read");
    assert_valid_scrape_response(&response);
    server.join();
}

#[test]
fn concurrent_scrapers_all_get_valid_responses() {
    pts_obs::registry().counter("fuzz.concurrent").inc();
    let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let scrapers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                stream
                    .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
                    .expect("request");
                let mut response = Vec::new();
                stream.read_to_end(&mut response).expect("response");
                response
            })
        })
        .collect();
    for scraper in scrapers {
        assert_valid_scrape_response(&scraper.join().expect("scraper thread"));
    }
    server.join();
}
