//! Dyadic CountSketch heavy hitters: identify large coordinates with
//! polylogarithmic *query* work instead of a full-universe decode.
//!
//! One CountSketch per dyadic level; level `l` sketches the vector of
//! block sums over blocks of size `2^l`. A query walks down the tree with a
//! beam of the most promising blocks. This is the "fast recovery" mode
//! referenced in DESIGN.md §4 — the experiments verify it agrees with the
//! exhaustive decode.
//!
//! Caveat (documented, standard for signed dyadic trees): block sums can
//! cancel adversarially; with random signs this loses heavy coordinates with
//! negligible probability, and the beam width gives additional slack.

use crate::countsketch::{CountSketch, CountSketchParams};
use crate::traits::LinearSketch;
use pts_util::derive_seed;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// Dyadic tree of CountSketches over `[0, 2^levels)`.
#[derive(Debug, Clone)]
pub struct DyadicHeavyHitters {
    /// `sketches[l]` sketches block sums at granularity `2^l` (level 0 =
    /// individual coordinates).
    sketches: Vec<CountSketch>,
    levels: usize,
}

impl DyadicHeavyHitters {
    /// Builds the tree for a universe of size `≤ 2^ceil(log2 n)`.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize, params: CountSketchParams, seed: u64) -> Self {
        assert!(n >= 2, "universe too small");
        let levels = (n as f64).log2().ceil() as usize;
        let sketches = (0..=levels)
            .map(|l| CountSketch::new(params, derive_seed(seed, l as u64)))
            .collect();
        Self { sketches, levels }
    }

    /// The padded universe size `2^levels`.
    pub fn padded_universe(&self) -> usize {
        1 << self.levels
    }

    /// Returns up to `k` candidate heavy coordinates, sorted by decreasing
    /// estimated magnitude, each with its level-0 estimate.
    ///
    /// `beam` controls the number of blocks kept alive per level
    /// (`beam ≥ k` recommended).
    pub fn top_candidates(&self, k: usize, beam: usize) -> Vec<(u64, f64)> {
        assert!(k >= 1 && beam >= k, "beam must be at least k");
        // Start at the coarsest level with blocks of size 2^levels: a single
        // root block (index 0).
        let mut frontier: Vec<u64> = vec![0];
        for l in (0..self.levels).rev() {
            let mut next: Vec<(u64, f64)> = Vec::with_capacity(frontier.len() * 2);
            for &block in &frontier {
                for child in [2 * block, 2 * block + 1] {
                    let est = self.sketches[l].estimate(child);
                    next.push((child, est.abs()));
                }
            }
            next.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            next.truncate(beam);
            frontier = next.into_iter().map(|(b, _)| b).collect();
        }
        let mut leaves: Vec<(u64, f64)> = frontier
            .into_iter()
            .map(|i| (i, self.sketches[0].estimate(i)))
            .collect();
        leaves.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        leaves.truncate(k);
        leaves
    }

    /// The estimated-argmax coordinate and its estimate.
    pub fn argmax(&self, beam: usize) -> (u64, f64) {
        self.top_candidates(1, beam.max(1))[0]
    }

    /// Point estimate at level 0 (same contract as `CountSketch::estimate`).
    pub fn estimate(&self, i: u64) -> f64 {
        self.sketches[0].estimate(i)
    }
}

impl LinearSketch for DyadicHeavyHitters {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        for (l, sk) in self.sketches.iter_mut().enumerate() {
            sk.update(index >> l, delta);
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.levels, other.levels, "level mismatch");
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge(b);
        }
    }

    fn space_bits(&self) -> usize {
        self.sketches.iter().map(LinearSketch::space_bits).sum()
    }
}

impl Encode for DyadicHeavyHitters {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.levels);
        for cs in &self.sketches {
            cs.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for DyadicHeavyHitters {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let levels = r.get_usize()?;
        if levels == 0 || levels > 63 {
            return Err(WireError::Invalid("dyadic level count"));
        }
        let mut sketches = Vec::with_capacity(levels + 1);
        for _ in 0..=levels {
            sketches.push(CountSketch::decode(r)?);
        }
        Ok(Self { sketches, levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::planted_vector;
    use pts_stream::FrequencyVector;

    fn params() -> CountSketchParams {
        CountSketchParams {
            rows: 5,
            buckets: 64,
        }
    }

    #[test]
    fn finds_single_planted_heavy() {
        let mut values = vec![0i64; 200];
        values[123] = 5_000;
        for (i, v) in values.iter_mut().enumerate() {
            if *v == 0 {
                *v = if i % 2 == 0 { 3 } else { -3 };
            }
        }
        let x = FrequencyVector::from_values(values);
        let mut hh = DyadicHeavyHitters::new(200, params(), 1);
        hh.ingest_vector(&x);
        let (i, est) = hh.argmax(8);
        assert_eq!(i, 123);
        assert!((est - 5_000.0).abs() / 5_000.0 < 0.1);
    }

    #[test]
    fn top_k_matches_planted_set() {
        let x = planted_vector(256, 4, 2_000, 5, 71);
        let mut hh = DyadicHeavyHitters::new(256, params(), 2);
        hh.ingest_vector(&x);
        let top = hh.top_candidates(4, 16);
        let mut got: Vec<u64> = top.iter().map(|&(i, _)| i).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = x
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() == 2_000)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn agrees_with_exhaustive_decode() {
        let x = planted_vector(128, 1, 3_000, 20, 72);
        let mut hh = DyadicHeavyHitters::new(128, params(), 3);
        hh.ingest_vector(&x);
        let mut flat = CountSketch::new(params(), 999);
        flat.ingest_vector(&x);
        let (tree_i, _) = hh.argmax(8);
        let (flat_i, _) = flat.argmax(128);
        // Both must land on the planted coordinate.
        assert_eq!(tree_i, flat_i);
    }

    #[test]
    fn non_power_of_two_universe_is_padded() {
        let hh = DyadicHeavyHitters::new(100, params(), 4);
        assert_eq!(hh.padded_universe(), 128);
    }

    #[test]
    fn space_is_levels_times_table() {
        let hh = DyadicHeavyHitters::new(64, params(), 5);
        let single = CountSketch::new(params(), 0).space_bits();
        assert_eq!(hh.space_bits(), 7 * single); // levels 0..=6
    }
}
