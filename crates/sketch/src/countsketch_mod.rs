//! The JW18-modified CountSketch used in Section 3.
//!
//! Instead of one bucket per row, every (row, bucket, item) triple has an
//! i.i.d. membership indicator `h_{i,j,k} = 1` with probability `1/buckets`,
//! and signs `g_{i,k}` are Rademacher per (row, item). The estimate of item
//! `k` is the median of `g_{i,k}·A_{i,j}` over **all** cells containing `k`.
//! An item can land in several buckets of one row or in none — this is the
//! property the paper's fast-update simulation (geometric bucket gaps)
//! relies on, and it decouples the cell set from any fixed per-row hash.
//!
//! The cell set of an item is regenerated deterministically from
//! `(seed, item)` by geometric jumps across the flattened table, so updates
//! need no per-item state and the expected work per update is `Θ(rows)`.

use crate::countsketch::median_in_place;
use crate::traits::LinearSketch;
use pts_util::variates::{geometric, keyed_sign};
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, Xoshiro256pp};

/// The modified CountSketch table.
#[derive(Debug, Clone)]
pub struct ModCountSketch {
    rows: usize,
    buckets: usize,
    table: Vec<f64>,
    seed: u64,
}

impl ModCountSketch {
    /// Creates an empty table.
    ///
    /// # Panics
    /// Panics on degenerate shapes.
    pub fn new(rows: usize, buckets: usize, seed: u64) -> Self {
        assert!(rows > 0 && buckets > 0, "degenerate table");
        Self {
            rows,
            buckets,
            table: vec![0.0; rows * buckets],
            seed,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The flattened cells `(row, bucket)` containing `item`, derived by
    /// geometric gaps with success probability `1/buckets` — identical in
    /// distribution to i.i.d. Bernoulli membership per cell.
    pub fn cells_of(&self, item: u64) -> Vec<(usize, usize)> {
        let total = self.rows * self.buckets;
        let mut rng = Xoshiro256pp::new(derive_seed(derive_seed(self.seed, 0xCE11), item));
        let p = 1.0 / self.buckets as f64;
        let mut cells = Vec::with_capacity(self.rows + 2);
        let mut pos: u64 = 0;
        loop {
            pos += geometric(&mut rng, p);
            if pos > total as u64 {
                break;
            }
            let flat = (pos - 1) as usize;
            cells.push((flat / self.buckets, flat % self.buckets));
        }
        cells
    }

    /// The Rademacher sign `g_{row, item}`.
    #[inline]
    pub fn sign(&self, row: usize, item: u64) -> i64 {
        keyed_sign(derive_seed(self.seed, 0x5160 + row as u64), item)
    }

    /// Point estimate: median of `g_{i,k}·A_{i,j}` over the item's cells;
    /// `None` if the item was hashed into no cell (probability `e^{−rows}`).
    pub fn estimate(&self, item: u64) -> Option<f64> {
        let cells = self.cells_of(item);
        if cells.is_empty() {
            return None;
        }
        let mut vals: Vec<f64> = cells
            .iter()
            .map(|&(r, b)| self.sign(r, item) as f64 * self.table[r * self.buckets + b])
            .collect();
        Some(median_in_place(&mut vals))
    }

    /// Estimates for `[0, n)`, treating cell-less items as zero.
    pub fn decode_all(&self, n: usize) -> Vec<f64> {
        (0..n as u64)
            .map(|i| self.estimate(i).unwrap_or(0.0))
            .collect()
    }

    /// Direct cell write used by the fast-update simulation (Algorithm 4):
    /// the caller has already aggregated the signed mass for the cell.
    pub fn add_to_cell(&mut self, row: usize, bucket: usize, value: f64) {
        assert!(
            row < self.rows && bucket < self.buckets,
            "cell out of range"
        );
        self.table[row * self.buckets + bucket] += value;
    }

    /// Raw table access for white-box tests.
    #[doc(hidden)]
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// The per-estimate noise scale `‖x‖₂/√buckets`, read off the table:
    /// each row's sum of squared cells is an unbiased `F₂` estimate (signs
    /// cancel cross terms), and the per-cell collision noise is its
    /// `1/buckets` fraction.
    pub fn noise_scale(&self) -> f64 {
        let per_row: f64 = self.table.iter().map(|c| c * c).sum::<f64>() / self.rows as f64;
        (per_row / self.buckets as f64).sqrt()
    }
}

impl LinearSketch for ModCountSketch {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        for (r, b) in self.cells_of(index) {
            let s = self.sign(r, index) as f64;
            self.table[r * self.buckets + b] += s * delta;
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "seed mismatch");
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.buckets, other.buckets, "bucket mismatch");
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
    }

    fn space_bits(&self) -> usize {
        self.table.len() * 64 + 64
    }
}

impl Encode for ModCountSketch {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.rows);
        w.put_usize(self.buckets);
        w.put_u64(self.seed);
        w.put_f64s(&self.table);
        Ok(())
    }
}

impl Decode for ModCountSketch {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.get_usize()?;
        let buckets = r.get_usize()?;
        let seed = r.get_u64()?;
        if !(1..=1024).contains(&rows) || buckets == 0 {
            return Err(WireError::Invalid("mod-countsketch shape"));
        }
        let cells = rows
            .checked_mul(buckets)
            .ok_or(WireError::Invalid("mod-countsketch shape overflow"))?;
        let table = r.get_f64s()?;
        if table.len() != cells {
            return Err(WireError::Invalid("mod-countsketch table length"));
        }
        Ok(Self {
            rows,
            buckets,
            table,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::zipf_vector;

    #[test]
    fn cell_sets_are_deterministic_and_expected_size() {
        let cs = ModCountSketch::new(7, 32, 1);
        let a = cs.cells_of(42);
        let b = cs.cells_of(42);
        assert_eq!(a, b);
        // Expected |cells| = rows; average over many items.
        let total: usize = (0..2_000u64).map(|i| cs.cells_of(i).len()).sum();
        let avg = total as f64 / 2_000.0;
        assert!((avg - 7.0).abs() < 0.3, "avg cells {avg}");
    }

    #[test]
    fn membership_rate_is_one_over_buckets() {
        let cs = ModCountSketch::new(5, 20, 2);
        // Count how often item k occupies a *fixed* cell across items.
        let mut hits = 0usize;
        let items = 20_000u64;
        for k in 0..items {
            if cs.cells_of(k).contains(&(2, 7)) {
                hits += 1;
            }
        }
        let rate = hits as f64 / items as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sparse_vector_recovery() {
        let mut cs = ModCountSketch::new(9, 64, 3);
        cs.update(5, 100.0);
        cs.update(900, -40.0);
        let e5 = cs.estimate(5).unwrap();
        let e900 = cs.estimate(900).unwrap();
        assert!((e5 - 100.0).abs() < 1e-9, "{e5}");
        assert!((e900 + 40.0).abs() < 1e-9, "{e900}");
    }

    #[test]
    fn estimate_error_within_countsketch_bound() {
        let x = zipf_vector(512, 1.0, 300, 81);
        let mut cs = ModCountSketch::new(9, 128, 4);
        cs.ingest_vector(&x);
        let l2 = x.f2().sqrt();
        let bound = 4.0 * l2 / (128f64).sqrt();
        let mut violations = 0;
        for i in 0..512u64 {
            if let Some(est) = cs.estimate(i) {
                if (est - x.value(i) as f64).abs() > bound {
                    violations += 1;
                }
            }
        }
        assert!(violations <= 10, "violations {violations}");
    }

    #[test]
    fn update_linearity() {
        let mut a = ModCountSketch::new(5, 16, 5);
        let mut b = ModCountSketch::new(5, 16, 5);
        a.update(3, 10.0);
        b.update(3, 4.0);
        b.update(3, 6.0);
        assert_eq!(a.table(), b.table());
    }

    #[test]
    fn add_to_cell_matches_manual_update() {
        // Reconstruct an update by writing its cells directly.
        let mut auto = ModCountSketch::new(5, 16, 6);
        auto.update(11, 2.5);
        let mut manual = ModCountSketch::new(5, 16, 6);
        for (r, b) in manual.cells_of(11) {
            let s = manual.sign(r, 11) as f64;
            manual.add_to_cell(r, b, s * 2.5);
        }
        assert_eq!(auto.table(), manual.table());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_to_cell_bounds_checked() {
        let mut cs = ModCountSketch::new(2, 2, 7);
        cs.add_to_cell(2, 0, 1.0);
    }
}
