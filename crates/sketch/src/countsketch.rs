//! Classic CountSketch \[CCF04\]: `d` rows × `b` buckets, per-row bucket and
//! sign hashes, median-of-rows decoding.
//!
//! Guarantee: for each `i`, `|x̂_i − x_i| ≤ O(‖x_tail‖₂ / √b)` with
//! probability `1 − 2^{−Ω(d)}`. The perfect L_p samplers lean on this twice:
//! to find the maximum of the scaled vector (Lemma 1.17 makes it a heavy
//! hitter) and to extract near-unbiased estimates `x̂_j^{(a)}` for the
//! rejection step (Corollary 2.2/2.3).
//!
//! Hashing: rows use keyed splitmix finalizers (`pts_util::keyed_u64`) —
//! the same random-oracle-style keyed randomness that drives the samplers'
//! per-index exponentials, chosen because CountSketch evaluation is the hot
//! path of every experiment (the formally pairwise/4-wise polynomial family
//! over 2^61−1 costs ~10× more per update; it remains in use where k-wise
//! independence is load-bearing for an estimator's variance analysis — AMS
//! and sparse recovery). The unbiasedness and error-bound tests below
//! validate the behaviour empirically.

use crate::traits::LinearSketch;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, keyed_u64};

/// Configuration for a [`CountSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountSketchParams {
    /// Number of rows `d` (the median is taken across rows).
    pub rows: usize,
    /// Number of buckets per row `b`.
    pub buckets: usize,
}

impl CountSketchParams {
    /// Standard parameters: `rows = Θ(log n)` rows for failure probability
    /// `1/poly(n)` and the requested bucket count.
    pub fn for_universe(n: usize, buckets: usize) -> Self {
        let rows = ((n.max(2) as f64).ln().ceil() as usize).clamp(3, 9) | 1;
        Self { rows, buckets }
    }
}

/// The classic CountSketch table.
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: usize,
    buckets: usize,
    table: Vec<f64>,
    row_seeds: Vec<u64>,
    seed: u64,
}

impl CountSketch {
    /// Creates an empty sketch with the given parameters and seed.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `buckets == 0`.
    pub fn new(params: CountSketchParams, seed: u64) -> Self {
        assert!(params.rows > 0 && params.buckets > 0, "degenerate table");
        let base = derive_seed(seed, 0x6353);
        let row_seeds = (0..params.rows)
            .map(|r| derive_seed(base, r as u64))
            .collect();
        Self {
            rows: params.rows,
            buckets: params.buckets,
            table: vec![0.0; params.rows * params.buckets],
            row_seeds,
            seed,
        }
    }

    /// The (bucket, sign) pair of index `i` in row `r`: one keyed-hash
    /// evaluation supplies 63 bits for the bucket and 1 bit for the sign.
    #[inline]
    fn slot(&self, r: usize, i: u64) -> (usize, f64) {
        let h = keyed_u64(self.row_seeds[r], i);
        let bucket = (((h >> 1) as u128 * self.buckets as u128) >> 63) as usize;
        let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
        (bucket, sign)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The seed this sketch was built with (two sketches merge iff equal).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn cell(&self, row: usize, bucket: usize) -> usize {
        row * self.buckets + bucket
    }

    /// Point estimate `x̂_i`: median over rows of `sign · bucket`.
    pub fn estimate(&self, i: u64) -> f64 {
        let mut vals: Vec<f64> = (0..self.rows)
            .map(|r| {
                let (b, s) = self.slot(r, i);
                s * self.table[self.cell(r, b)]
            })
            .collect();
        median_in_place(&mut vals)
    }

    /// Decodes estimates for the whole universe `[0, n)`.
    ///
    /// O(n·rows) *query* work — the space stays sublinear; see DESIGN.md §4
    /// on recovery modes.
    pub fn decode_all(&self, n: usize) -> Vec<f64> {
        (0..n as u64).map(|i| self.estimate(i)).collect()
    }

    /// The index with the largest estimated magnitude over `[0, n)`,
    /// together with its estimate.
    pub fn argmax(&self, n: usize) -> (u64, f64) {
        let mut best = (0u64, f64::NEG_INFINITY);
        for i in 0..n as u64 {
            let e = self.estimate(i);
            if e.abs() > best.1.abs() || best.1 == f64::NEG_INFINITY {
                best = (i, e);
            }
        }
        best
    }

    /// Raw table access for white-box tests.
    #[doc(hidden)]
    pub fn table(&self) -> &[f64] {
        &self.table
    }
}

impl LinearSketch for CountSketch {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        for r in 0..self.rows {
            let (b, s) = self.slot(r, index);
            let cell = self.cell(r, b);
            self.table[cell] += s * delta;
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "seed mismatch");
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.buckets, other.buckets, "bucket mismatch");
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
    }

    fn space_bits(&self) -> usize {
        // Counters plus one 64-bit seed per row.
        self.table.len() * 64 + self.row_seeds.len() * 64
    }
}

impl Encode for CountSketch {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.rows);
        w.put_usize(self.buckets);
        w.put_u64(self.seed);
        w.put_f64s(&self.table);
        Ok(())
    }
}

impl Decode for CountSketch {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.get_usize()?;
        let buckets = r.get_usize()?;
        let seed = r.get_u64()?;
        if !(1..=1024).contains(&rows) || buckets == 0 {
            return Err(WireError::Invalid("countsketch shape"));
        }
        let cells = rows
            .checked_mul(buckets)
            .ok_or(WireError::Invalid("countsketch shape overflow"))?;
        let table = r.get_f64s()?;
        if table.len() != cells {
            return Err(WireError::Invalid("countsketch table length"));
        }
        // Row seeds are pure functions of the seed — recomputed, not shipped.
        let base = derive_seed(seed, 0x6353);
        let row_seeds = (0..rows).map(|row| derive_seed(base, row as u64)).collect();
        Ok(Self {
            rows,
            buckets,
            table,
            row_seeds,
            seed,
        })
    }
}

/// Median of a mutable slice (averages the middle pair on even length).
pub(crate) fn median_in_place(vals: &mut [f64]) -> f64 {
    assert!(!vals.is_empty(), "median of empty slice");
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        0.5 * (vals[n / 2 - 1] + vals[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::zipf_vector;
    use pts_stream::{FrequencyVector, Stream, StreamStyle};

    fn params() -> CountSketchParams {
        CountSketchParams {
            rows: 5,
            buckets: 64,
        }
    }

    #[test]
    fn exact_recovery_when_sparse() {
        // With far fewer non-zeros than buckets, collisions are rare and the
        // median across 5 rows recovers values exactly.
        let mut cs = CountSketch::new(params(), 1);
        cs.update(3, 10.0);
        cs.update(47, -6.0);
        assert!((cs.estimate(3) - 10.0).abs() < 1e-9);
        assert!((cs.estimate(47) + 6.0).abs() < 1e-9);
        assert!(cs.estimate(12).abs() < 1e-9 + 16.0); // untouched index: noise only
    }

    #[test]
    fn update_is_linear_in_delta() {
        let mut a = CountSketch::new(params(), 2);
        let mut b = CountSketch::new(params(), 2);
        a.update(9, 7.5);
        b.update(9, 5.0);
        b.update(9, 2.5);
        assert_eq!(a.table(), b.table());
    }

    #[test]
    fn stream_and_vector_ingest_agree() {
        let target = zipf_vector(128, 1.1, 500, 3);
        let mut rng = pts_util::Xoshiro256pp::new(4);
        let stream = Stream::from_target(&target, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
        let mut via_stream = CountSketch::new(params(), 5);
        via_stream.ingest_stream(&stream);
        let mut via_vector = CountSketch::new(params(), 5);
        via_vector.ingest_vector(&target);
        for (a, b) in via_stream.table().iter().zip(via_vector.table()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn merge_equals_ingesting_sum() {
        let x = zipf_vector(64, 1.0, 100, 6);
        let y = zipf_vector(64, 1.0, 100, 7);
        let mut sx = CountSketch::new(params(), 8);
        sx.ingest_vector(&x);
        let mut sy = CountSketch::new(params(), 8);
        sy.ingest_vector(&y);
        sx.merge(&sy);
        let mut sxy = CountSketch::new(params(), 8);
        sxy.ingest_vector(&x.add(&y));
        for (a, b) in sx.table().iter().zip(sxy.table()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_different_seeds() {
        let mut a = CountSketch::new(params(), 1);
        let b = CountSketch::new(params(), 2);
        a.merge(&b);
    }

    #[test]
    fn error_bounded_by_l2_over_sqrt_buckets() {
        // Textbook guarantee: per-index error ≲ ‖x‖₂/√b w.h.p.
        let n = 512;
        let x = zipf_vector(n, 0.8, 200, 9);
        let l2 = x.f2().sqrt();
        let cs_params = CountSketchParams {
            rows: 7,
            buckets: 128,
        };
        let mut cs = CountSketch::new(cs_params, 10);
        cs.ingest_vector(&x);
        let bound = 4.0 * l2 / (cs_params.buckets as f64).sqrt();
        let mut violations = 0;
        for i in 0..n as u64 {
            if (cs.estimate(i) - x.value(i) as f64).abs() > bound {
                violations += 1;
            }
        }
        assert!(violations <= n / 100, "violations {violations}");
    }

    #[test]
    fn estimate_is_empirically_unbiased() {
        // Average the estimate of one fixed index over many independent
        // sketches: the signed collision noise cancels.
        let x = zipf_vector(256, 1.0, 300, 11);
        let i = 17u64;
        let truth = x.value(i) as f64;
        let reps = 400;
        let mean_est: f64 = (0..reps)
            .map(|r| {
                let mut cs = CountSketch::new(
                    CountSketchParams {
                        rows: 1,
                        buckets: 32,
                    },
                    1000 + r,
                );
                cs.ingest_vector(&x);
                cs.estimate(i)
            })
            .sum::<f64>()
            / reps as f64;
        let l2 = x.f2().sqrt();
        let standard_err = l2 / 32f64.sqrt() / (reps as f64).sqrt() * 3.0;
        assert!(
            (mean_est - truth).abs() < standard_err.max(1.0),
            "mean {mean_est} vs truth {truth}"
        );
    }

    #[test]
    fn argmax_finds_planted_heavy_hitter() {
        let mut values = vec![1i64; 256];
        values[99] = 10_000;
        let x = FrequencyVector::from_values(values);
        let mut cs = CountSketch::new(params(), 12);
        cs.ingest_vector(&x);
        let (i, est) = cs.argmax(256);
        assert_eq!(i, 99);
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.05);
    }

    #[test]
    fn space_bits_counts_table_and_seeds() {
        let cs = CountSketch::new(
            CountSketchParams {
                rows: 3,
                buckets: 16,
            },
            1,
        );
        // 48 counters * 64 bits + 3 row seeds * 64 bits.
        assert_eq!(cs.space_bits(), 48 * 64 + 3 * 64);
    }

    #[test]
    fn median_in_place_both_parities() {
        let mut odd = [3.0, 1.0, 2.0];
        assert_eq!(median_in_place(&mut odd), 2.0);
        let mut even = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_in_place(&mut even), 2.5);
    }

    #[test]
    fn for_universe_picks_odd_row_count() {
        for n in [2usize, 100, 10_000, 1_000_000] {
            let p = CountSketchParams::for_universe(n, 8);
            assert!(p.rows % 2 == 1 && (3..=9).contains(&p.rows), "n={n}");
        }
    }
}
