//! Near-unbiased `F_p` estimation with variance control — the role played by
//! Ganguly's Taylor-polynomial estimator (\[Gan15\], Theorem 5.1) in
//! Algorithm 5.
//!
//! Construction (see DESIGN.md §4 for the substitution rationale): decode a
//! CountSketch of `x`, keep coordinates whose estimate clears a noise
//! threshold, and sum `|x̂_i|^p` with a second-order Taylor bias correction
//! `−½p(p−1)|x̂_i|^{p−2}σ²` where `σ²` is the per-estimate collision
//! variance `F₂/(b·rows_effective)`. For `p > 2` the moment is dominated by
//! coordinates far above the noise floor, so the thresholded tail and the
//! higher Taylor orders are lower-order effects; the tests measure both bias
//! (≪ the 1/√50 noise Theorem 5.1 budgets for) and variance (≤ F_p²/50 at
//! the default width).

use crate::ams::AmsF2;
use crate::countsketch::{CountSketch, CountSketchParams};
use crate::traits::LinearSketch;
use pts_util::derive_seed;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// Parameters for [`FpTaylor`].
#[derive(Debug, Clone, Copy)]
pub struct FpTaylorParams {
    /// Moment order `p > 2`.
    pub p: f64,
    /// CountSketch buckets per row (width drives both bias and variance).
    pub buckets: usize,
    /// CountSketch rows.
    pub rows: usize,
    /// Inclusion threshold in units of the per-estimate noise σ.
    pub threshold_sigmas: f64,
}

impl FpTaylorParams {
    /// Defaults sized like Theorem 5.1's `O(n^{1−2/p} log² n)` budget.
    pub fn for_universe(n: usize, p: f64) -> Self {
        assert!(p > 2.0, "Taylor Fp estimator requires p > 2");
        let nf = n.max(4) as f64;
        let buckets =
            ((nf.powf(1.0 - 2.0 / p) * nf.log2() * 4.0).ceil() as usize).clamp(32, n.max(32));
        Self {
            p,
            buckets,
            rows: 5,
            threshold_sigmas: 3.0,
        }
    }
}

/// The heavy-hitter + Taylor-correction `F_p` estimator.
#[derive(Debug, Clone)]
pub struct FpTaylor {
    params: FpTaylorParams,
    universe: usize,
    countsketch: CountSketch,
    ams: AmsF2,
}

impl FpTaylor {
    /// Creates the estimator over universe `[0, n)`.
    pub fn new(n: usize, params: FpTaylorParams, seed: u64) -> Self {
        assert!(params.p > 2.0, "p must exceed 2");
        let cs = CountSketch::new(
            CountSketchParams {
                rows: params.rows,
                buckets: params.buckets,
            },
            derive_seed(seed, 1),
        );
        let ams = AmsF2::for_2_approx(n, derive_seed(seed, 2));
        Self {
            params,
            universe: n,
            countsketch: cs,
            ams,
        }
    }

    /// The `F̂_p` estimate.
    pub fn estimate(&self) -> f64 {
        let p = self.params.p;
        let f2_hat = self.ams.estimate().max(0.0);
        // Median-of-rows estimates have collision variance ≈ F₂/b per row;
        // the median over `rows` shrinks it by roughly the row count.
        let sigma2 = f2_hat / (self.params.buckets as f64 * self.params.rows as f64);
        let sigma = sigma2.sqrt();
        let threshold = self.params.threshold_sigmas * sigma;
        let mut total = 0.0;
        for i in 0..self.universe as u64 {
            let est = self.countsketch.estimate(i);
            let mag = est.abs();
            if mag <= threshold {
                continue;
            }
            let raw = mag.powf(p);
            let correction = 0.5 * p * (p - 1.0) * mag.powf(p - 2.0) * sigma2;
            total += (raw - correction).max(0.0);
        }
        total
    }

    /// The moment order.
    pub fn p(&self) -> f64 {
        self.params.p
    }
}

impl LinearSketch for FpTaylor {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        self.countsketch.update(index, delta);
        self.ams.update(index, delta);
    }

    /// Merges a same-seeded shard estimator (distributed aggregation).
    ///
    /// # Panics
    /// Panics if the shards are incompatible.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.countsketch.merge(&other.countsketch);
        self.ams.merge(&other.ams);
    }

    fn space_bits(&self) -> usize {
        self.countsketch.space_bits() + self.ams.space_bits()
    }
}

impl Encode for FpTaylor {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_f64(self.params.p);
        w.put_usize(self.params.buckets);
        w.put_usize(self.params.rows);
        w.put_f64(self.params.threshold_sigmas);
        w.put_usize(self.universe);
        self.countsketch.encode(w)?;
        self.ams.encode(w)
    }
}

impl Decode for FpTaylor {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = r.get_f64()?;
        let buckets = r.get_usize()?;
        let rows = r.get_usize()?;
        let threshold_sigmas = r.get_f64()?;
        let universe = r.get_usize()?;
        if !(p.is_finite() && p > 2.0) || universe < 2 {
            return Err(WireError::Invalid("taylor-fp parameters"));
        }
        let params = FpTaylorParams {
            p,
            buckets,
            rows,
            threshold_sigmas,
        };
        let countsketch = CountSketch::decode(r)?;
        if countsketch.rows() != rows || countsketch.buckets() != buckets {
            return Err(WireError::Invalid("taylor-fp sketch shape"));
        }
        let ams = AmsF2::decode(r)?;
        Ok(Self {
            params,
            universe,
            countsketch,
            ams,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::{planted_vector, zipf_vector};
    use pts_util::stats::{mean, variance};

    /// Runs `reps` independent estimators and returns (relative bias,
    /// relative variance) against the exact `F_p`.
    fn bias_and_var(x: &pts_stream::FrequencyVector, p: f64, reps: u64) -> (f64, f64) {
        let n = x.n();
        let truth = x.fp_moment(p);
        let ests: Vec<f64> = (0..reps)
            .map(|r| {
                let mut e = FpTaylor::new(n, FpTaylorParams::for_universe(n, p), 40_000 + r);
                e.ingest_vector(x);
                e.estimate()
            })
            .collect();
        let bias = (mean(&ests) - truth) / truth;
        let rel_var = variance(&ests) / (truth * truth);
        (bias, rel_var)
    }

    #[test]
    fn near_unbiased_with_small_variance_on_zipf() {
        let x = zipf_vector(256, 1.1, 300, 61);
        let (bias, rel_var) = bias_and_var(&x, 3.0, 60);
        // Theorem 5.1 budget: unbiased with Var ≤ Fp²/50 (rel var 0.02).
        assert!(bias.abs() < 0.05, "relative bias {bias}");
        assert!(rel_var < 0.02, "relative variance {rel_var}");
    }

    #[test]
    fn near_unbiased_on_planted() {
        let x = planted_vector(256, 3, 600, 8, 62);
        let (bias, rel_var) = bias_and_var(&x, 4.0, 60);
        assert!(bias.abs() < 0.05, "relative bias {bias}");
        assert!(rel_var < 0.02, "relative variance {rel_var}");
    }

    #[test]
    fn estimate_positive_and_finite() {
        let x = zipf_vector(64, 1.0, 50, 63);
        let mut e = FpTaylor::new(64, FpTaylorParams::for_universe(64, 2.5), 1);
        e.ingest_vector(&x);
        let est = e.estimate();
        assert!(est.is_finite() && est > 0.0);
    }

    #[test]
    fn empty_vector_estimates_zero() {
        let e = FpTaylor::new(64, FpTaylorParams::for_universe(64, 3.0), 2);
        assert_eq!(e.estimate(), 0.0);
    }

    #[test]
    fn wider_tables_reduce_error() {
        let x = zipf_vector(256, 1.0, 200, 64);
        let truth = x.fp_moment(3.0);
        let err_at = |buckets: usize| {
            let params = FpTaylorParams {
                p: 3.0,
                buckets,
                rows: 5,
                threshold_sigmas: 3.0,
            };
            let errs: Vec<f64> = (0..20)
                .map(|r| {
                    let mut e = FpTaylor::new(256, params, 80_000 + r);
                    e.ingest_vector(&x);
                    ((e.estimate() - truth) / truth).abs()
                })
                .collect();
            mean(&errs)
        };
        let narrow = err_at(32);
        let wide = err_at(256);
        assert!(wide < narrow, "narrow {narrow} vs wide {wide}");
    }
}
