//! AMS F₂ estimation \[AMS99\] and the Gaussian (2-stable) L₂ estimator.
//!
//! `AmsF2` is the classic median-of-means tug-of-war sketch: each counter
//! holds `Σ σ_i x_i` for 4-wise independent signs; squaring is unbiased for
//! `F₂` with variance `2F₂²`, means over columns shrink the variance,
//! medians over rows boost confidence. Algorithm 1 uses it for `F̂₂`.
//!
//! `GaussianL2` is the 2-stable variant of §3 (line 14 of Algorithm 4):
//! each counter holds `Σ φ_i x_i` with i.i.d. Gaussians, so each counter is
//! distributed `N(0, ‖x‖₂²)` and `median_j |counter_j| / Φ^{-1}(3/4)` is a
//! consistent estimate of `‖x‖₂`.

use crate::countsketch::median_in_place;
use crate::traits::LinearSketch;
use pts_util::variates::keyed_gaussian;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, KWiseHash, Xoshiro256pp};

/// Median of `|N(0,1)|`, i.e. `Φ^{-1}(3/4)` — the normalizer for
/// median-based Gaussian norm estimation.
pub const GAUSSIAN_ABS_MEDIAN: f64 = 0.674_489_750_196_081_7;

/// AMS tug-of-war sketch for `F₂ = ‖x‖₂²`.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    rows: usize,
    cols: usize,
    counters: Vec<f64>,
    signs: Vec<KWiseHash>,
}

impl AmsF2 {
    /// `rows × cols` counters: relative error `O(1/√cols)` with failure
    /// probability `2^{−Ω(rows)}`.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate AMS configuration");
        let mut rng = Xoshiro256pp::new(derive_seed(seed, 0xA352));
        let signs = (0..rows * cols)
            .map(|_| KWiseHash::new(4, &mut rng))
            .collect();
        Self {
            rows,
            cols,
            counters: vec![0.0; rows * cols],
            signs,
        }
    }

    /// Standard configuration for a 2-approximation w.h.p. at universe `n`.
    pub fn for_2_approx(n: usize, seed: u64) -> Self {
        let rows = ((n.max(2) as f64).ln().ceil() as usize).clamp(5, 9) | 1;
        Self::new(rows, 24, seed)
    }

    /// The `F₂` estimate: median over rows of the mean over columns of the
    /// squared counters.
    pub fn estimate(&self) -> f64 {
        let mut row_means: Vec<f64> = (0..self.rows)
            .map(|r| {
                let row = &self.counters[r * self.cols..(r + 1) * self.cols];
                row.iter().map(|c| c * c).sum::<f64>() / self.cols as f64
            })
            .collect();
        median_in_place(&mut row_means)
    }

    /// `‖x‖₂` estimate.
    pub fn l2_estimate(&self) -> f64 {
        self.estimate().max(0.0).sqrt()
    }
}

impl LinearSketch for AmsF2 {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        for (c, h) in self.counters.iter_mut().zip(&self.signs) {
            *c += h.sign(index) as f64 * delta;
        }
    }

    /// Merges a compatible sketch (same seed/shape).
    ///
    /// # Panics
    /// Panics if shapes differ (seed compatibility is the caller's
    /// responsibility and is checked indirectly via shape).
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn space_bits(&self) -> usize {
        self.counters.len() * 64 + self.signs.iter().map(KWiseHash::space_bits).sum::<usize>()
    }
}

impl Encode for AmsF2 {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        w.put_f64s(&self.counters);
        w.put_usize(self.signs.len());
        for h in &self.signs {
            h.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for AmsF2 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        if !(1..=1024).contains(&rows) || !(1..=1 << 20).contains(&cols) {
            return Err(WireError::Invalid("ams shape"));
        }
        let cells = rows
            .checked_mul(cols)
            .ok_or(WireError::Invalid("ams shape overflow"))?;
        let counters = r.get_f64s()?;
        if counters.len() != cells {
            return Err(WireError::Invalid("ams counter length"));
        }
        let sign_count = r.get_len(2)?;
        if sign_count != cells {
            return Err(WireError::Invalid("ams sign-hash length"));
        }
        let mut signs = Vec::with_capacity(sign_count);
        for _ in 0..sign_count {
            signs.push(KWiseHash::decode(r)?);
        }
        Ok(Self {
            rows,
            cols,
            counters,
            signs,
        })
    }
}

/// Gaussian 2-stable L₂ estimator (`R` in Algorithm 4).
#[derive(Debug, Clone)]
pub struct GaussianL2 {
    counters: Vec<f64>,
    seed: u64,
}

impl GaussianL2 {
    /// `reps` independent Gaussian projections.
    ///
    /// # Panics
    /// Panics if `reps == 0`.
    pub fn new(reps: usize, seed: u64) -> Self {
        assert!(reps > 0, "need at least one repetition");
        Self {
            counters: vec![0.0; reps],
            seed,
        }
    }

    /// Number of independent projections.
    pub fn reps(&self) -> usize {
        self.counters.len()
    }

    /// The consistent `‖x‖₂` estimate `median_j |counter_j| / Φ^{-1}(3/4)`.
    pub fn estimate(&self) -> f64 {
        let mut mags: Vec<f64> = self.counters.iter().map(|c| c.abs()).collect();
        median_in_place(&mut mags) / GAUSSIAN_ABS_MEDIAN
    }

    /// The paper's convention: an over-estimate `R ∈ [‖x‖₂/2, 2‖x‖₂]`
    /// obtained by inflating the median estimate by 5/4 (line 14, §3).
    pub fn conservative_estimate(&self) -> f64 {
        1.25 * self.estimate()
    }
}

impl LinearSketch for GaussianL2 {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        for (j, c) in self.counters.iter_mut().enumerate() {
            *c += keyed_gaussian(derive_seed(self.seed, j as u64), index) * delta;
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "seed mismatch");
        assert_eq!(self.counters.len(), other.counters.len(), "reps mismatch");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn space_bits(&self) -> usize {
        // Counters plus one 64-bit seed (Gaussians are keyed, not stored).
        self.counters.len() * 64 + 64
    }
}

impl Encode for GaussianL2 {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(self.seed);
        w.put_f64s(&self.counters);
        Ok(())
    }
}

impl Decode for GaussianL2 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let seed = r.get_u64()?;
        let counters = r.get_f64s()?;
        if counters.is_empty() {
            return Err(WireError::Invalid("gaussian-l2 needs a repetition"));
        }
        Ok(Self { counters, seed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::{uniform_vector, zipf_vector};
    use pts_stream::{Stream, StreamStyle};

    #[test]
    fn ams_is_2_approx_on_batteries() {
        for (seed, x) in [
            (1u64, zipf_vector(256, 1.1, 400, 21)),
            (2, uniform_vector(256, 30, 22)),
        ] {
            let truth = x.f2();
            let mut ok = 0;
            let trials = 30;
            for t in 0..trials {
                let mut ams = AmsF2::for_2_approx(256, seed * 1000 + t);
                ams.ingest_vector(&x);
                let est = ams.estimate();
                if est >= truth / 2.0 && est <= truth * 2.0 {
                    ok += 1;
                }
            }
            assert!(ok >= trials - 1, "2-approx held {ok}/{trials}");
        }
    }

    #[test]
    fn ams_estimate_is_unbiased_in_expectation() {
        let x = zipf_vector(128, 1.0, 200, 23);
        let truth = x.f2();
        let reps = 300;
        // Single counter per sketch isolates the raw estimator.
        let mean: f64 = (0..reps)
            .map(|r| {
                let mut a = AmsF2::new(1, 1, 5000 + r);
                a.ingest_vector(&x);
                a.estimate()
            })
            .sum::<f64>()
            / reps as f64;
        // Var = 2 F2²; standard error = sqrt(2/reps)·F2.
        let tol = 3.0 * (2.0 / reps as f64).sqrt() * truth;
        assert!((mean - truth).abs() < tol, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn ams_stream_vs_vector_agree() {
        let x = zipf_vector(64, 1.2, 100, 24);
        let mut rng = pts_util::Xoshiro256pp::new(25);
        let s = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
        let mut a = AmsF2::new(5, 8, 7);
        a.ingest_stream(&s);
        let mut b = AmsF2::new(5, 8, 7);
        b.ingest_vector(&x);
        assert!((a.estimate() - b.estimate()).abs() < 1e-6);
    }

    #[test]
    fn ams_merge_linearity() {
        let x = uniform_vector(64, 10, 26);
        let y = uniform_vector(64, 10, 27);
        let mut sx = AmsF2::new(5, 8, 9);
        sx.ingest_vector(&x);
        let mut sy = AmsF2::new(5, 8, 9);
        sy.ingest_vector(&y);
        sx.merge(&sy);
        let mut sxy = AmsF2::new(5, 8, 9);
        sxy.ingest_vector(&x.add(&y));
        assert!((sx.estimate() - sxy.estimate()).abs() < 1e-6);
    }

    #[test]
    fn gaussian_l2_concentrates() {
        let x = zipf_vector(256, 1.0, 100, 28);
        let truth = x.f2().sqrt();
        let mut g = GaussianL2::new(101, 3);
        g.ingest_vector(&x);
        let est = g.estimate();
        assert!(
            (est - truth).abs() / truth < 0.35,
            "est {est} vs truth {truth}"
        );
        let cons = g.conservative_estimate();
        assert!(cons >= truth * 0.5 && cons <= truth * 2.0, "cons {cons}");
    }

    #[test]
    fn gaussian_l2_median_normalizer_is_calibrated() {
        // Average many independent estimates: should land on ‖x‖₂.
        let x = uniform_vector(64, 5, 29);
        let truth = x.f2().sqrt();
        let reps = 200;
        let mean: f64 = (0..reps)
            .map(|r| {
                let mut g = GaussianL2::new(15, 9000 + r);
                g.ingest_vector(&x);
                g.estimate()
            })
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs {truth}"
        );
    }

    #[test]
    fn space_bits_accounting() {
        let a = AmsF2::new(2, 3, 1);
        assert_eq!(a.space_bits(), 6 * 64 + 6 * 4 * 61);
        let g = GaussianL2::new(4, 1);
        assert_eq!(g.space_bits(), 4 * 64 + 64);
    }
}
