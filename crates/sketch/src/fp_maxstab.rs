//! Constant-factor `F_p` estimation for `p > 2` via max-stability
//! (the `FpEst` subroutine of Algorithm 1, in the spirit of \[And17\]).
//!
//! Scale each coordinate by an inverse exponential: `z_i = x_i / e_i^{1/p}`.
//! Lemma 1.16 gives `max_i |z_i| = ‖x‖_p / E^{1/p}` for a standard
//! exponential `E`, so the median over independent repetitions of the
//! (CountSketch-recovered) maximum equals `‖x‖_p / (ln 2)^{1/p}` — a
//! constant-factor estimator using `O(n^{1−2/p})`-bucket tables, which is
//! exactly the budget the paper's algorithms allocate.

use crate::countsketch::{median_in_place, CountSketch, CountSketchParams};
use crate::traits::LinearSketch;
use pts_util::derive_seed;
use pts_util::variates::keyed_exponential;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// Parameters for [`FpMaxStab`].
#[derive(Debug, Clone, Copy)]
pub struct FpMaxStabParams {
    /// The moment order `p > 2`.
    pub p: f64,
    /// Independent scaled repetitions (median across them).
    pub reps: usize,
    /// Buckets per CountSketch row; `Θ(n^{1−2/p})` scaled by the caller.
    pub buckets: usize,
    /// CountSketch rows.
    pub rows: usize,
}

impl FpMaxStabParams {
    /// Paper-faithful defaults for universe `n`: `buckets =
    /// Θ(n^{max(0,1−2/p)} log²n)` with a small constant, enough rows/reps
    /// for a 2-approximation with good probability at laptop scale. The
    /// estimator is stated for `p > 2` in Algorithm 1 but the max-stability
    /// identity (Lemma 1.16) holds for every `p > 0`, so smaller `p` is
    /// accepted too (used by the precision-sampling baseline).
    pub fn for_universe(n: usize, p: f64) -> Self {
        assert!(p > 0.0, "max-stability estimator requires p > 0");
        let nf = n.max(4) as f64;
        let log2n = nf.log2();
        let buckets =
            ((nf.powf((1.0 - 2.0 / p).max(0.0)) * log2n).ceil() as usize).clamp(16, n.max(16));
        Self {
            p,
            reps: 15,
            buckets,
            rows: 5,
        }
    }
}

/// Max-stability `F_p` estimator: `reps` CountSketches over independently
/// scaled copies of the input.
#[derive(Debug, Clone)]
pub struct FpMaxStab {
    params: FpMaxStabParams,
    universe: usize,
    sketches: Vec<CountSketch>,
    scale_seeds: Vec<u64>,
}

impl FpMaxStab {
    /// Creates the estimator for universe `[0, n)`.
    pub fn new(n: usize, params: FpMaxStabParams, seed: u64) -> Self {
        assert!(params.p > 0.0, "p must be positive");
        assert!(params.reps >= 1);
        let cs_params = CountSketchParams {
            rows: params.rows,
            buckets: params.buckets,
        };
        let sketches = (0..params.reps)
            .map(|r| CountSketch::new(cs_params, derive_seed(seed, 2 * r as u64)))
            .collect();
        let scale_seeds = (0..params.reps)
            .map(|r| derive_seed(seed, 2 * r as u64 + 1))
            .collect();
        Self {
            params,
            universe: n,
            sketches,
            scale_seeds,
        }
    }

    /// Estimate of `‖x‖_p` (median of recovered maxima, debiased by
    /// `(ln 2)^{1/p}`).
    pub fn lp_estimate(&self) -> f64 {
        let mut maxima: Vec<f64> = self
            .sketches
            .iter()
            .map(|cs| {
                let (_, est) = cs.argmax(self.universe);
                est.abs()
            })
            .collect();
        median_in_place(&mut maxima) * std::f64::consts::LN_2.powf(1.0 / self.params.p)
    }

    /// Estimate of `F_p = ‖x‖_p^p`.
    pub fn fp_estimate(&self) -> f64 {
        self.lp_estimate().powf(self.params.p)
    }

    /// The moment order.
    pub fn p(&self) -> f64 {
        self.params.p
    }
}

impl LinearSketch for FpMaxStab {
    #[inline]
    fn update(&mut self, index: u64, delta: f64) {
        let inv_p = 1.0 / self.params.p;
        for (cs, &ss) in self.sketches.iter_mut().zip(&self.scale_seeds) {
            let e = keyed_exponential(ss, index);
            cs.update(index, delta / e.powf(inv_p));
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.scale_seeds, other.scale_seeds, "seed mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge(b);
        }
    }

    fn space_bits(&self) -> usize {
        self.sketches
            .iter()
            .map(LinearSketch::space_bits)
            .sum::<usize>()
            + 64
    }
}

impl Encode for FpMaxStab {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_f64(self.params.p);
        w.put_usize(self.params.reps);
        w.put_usize(self.params.buckets);
        w.put_usize(self.params.rows);
        w.put_usize(self.universe);
        for cs in &self.sketches {
            cs.encode(w)?;
        }
        w.put_u64s(&self.scale_seeds);
        Ok(())
    }
}

impl Decode for FpMaxStab {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = r.get_f64()?;
        let reps = r.get_usize()?;
        let buckets = r.get_usize()?;
        let rows = r.get_usize()?;
        let universe = r.get_usize()?;
        if !(p.is_finite() && p > 0.0) {
            return Err(WireError::Invalid("maxstab moment order"));
        }
        if !(1..=4096).contains(&reps) || universe < 2 {
            return Err(WireError::Invalid("maxstab shape"));
        }
        let params = FpMaxStabParams {
            p,
            reps,
            buckets,
            rows,
        };
        let mut sketches = Vec::with_capacity(reps);
        for _ in 0..reps {
            let cs = CountSketch::decode(r)?;
            if cs.rows() != rows || cs.buckets() != buckets {
                return Err(WireError::Invalid("maxstab sketch shape"));
            }
            sketches.push(cs);
        }
        let scale_seeds = r.get_u64s()?;
        if scale_seeds.len() != reps {
            return Err(WireError::Invalid("maxstab scale-seed length"));
        }
        Ok(Self {
            params,
            universe,
            sketches,
            scale_seeds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::{planted_vector, uniform_vector, zipf_vector};
    use pts_stream::{Stream, StreamStyle};

    fn check_2_approx(x: &pts_stream::FrequencyVector, p: f64, seed: u64) -> bool {
        let n = x.n();
        let mut est = FpMaxStab::new(n, FpMaxStabParams::for_universe(n, p), seed);
        est.ingest_vector(x);
        let got = est.lp_estimate();
        let truth = x.lp_norm(p);
        got >= truth / 2.0 && got <= truth * 2.0
    }

    #[test]
    fn two_approx_on_battery() {
        let n = 256;
        let workloads = [
            zipf_vector(n, 1.1, 300, 41),
            uniform_vector(n, 40, 42),
            planted_vector(n, 2, 800, 10, 43),
        ];
        for p in [3.0f64, 4.0] {
            for (wi, x) in workloads.iter().enumerate() {
                let ok = (0..10)
                    .filter(|&t| check_2_approx(x, p, 100 * t + wi as u64))
                    .count();
                assert!(ok >= 8, "p={p} workload={wi}: only {ok}/10 within 2x");
            }
        }
    }

    #[test]
    fn median_debiasing_is_calibrated() {
        // Over many independent estimators the *median* estimate should sit
        // within a few percent of the truth (constant-factor device, but the
        // ln2 correction centres it).
        let x = zipf_vector(128, 1.2, 200, 44);
        let truth = x.lp_norm(3.0);
        let mut ests: Vec<f64> = (0..60)
            .map(|t| {
                let mut e = FpMaxStab::new(128, FpMaxStabParams::for_universe(128, 3.0), 7000 + t);
                e.ingest_vector(&x);
                e.lp_estimate()
            })
            .collect();
        let med = median_in_place(&mut ests);
        assert!(
            (med - truth).abs() / truth < 0.25,
            "median {med} vs {truth}"
        );
    }

    #[test]
    fn stream_vs_vector_agree() {
        let x = zipf_vector(64, 1.0, 80, 45);
        let mut rng = pts_util::Xoshiro256pp::new(46);
        let s = Stream::from_target(&x, StreamStyle::Turnstile { churn: 0.7 }, &mut rng);
        let params = FpMaxStabParams::for_universe(64, 3.0);
        let mut a = FpMaxStab::new(64, params, 9);
        a.ingest_stream(&s);
        let mut b = FpMaxStab::new(64, params, 9);
        b.ingest_vector(&x);
        assert!((a.lp_estimate() - b.lp_estimate()).abs() < 1e-6);
    }

    #[test]
    fn fp_estimate_is_lp_to_the_p() {
        let x = uniform_vector(64, 10, 47);
        let mut e = FpMaxStab::new(64, FpMaxStabParams::for_universe(64, 4.0), 11);
        e.ingest_vector(&x);
        let lp = e.lp_estimate();
        assert!((e.fp_estimate() - lp.powf(4.0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "p > 0")]
    fn rejects_nonpositive_p() {
        let _ = FpMaxStabParams::for_universe(64, 0.0);
    }

    #[test]
    fn works_for_p_at_most_two() {
        // The identity holds for all p > 0; sanity-check p = 1.
        let x = zipf_vector(128, 1.0, 100, 48);
        let mut e = FpMaxStab::new(128, FpMaxStabParams::for_universe(128, 1.0), 13);
        e.ingest_vector(&x);
        let got = e.lp_estimate();
        let truth = x.lp_norm(1.0);
        assert!(
            got > truth / 3.0 && got < truth * 3.0,
            "got {got} vs {truth}"
        );
    }
}
