//! Exact s-sparse recovery for integer turnstile vectors.
//!
//! The JST11 perfect L₀ sampler (Theorem 5.4) needs to recover a subsampled
//! vector *exactly* (values included) whenever it is sparse. We use the
//! textbook construction: a grid of 1-sparse testers (sum / index-weighted
//! sum / fingerprint), peeled greedily.
//!
//! A 1-sparse cell over a vector `v` holds `W = Σ v_i`, `S = Σ v_i·i` and a
//! fingerprint `F = Σ v_i·r^i mod P` (P = 2^61−1, r keyed). If exactly one
//! index is alive, `i = S/W` and `F = W·r^i`; the fingerprint makes false
//! positives vanishingly unlikely.

use crate::traits::LinearSketch;
use pts_util::hashing::MERSENNE_P;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, keyed_u64, KWiseHash, Xoshiro256pp};

/// Modular exponentiation `r^e mod 2^61−1`.
fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    base %= MERSENNE_P;
    let mut acc: u128 = 1;
    let mut b: u128 = base as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = (acc * b) % (MERSENNE_P as u128);
        }
        b = (b * b) % (MERSENNE_P as u128);
        exp >>= 1;
    }
    acc as u64
}

/// Adds `delta·r^index` to a fingerprint accumulator (mod P, delta signed).
fn fp_add(fp: u64, r: u64, index: u64, delta: i64) -> u64 {
    let term = (pow_mod(r, index) as u128 * (delta.unsigned_abs() as u128 % MERSENNE_P as u128))
        % MERSENNE_P as u128;
    let term = term as u64;
    if delta >= 0 {
        ((fp as u128 + term as u128) % MERSENNE_P as u128) as u64
    } else {
        ((fp as u128 + (MERSENNE_P - term) as u128) % MERSENNE_P as u128) as u64
    }
}

/// A single 1-sparse tester cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct OneSparseCell {
    /// `Σ v_i` over indices hashed here.
    weight: i128,
    /// `Σ v_i · i`.
    index_weighted: i128,
    /// `Σ v_i · r^i mod P`.
    fingerprint: u64,
}

impl OneSparseCell {
    fn update(&mut self, index: u64, delta: i64, r: u64) {
        self.weight += delta as i128;
        self.index_weighted += delta as i128 * index as i128;
        self.fingerprint = fp_add(self.fingerprint, r, index, delta);
    }

    /// Pointwise add of another cell over the same hash position (linearity:
    /// sums and the modular fingerprint are both additive).
    fn absorb(&mut self, other: &OneSparseCell) {
        self.weight += other.weight;
        self.index_weighted += other.index_weighted;
        self.fingerprint =
            ((self.fingerprint as u128 + other.fingerprint as u128) % MERSENNE_P as u128) as u64;
    }

    fn is_zero(&self) -> bool {
        self.weight == 0 && self.index_weighted == 0 && self.fingerprint == 0
    }

    /// Decodes `(index, value)` if the cell provably holds exactly one item.
    fn decode(&self, r: u64) -> Option<(u64, i64)> {
        if self.weight == 0 {
            return None;
        }
        if self.index_weighted % self.weight != 0 {
            return None;
        }
        let idx = self.index_weighted / self.weight;
        if idx < 0 || idx > u64::MAX as i128 {
            return None;
        }
        let idx = idx as u64;
        let val = self.weight;
        if val.abs() > i64::MAX as i128 {
            return None;
        }
        // Verify against the fingerprint.
        let expect = fp_add(0, r, idx, val as i64);
        (expect == self.fingerprint).then_some((idx, val as i64))
    }
}

/// Exact `s`-sparse recovery structure: `rows × 2s` grid of 1-sparse cells
/// with pairwise-independent bucket hashes, decoded by peeling.
#[derive(Debug, Clone)]
pub struct SparseRecovery {
    sparsity: usize,
    rows: usize,
    buckets: usize,
    cells: Vec<OneSparseCell>,
    hashes: Vec<KWiseHash>,
    fingerprint_base: u64,
}

impl SparseRecovery {
    /// Recovery succeeds w.h.p. whenever the vector has at most `sparsity`
    /// non-zeros; `rows` controls the failure probability (`2^{−Ω(rows)}`).
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn new(sparsity: usize, rows: usize, seed: u64) -> Self {
        assert!(sparsity >= 1 && rows >= 1, "degenerate configuration");
        let buckets = 2 * sparsity;
        let mut rng = Xoshiro256pp::new(derive_seed(seed, 0x5A25));
        let hashes = (0..rows).map(|_| KWiseHash::new(2, &mut rng)).collect();
        // Fingerprint base in [2, P): keyed off the seed.
        let fingerprint_base = 2 + keyed_u64(seed, 0xF1A6) % (MERSENNE_P - 2);
        Self {
            sparsity,
            rows,
            buckets,
            cells: vec![OneSparseCell::default(); rows * buckets],
            hashes,
            fingerprint_base,
        }
    }

    /// Applies an integer turnstile update.
    pub fn update_int(&mut self, index: u64, delta: i64) {
        for r in 0..self.rows {
            let b = self.hashes[r].bucket(index, self.buckets);
            self.cells[r * self.buckets + b].update(index, delta, self.fingerprint_base);
        }
    }

    /// The designed sparsity budget.
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// Whether every cell is identically zero (vector is zero w.h.p.).
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(OneSparseCell::is_zero)
    }

    /// Attempts exact recovery by peeling. Returns the non-zero support
    /// `(index, value)` sorted by index, or `None` if the vector is not
    /// explainable within the sparsity budget.
    pub fn recover(&self) -> Option<Vec<(u64, i64)>> {
        let mut work = self.clone();
        let mut recovered: Vec<(u64, i64)> = Vec::new();
        // Peel: find any decodable cell, subtract the item everywhere.
        // At most `sparsity` + slack iterations can succeed.
        for _ in 0..(2 * self.sparsity + 4) {
            if work.is_zero() {
                recovered.sort_unstable();
                // Merge duplicates (an index can be recovered in pieces if
                // its updates were split — values then add).
                let mut merged: Vec<(u64, i64)> = Vec::with_capacity(recovered.len());
                for (i, v) in recovered {
                    match merged.last_mut() {
                        Some((li, lv)) if *li == i => *lv += v,
                        _ => merged.push((i, v)),
                    }
                }
                merged.retain(|&(_, v)| v != 0);
                if merged.len() <= self.sparsity {
                    return Some(merged);
                }
                return None;
            }
            let mut found = None;
            'search: for cell in &work.cells {
                if let Some((idx, val)) = cell.decode(work.fingerprint_base) {
                    found = Some((idx, val));
                    break 'search;
                }
            }
            let (idx, val) = found?;
            work.update_int(idx, -val);
            recovered.push((idx, val));
        }
        None
    }
}

impl LinearSketch for SparseRecovery {
    /// Floating updates are accepted only when integral: the L₀ machinery is
    /// exact-integer by design.
    ///
    /// # Panics
    /// Panics if `delta` is not an integer value.
    fn update(&mut self, index: u64, delta: f64) {
        assert!(
            delta.fract() == 0.0 && delta.abs() <= i64::MAX as f64,
            "sparse recovery is integer-only"
        );
        self.update_int(index, delta as i64);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.fingerprint_base, other.fingerprint_base,
            "seed mismatch"
        );
        assert_eq!(self.sparsity, other.sparsity, "sparsity mismatch");
        assert_eq!(self.rows, other.rows, "row mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.absorb(b);
        }
    }

    fn space_bits(&self) -> usize {
        // Each cell: two 128-bit sums + 61-bit fingerprint.
        let cell_bits = 128 + 128 + 61;
        self.cells.len() * cell_bits
            + self.hashes.iter().map(KWiseHash::space_bits).sum::<usize>()
            + 64
    }
}

impl Encode for SparseRecovery {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.sparsity);
        w.put_usize(self.rows);
        w.put_u64(self.fingerprint_base);
        for h in &self.hashes {
            h.encode(w)?;
        }
        for cell in &self.cells {
            w.put_i128(cell.weight);
            w.put_i128(cell.index_weighted);
            w.put_u64(cell.fingerprint);
        }
        Ok(())
    }
}

impl Decode for SparseRecovery {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let sparsity = r.get_usize()?;
        let rows = r.get_usize()?;
        let fingerprint_base = r.get_u64()?;
        if !(1..=1 << 20).contains(&sparsity) || !(1..=1024).contains(&rows) {
            return Err(WireError::Invalid("sparse-recovery shape"));
        }
        let buckets = 2 * sparsity;
        let cell_count = rows
            .checked_mul(buckets)
            .ok_or(WireError::Invalid("sparse-recovery shape overflow"))?;
        let mut hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            hashes.push(KWiseHash::decode(r)?);
        }
        // Each cell occupies at least 33 bytes on the wire; reject shapes
        // the remaining input cannot hold before allocating the grid.
        if cell_count.saturating_mul(33) > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut cells = Vec::with_capacity(cell_count);
        for _ in 0..cell_count {
            cells.push(OneSparseCell {
                weight: r.get_i128()?,
                index_weighted: r.get_i128()?,
                fingerprint: r.get_u64()?,
            });
        }
        Ok(Self {
            sparsity,
            rows,
            buckets,
            cells,
            hashes,
            fingerprint_base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_util::Xoshiro256pp;

    #[test]
    fn pow_mod_matches_naive() {
        for (b, e) in [(2u64, 10u64), (3, 0), (7, 61), (123456789, 3)] {
            let mut naive: u128 = 1;
            for _ in 0..e {
                naive = naive * b as u128 % MERSENNE_P as u128;
            }
            assert_eq!(pow_mod(b, e) as u128, naive, "b={b} e={e}");
        }
    }

    #[test]
    fn one_sparse_cell_roundtrip() {
        let r = 1234577;
        let mut cell = OneSparseCell::default();
        cell.update(42, -17, r);
        assert_eq!(cell.decode(r), Some((42, -17)));
        cell.update(42, 17, r);
        assert!(cell.is_zero());
    }

    #[test]
    fn one_sparse_cell_rejects_two_items() {
        let r = 987654321;
        let mut cell = OneSparseCell::default();
        cell.update(3, 5, r);
        cell.update(9, 5, r);
        // (S/W = 6 parses as an index but the fingerprint refuses.)
        assert_eq!(cell.decode(r), None);
    }

    #[test]
    fn recovers_exact_sparse_vector() {
        let mut sr = SparseRecovery::new(8, 4, 1);
        let support = [(5u64, 3i64), (100, -7), (1000, 42), (65535, 1)];
        for &(i, v) in &support {
            sr.update_int(i, v);
        }
        let got = sr.recover().expect("recovery should succeed");
        assert_eq!(got, support.to_vec());
    }

    #[test]
    fn recovery_after_cancellation() {
        let mut sr = SparseRecovery::new(4, 4, 2);
        sr.update_int(7, 10);
        sr.update_int(8, 3);
        sr.update_int(7, -10); // cancels
        let got = sr.recover().expect("recovery should succeed");
        assert_eq!(got, vec![(8, 3)]);
    }

    #[test]
    fn zero_vector_recovers_empty() {
        let sr = SparseRecovery::new(4, 4, 3);
        assert!(sr.is_zero());
        assert_eq!(sr.recover(), Some(vec![]));
    }

    #[test]
    fn overfull_vector_fails_gracefully() {
        let mut sr = SparseRecovery::new(4, 4, 4);
        let mut rng = Xoshiro256pp::new(5);
        // 64 items >> sparsity 4: recovery must return None, not garbage.
        let mut failures = 0;
        for trial in 0..20 {
            let mut s = SparseRecovery::new(4, 4, 100 + trial);
            for _ in 0..64 {
                s.update_int(rng.next_below(10_000), 1 + rng.next_below(50) as i64);
            }
            if s.recover().is_none() {
                failures += 1;
            }
        }
        assert!(
            failures >= 19,
            "dense vectors must fail recovery: {failures}/20"
        );
        // Keep the original (unused beyond construction) exercised:
        sr.update_int(1, 1);
        assert!(!sr.is_zero());
    }

    #[test]
    fn recovery_over_many_random_sparse_vectors() {
        let mut rng = Xoshiro256pp::new(6);
        let mut successes = 0;
        let trials = 50;
        for t in 0..trials {
            let mut sr = SparseRecovery::new(10, 5, 1_000 + t);
            let k = 1 + rng.next_index(10);
            let idxs = rng.sample_indices(100_000, k);
            let mut want: Vec<(u64, i64)> = idxs
                .into_iter()
                .map(|i| {
                    (
                        i as u64,
                        rng.next_sign() * (1 + rng.next_below(1_000) as i64),
                    )
                })
                .collect();
            for &(i, v) in &want {
                sr.update_int(i, v);
            }
            want.sort_unstable();
            if sr.recover() == Some(want) {
                successes += 1;
            }
        }
        assert!(successes >= trials - 1, "{successes}/{trials} recovered");
    }

    #[test]
    #[should_panic(expected = "integer-only")]
    fn float_updates_rejected() {
        let mut sr = SparseRecovery::new(2, 2, 7);
        sr.update(1, 0.5);
    }
}
