//! # pts-sketch
//!
//! Linear sketches underpinning the perfect-sampling stack (DESIGN.md
//! S8–S14): classic and JW18-modified CountSketch, the AMS/Gaussian second
//! moment estimators, constant-factor and Taylor-corrected `F_p` estimators
//! for `p > 2`, dyadic heavy hitters, and exact s-sparse recovery.
//!
//! All sketches implement [`LinearSketch`]; linearity (stream replay ≡
//! final-vector ingest ≡ shard merging) is property-tested per structure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod ams;
pub mod countsketch;
pub mod countsketch_mod;
pub mod fp_maxstab;
pub mod fp_taylor;
pub mod heavy;
pub mod sparse_recovery;
pub mod traits;

pub use ams::{AmsF2, GaussianL2};
pub use countsketch::{CountSketch, CountSketchParams};
pub use countsketch_mod::ModCountSketch;
pub use fp_maxstab::{FpMaxStab, FpMaxStabParams};
pub use fp_taylor::{FpTaylor, FpTaylorParams};
pub use heavy::DyadicHeavyHitters;
pub use sparse_recovery::SparseRecovery;
pub use traits::LinearSketch;
