//! The linear-sketch contract shared by every structure in this crate.

use pts_stream::{FrequencyVector, Stream};

/// A linear sketch of a real-valued vector indexed by `[0, n)`.
///
/// Linearity is the load-bearing property: `sketch(x + y) = sketch(x) ⊕
/// sketch(y)`, so processing a stream update-by-update and ingesting the
/// final vector produce identical states (property-tested per
/// implementation). Values are `f64` because the paper's algorithms sketch
/// *exponentially scaled* vectors `x_i / e_i^{1/p}`, not just integers.
pub trait LinearSketch {
    /// Applies a single turnstile update: coordinate `index` changes by
    /// `delta`.
    fn update(&mut self, index: u64, delta: f64);

    /// Merges another sketch built with the same parameters and seed into
    /// this one. Linearity makes this a pointwise add of counter state, and
    /// guarantees `merge(sketch(x), sketch(y)) == sketch(x + y)` — the
    /// property the sharded engine and every distributed deployment rely on.
    ///
    /// # Panics
    /// Implementations panic when the two sketches are incompatible
    /// (different seeds, shapes, or parameters).
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;

    /// Information-theoretic size of the sketch state in bits: counters at
    /// 64 bits plus hash-seed material. Rust object overhead is deliberately
    /// excluded — this is the quantity the paper's space bounds talk about.
    fn space_bits(&self) -> usize;

    /// Ingests a whole frequency vector (one bulk update per non-zero).
    fn ingest_vector(&mut self, x: &FrequencyVector) {
        for (i, v) in x.iter_nonzero() {
            self.update(i, v as f64);
        }
    }

    /// Replays a stream update-by-update.
    fn ingest_stream(&mut self, s: &Stream) {
        for u in s.iter() {
            self.update(u.index, u.delta as f64);
        }
    }
}
