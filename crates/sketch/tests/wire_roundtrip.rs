//! Wire-contract property tests for every sketch: `decode(encode(x))`
//! reproduces `x` bit-for-bit (checked through re-encoding, since sketches
//! deliberately do not implement `PartialEq`), and malformed bytes —
//! truncations and single-byte corruptions at every offset — return a
//! `WireError` or a differently-valued object, but never panic.

use proptest::prelude::*;
use pts_sketch::{
    AmsF2, CountSketch, CountSketchParams, DyadicHeavyHitters, FpMaxStab, FpMaxStabParams,
    FpTaylor, FpTaylorParams, LinearSketch, ModCountSketch, SparseRecovery,
};
use pts_util::wire::{Decode, Encode, WireReader};

/// Round-trips `x` and asserts byte-identical state via re-encode; then
/// fuzzes the encoding: every truncation must fail cleanly, and a byte flip
/// at every position must either fail cleanly or decode to *some* value —
/// under no circumstances panic.
fn assert_wire_contract<T: Encode + Decode>(x: &T) {
    let bytes = x.to_wire_bytes().expect("sketches always encode");
    let back = T::from_wire_bytes(&bytes).expect("own encoding must decode");
    assert_eq!(
        back.to_wire_bytes().unwrap(),
        bytes,
        "re-encode diverged from original encoding"
    );
    // Sample ~64 positions (always including the edges) so the fuzz pass
    // stays fast on multi-kilobyte encodings.
    let stride = (bytes.len() / 64).max(1);
    for cut in (0..bytes.len()).step_by(stride).chain([bytes.len() - 1]) {
        assert!(
            T::from_wire_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} decoded"
        );
    }
    for i in (0..bytes.len()).step_by(stride) {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x55;
        // No checksum at this layer: a flip may still decode (to different
        // state) or fail — both fine; panicking or looping is the bug.
        let _ = T::from_wire_bytes(&flipped);
    }
}

/// Feeds a deterministic batch of signed updates derived from `seed`.
fn feed<S: LinearSketch>(s: &mut S, n: u64, updates: u64, seed: u64) {
    let mut rng = pts_util::Xoshiro256pp::new(seed);
    for _ in 0..updates {
        let i = rng.next_below(n);
        let delta = rng.next_sign() * (1 + rng.next_below(50) as i64);
        s.update(i, delta as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn countsketch_wire_contract(seed in 0u64..1000, rows in 1usize..6, buckets in 4usize..40) {
        let mut cs = CountSketch::new(CountSketchParams { rows, buckets }, seed);
        feed(&mut cs, 256, 60, seed ^ 1);
        assert_wire_contract(&cs);
    }

    #[test]
    fn mod_countsketch_wire_contract(seed in 0u64..1000, rows in 1usize..6, buckets in 4usize..40) {
        let mut cs = ModCountSketch::new(rows, buckets, seed);
        feed(&mut cs, 256, 60, seed ^ 2);
        assert_wire_contract(&cs);
    }

    #[test]
    fn ams_wire_contract(seed in 0u64..1000, rows in 1usize..4, cols in 1usize..8) {
        let mut ams = AmsF2::new(rows, cols, seed);
        feed(&mut ams, 128, 40, seed ^ 3);
        assert_wire_contract(&ams);
        let decoded = AmsF2::from_wire_bytes(&ams.to_wire_bytes().unwrap()).unwrap();
        prop_assert_eq!(decoded.estimate().to_bits(), ams.estimate().to_bits());
    }

    #[test]
    fn sparse_recovery_wire_contract(seed in 0u64..1000, sparsity in 1usize..8, rows in 1usize..4) {
        let mut sr = SparseRecovery::new(sparsity, rows, seed);
        sr.update_int(3, 17);
        sr.update_int(90, -4);
        sr.update_int(3, -17);
        assert_wire_contract(&sr);
        let decoded = SparseRecovery::from_wire_bytes(&sr.to_wire_bytes().unwrap()).unwrap();
        prop_assert_eq!(decoded.recover(), sr.recover());
    }

    #[test]
    fn fp_maxstab_wire_contract(seed in 0u64..1000, p_tenths in 21u64..50) {
        let p = p_tenths as f64 / 10.0;
        let mut est = FpMaxStab::new(64, FpMaxStabParams::for_universe(64, p), seed);
        feed(&mut est, 64, 50, seed ^ 4);
        assert_wire_contract(&est);
        let decoded = FpMaxStab::from_wire_bytes(&est.to_wire_bytes().unwrap()).unwrap();
        prop_assert_eq!(decoded.lp_estimate().to_bits(), est.lp_estimate().to_bits());
    }

    #[test]
    fn fp_taylor_wire_contract(seed in 0u64..1000, p_tenths in 21u64..50) {
        let p = p_tenths as f64 / 10.0;
        let mut est = FpTaylor::new(64, FpTaylorParams::for_universe(64, p), seed);
        feed(&mut est, 64, 50, seed ^ 5);
        assert_wire_contract(&est);
        let decoded = FpTaylor::from_wire_bytes(&est.to_wire_bytes().unwrap()).unwrap();
        prop_assert_eq!(decoded.estimate().to_bits(), est.estimate().to_bits());
    }

    #[test]
    fn dyadic_heavy_wire_contract(seed in 0u64..1000) {
        let params = CountSketchParams { rows: 3, buckets: 16 };
        let mut hh = DyadicHeavyHitters::new(64, params, seed);
        feed(&mut hh, 64, 40, seed ^ 6);
        assert_wire_contract(&hh);
        let decoded = DyadicHeavyHitters::from_wire_bytes(&hh.to_wire_bytes().unwrap()).unwrap();
        prop_assert_eq!(decoded.argmax(4), hh.argmax(4));
    }
}

#[test]
fn gaussian_l2_wire_contract() {
    use pts_sketch::GaussianL2;
    let mut g = GaussianL2::new(5, 77);
    feed(&mut g, 64, 30, 9);
    assert_wire_contract(&g);
    let decoded = GaussianL2::from_wire_bytes(&g.to_wire_bytes().unwrap()).unwrap();
    assert_eq!(decoded.estimate().to_bits(), g.estimate().to_bits());
}

#[test]
fn decode_rejects_byte_soup_without_panicking() {
    // Deterministic pseudo-random garbage of many lengths: every decoder
    // must return (usually an error), never panic or hang.
    let mut rng = pts_util::Xoshiro256pp::new(0xF00D);
    for len in [0usize, 1, 7, 64, 513] {
        for _ in 0..20 {
            let soup: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut r = WireReader::new(&soup);
            let _ = CountSketch::decode(&mut r);
            let _ = ModCountSketch::from_wire_bytes(&soup);
            let _ = AmsF2::from_wire_bytes(&soup);
            let _ = SparseRecovery::from_wire_bytes(&soup);
            let _ = FpMaxStab::from_wire_bytes(&soup);
            let _ = FpTaylor::from_wire_bytes(&soup);
            let _ = DyadicHeavyHitters::from_wire_bytes(&soup);
        }
    }
}
