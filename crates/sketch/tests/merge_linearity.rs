//! The merge contract, per sketch: merging two same-seeded sketches that
//! saw two halves of a stream equals one sketch ingesting the concatenated
//! stream. This is the exact property the sharded engine's correctness
//! rests on, so it is tested for every `LinearSketch` implementation.

use pts_sketch::{
    AmsF2, CountSketch, CountSketchParams, DyadicHeavyHitters, FpMaxStab, FpMaxStabParams,
    FpTaylor, FpTaylorParams, GaussianL2, LinearSketch, ModCountSketch, SparseRecovery,
};
use pts_stream::gen::zipf_vector;
use pts_stream::{Stream, StreamStyle};
use pts_util::Xoshiro256pp;

const N: usize = 128;

/// Ingests the two halves of a churny turnstile stream into `a` and `b`,
/// merges `b` into `a`, ingests the whole stream into `whole`, and hands
/// the pair to a type-specific equality check.
fn check_merge<S: LinearSketch + Clone>(
    mut a: S,
    mut whole: S,
    workload_seed: u64,
    assert_same: impl Fn(&S, &S),
) {
    let x = zipf_vector(N, 1.0, 200, workload_seed);
    let mut rng = Xoshiro256pp::new(workload_seed ^ 0xBEEF);
    let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    let updates = stream.updates();
    let (left, right) = updates.split_at(updates.len() / 2);

    let mut b = a.clone();
    for u in left {
        a.update(u.index, u.delta as f64);
    }
    for u in right {
        b.update(u.index, u.delta as f64);
    }
    a.merge(&b);
    for u in updates {
        whole.update(u.index, u.delta as f64);
    }
    assert_same(&a, &whole);
}

fn tables_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 1e-6, "{x} vs {y}");
    }
}

#[test]
fn countsketch_merge_equals_concatenated_stream() {
    let params = CountSketchParams {
        rows: 5,
        buckets: 64,
    };
    check_merge(
        CountSketch::new(params, 7),
        CountSketch::new(params, 7),
        1,
        |m, w| tables_close(m.table(), w.table()),
    );
}

#[test]
fn mod_countsketch_merge_equals_concatenated_stream() {
    check_merge(
        ModCountSketch::new(5, 64, 8),
        ModCountSketch::new(5, 64, 8),
        2,
        |m, w| tables_close(m.table(), w.table()),
    );
}

#[test]
fn ams_merge_equals_concatenated_stream() {
    check_merge(AmsF2::new(5, 8, 9), AmsF2::new(5, 8, 9), 3, |m, w| {
        assert!((m.estimate() - w.estimate()).abs() < 1e-6);
    });
}

#[test]
fn gaussian_l2_merge_equals_concatenated_stream() {
    check_merge(
        GaussianL2::new(15, 10),
        GaussianL2::new(15, 10),
        4,
        |m, w| {
            assert!((m.estimate() - w.estimate()).abs() < 1e-6);
        },
    );
}

#[test]
fn fp_taylor_merge_equals_concatenated_stream() {
    let params = FpTaylorParams::for_universe(N, 3.0);
    check_merge(
        FpTaylor::new(N, params, 11),
        FpTaylor::new(N, params, 11),
        5,
        |m, w| {
            assert!((m.estimate() - w.estimate()).abs() < 1e-6 * (1.0 + w.estimate().abs()));
        },
    );
}

#[test]
fn fp_maxstab_merge_equals_concatenated_stream() {
    let params = FpMaxStabParams::for_universe(N, 3.0);
    check_merge(
        FpMaxStab::new(N, params, 12),
        FpMaxStab::new(N, params, 12),
        6,
        |m, w| {
            assert!((m.lp_estimate() - w.lp_estimate()).abs() < 1e-6 * (1.0 + w.lp_estimate()),);
        },
    );
}

#[test]
fn dyadic_heavy_hitters_merge_equals_concatenated_stream() {
    let params = CountSketchParams {
        rows: 5,
        buckets: 64,
    };
    check_merge(
        DyadicHeavyHitters::new(N, params, 13),
        DyadicHeavyHitters::new(N, params, 13),
        7,
        |m, w| {
            for i in 0..N as u64 {
                assert!((m.estimate(i) - w.estimate(i)).abs() < 1e-6, "index {i}");
            }
            assert_eq!(m.argmax(8).0, w.argmax(8).0);
        },
    );
}

#[test]
fn sparse_recovery_merge_equals_concatenated_stream() {
    // Sparse input so recovery succeeds; merge must recover the same set.
    let mut a = SparseRecovery::new(12, 4, 14);
    let mut b = SparseRecovery::new(12, 4, 14);
    let mut whole = SparseRecovery::new(12, 4, 14);
    let support = [(5u64, 3i64), (77, -9), (100, 40), (90, 1)];
    for (k, &(i, v)) in support.iter().enumerate() {
        // Split each value across the two halves to exercise cross-shard
        // partial sums (including a coordinate that cancels entirely).
        a.update_int(i, v - k as i64);
        b.update_int(i, k as i64);
        whole.update_int(i, v);
    }
    a.update_int(33, 6);
    b.update_int(33, -6);
    a.merge(&b);
    let merged = a.recover().expect("merged state is sparse");
    let direct = whole.recover().expect("direct state is sparse");
    assert_eq!(merged, direct);
    let mut want = support.to_vec();
    want.sort_unstable();
    assert_eq!(merged, want);
}

#[test]
#[should_panic(expected = "seed mismatch")]
fn sparse_recovery_merge_rejects_different_seeds() {
    let mut a = SparseRecovery::new(4, 2, 1);
    let b = SparseRecovery::new(4, 2, 2);
    a.merge(&b);
}
