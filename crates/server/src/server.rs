//! The server: accept loop, per-connection demux readers, a bounded
//! worker pool, and the request dispatcher over a `TenantMap` of
//! [`SamplingService`] engines.
//!
//! Threading model (wire v3): each accepted connection gets one reader
//! thread that frames and demuxes requests — peeling the leading varint
//! request id and namespace — into the connection's FIFO queue; a
//! **bounded pool** of `WORKER_THREADS` workers drains those queues and
//! writes each response (under the echoed id) through the connection's
//! write lock. At most one worker owns a connection's FIFO at a time, so
//! one connection's requests are processed **in submission order** — the
//! ordering the cluster coordinator's pipelined ingest relies on — while
//! different connections proceed in parallel up to the pool width.
//! Responses on one connection may still be *observed* out of order by a
//! multiplexed peer only in the trivial sense that the protocol permits
//! it; this server's per-connection FIFO is an implementation choice,
//! not a wire guarantee (PROTOCOL.md §4).
//!
//! Tenancy model (wire v4): the engines live in a `TenantMap` — a
//! sharded-lock map from namespace id to `Arc<Mutex<engine>>`. A worker
//! holds a map shard's lock only long enough to clone the tenant's Arc,
//! then dispatches under that tenant's own mutex, so requests to
//! *different* tenants proceed in parallel across the pool while
//! requests to the *same* tenant serialize — per-tenant, every response
//! reflects all previously answered requests, across connections.
//! Tenants are cheap lazily-created engines sharing the existing worker
//! pool: **no per-tenant threads**, which is what makes millions of
//! namespaces per node viable (the paper's samplers are tiny).
//! Namespace 0 is the default tenant, created at bind from the engine
//! passed in; `CreateNamespace` builds additional tenants through the
//! spawner given to [`Server::bind_with_spawner`]. Concurrency inside an
//! engine is the engine's own business: a hosted
//! [`pts_engine::ConcurrentEngine`] still applies runs on its per-shard
//! worker threads while its mutex only serializes front-end calls.
//!
//! Shutdown: a `Shutdown` request (or [`Server::shutdown`]) sets a shared
//! flag; the accept loop is woken by a loopback connection, joins the
//! connection readers (which observe the flag at their next idle poll),
//! drops the job channel so the workers exit, and joins those too.
//! [`Server::join`] then completes once everything has returned.

use crate::obs::{kind_name, obs};
use pts_engine::SamplingService;
use pts_obs::{event, CountingWriter, Span, Stopwatch};
use pts_stream::Update;
use pts_util::protocol::{
    read_frame_lenient, split_namespace, split_request_id, split_trace, write_response, ErrorCode,
    FrameError, Request, Response, ServiceError, TraceContext, DEFAULT_NAMESPACE, MAX_FRAME_BYTES,
};
use pts_util::wire::{Decode, WireError, KIND_REQUEST};
use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a reader blocks waiting for the *first* byte of a request
/// before re-checking the shutdown flag. Bounds shutdown latency without
/// burning CPU on idle connections.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// The whole-frame deadline: once a request's first byte has arrived, the
/// complete frame must follow within this window. A peer that stalls — or
/// trickles bytes to keep individual reads alive — is treated as gone
/// when the deadline passes (fatal; the connection closes) rather than
/// pinning the reader, and [`FrameBodyReader`] re-checks the shutdown
/// flag on every retry so teardown never waits on a slow peer.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Dispatch workers shared by all connections. A bounded pool — not a
/// thread per request — so a flood of pipelined requests queues instead
/// of spawning unboundedly; the engine mutex means more workers buy
/// cross-connection overlap of framing/encoding, not engine parallelism.
const WORKER_THREADS: usize = 4;

/// Per-connection cap on decoded-but-undispatched requests. The reader
/// blocks at the cap (TCP backpressure does the rest), so a client
/// pipelining faster than the engine drains cannot grow server memory
/// without bound.
const MAX_QUEUED_PER_CONN: usize = 1024;

/// Wraps the mid-frame reads of a connection: retries the socket's short
/// [`IDLE_POLL`] timeouts until data arrives, the whole-frame `deadline`
/// passes, or shutdown is flagged — converting both expiries into a
/// `TimedOut` error the frame reader classifies as fatal. The deadline
/// is fixed at construction — a **per-frame budget**: nothing a peer
/// sends can extend it, so a byte-trickler is cut off at the same
/// deadline as a silent staller (regression-tested below).
struct FrameBodyReader<'a, R: Read> {
    stream: &'a mut R,
    deadline: Instant,
    shutdown: &'a AtomicBool,
}

impl<R: Read> Read for FrameBodyReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "server shutting down mid-frame",
                ));
            }
            if Instant::now() >= self.deadline {
                obs().conn_timeouts.inc();
                event("server.conn.frame_timeout", "whole-frame deadline exceeded");
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame deadline exceeded",
                ));
            }
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Ok(n) => {
                    obs().bytes_in.add(n as u64);
                    return Ok(n);
                }
                other => return other,
            }
        }
    }
}

/// How many independently locked buckets the [`TenantMap`] spreads
/// namespaces over. A tenant lookup contends only with lookups hashing
/// to the same bucket, never with another tenant's *dispatch* (that runs
/// under the tenant's own mutex after the bucket lock is released).
const TENANT_SHARDS: usize = 64;

/// The sharded-lock namespace → engine map (wire v4). Engines are held
/// behind `Arc<Mutex<_>>` so a worker can clone a tenant's handle under
/// the brief bucket lock and then dispatch without blocking any other
/// tenant — including a concurrent `DropNamespace`, which merely removes
/// the map entry (in-flight requests on the dropped tenant finish
/// against the orphaned Arc; subsequent lookups answer
/// `unknown-namespace`).
struct TenantMap<E> {
    buckets: Vec<Mutex<HashMap<u64, Arc<Mutex<E>>>>>,
    /// Live tenant count, mirrored into the `server.tenants.active`
    /// gauge (an atomic because `len` would otherwise need every bucket
    /// lock).
    count: AtomicU64,
}

impl<E> TenantMap<E> {
    /// A map hosting only the default tenant (namespace 0), built from
    /// the engine the server was bound with.
    fn new(default_engine: E) -> Self {
        let map = Self {
            buckets: (0..TENANT_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            count: AtomicU64::new(0),
        };
        map.insert(DEFAULT_NAMESPACE, default_engine);
        map
    }

    fn bucket(&self, ns: u64) -> &Mutex<HashMap<u64, Arc<Mutex<E>>>> {
        &self.buckets[(ns as usize) & (TENANT_SHARDS - 1)]
    }

    /// The tenant's engine handle, if the namespace exists.
    fn get(&self, ns: u64) -> Option<Arc<Mutex<E>>> {
        self.bucket(ns).lock().ok()?.get(&ns).cloned()
    }

    /// Inserts a fresh tenant; `false` if the namespace already exists
    /// (the existing engine is left untouched).
    fn insert(&self, ns: u64, engine: E) -> bool {
        let Ok(mut bucket) = self.bucket(ns).lock() else {
            return false;
        };
        if bucket.contains_key(&ns) {
            return false;
        }
        bucket.insert(ns, Arc::new(Mutex::new(engine)));
        drop(bucket);
        let live = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        obs().tenants_active.set(live as i64);
        true
    }

    /// Removes a tenant, releasing the map's reference to its engine.
    fn remove(&self, ns: u64) -> Option<Arc<Mutex<E>>> {
        let removed = self.bucket(ns).lock().ok()?.remove(&ns)?;
        let live = self.count.fetch_sub(1, Ordering::Relaxed) - 1;
        obs().tenants_active.set(live as i64);
        Some(removed)
    }

    /// Every live namespace, ascending (the order the wire response
    /// promises).
    fn list(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .buckets
            .iter()
            .filter_map(|b| b.lock().ok())
            .flat_map(|b| b.keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// The tenant-spawning hook: builds the engine for a newly created
/// namespace (the namespace id is passed so multi-tenant deployments can
/// vary configuration per tenant).
type Spawner<E> = Box<dyn Fn(u64) -> E + Send + Sync>;

/// The state all connection readers and workers share. The shutdown flag
/// lives in its own `Arc` so the non-generic [`Server`] handle can hold
/// it too.
struct Shared<E> {
    tenants: TenantMap<E>,
    /// How `CreateNamespace` builds a tenant's engine; `None` (plain
    /// [`Server::bind`]) means the tenant set is fixed at the default
    /// namespace and creation requests are answered `unsupported`.
    spawner: Option<Spawner<E>>,
    shutdown: Arc<AtomicBool>,
    /// The listener's address — what a worker pokes to wake a blocking
    /// `accept` after flagging shutdown.
    listen_addr: SocketAddr,
    /// When this server started serving (feeds the local-view
    /// `ServiceStats::uptime_secs`).
    start: Instant,
    /// Requests answered by this server, all kinds (feeds the local-view
    /// `ServiceStats::requests_served`; monotonic, never on the wire).
    requests: AtomicU64,
}

/// One connection's demux state: the FIFO of decoded requests awaiting a
/// worker, and the write half every response goes through.
struct Conn {
    queue: Mutex<ConnQueue>,
    /// Signals the reader blocked at [`MAX_QUEUED_PER_CONN`] that a job
    /// was drained.
    drained: Condvar,
    writer: Mutex<ConnWriter>,
}

/// The FIFO plus its scheduling token.
struct ConnQueue {
    jobs: VecDeque<(u64, Job)>,
    /// Whether a worker currently owns this FIFO. At most one at a time —
    /// that single-consumer rule is what makes per-connection processing
    /// order equal submission order.
    scheduled: bool,
}

/// The buffered write half plus the byte count already credited to
/// `server.bytes.out`.
struct ConnWriter {
    sink: BufWriter<CountingWriter<TcpStream>>,
    flushed: u64,
}

/// A running sampling service bound to a TCP listener.
///
/// Dropping the server shuts it down and joins every thread; use
/// [`Server::join`] for an explicit, blocking teardown.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `addr` and serves `engine` until shut down — the one-call entry
/// point (`examples/serve_demo.rs` is the tour). Equivalent to
/// [`Server::bind`].
pub fn serve<E>(addr: impl ToSocketAddrs, engine: E) -> std::io::Result<Server>
where
    E: SamplingService + Send + 'static,
{
    Server::bind(addr, engine)
}

/// Binds `addr` and serves a multi-tenant endpoint: `engine` becomes the
/// default namespace (0) and `spawner` builds the engine for every
/// namespace a client creates. Equivalent to [`Server::bind_with_spawner`].
pub fn serve_with_spawner<E, S>(
    addr: impl ToSocketAddrs,
    engine: E,
    spawner: S,
) -> std::io::Result<Server>
where
    E: SamplingService + Send + 'static,
    S: Fn(u64) -> E + Send + Sync + 'static,
{
    Server::bind_with_spawner(addr, engine, spawner)
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// the accept loop on a background thread. The engine moves into the
    /// server as the default namespace (0); clients observe and mutate it
    /// only through the protocol. Without a spawner the tenant set is
    /// fixed: `CreateNamespace` requests are answered `unsupported` (use
    /// [`Server::bind_with_spawner`] for a dynamic tenant set).
    pub fn bind<E>(addr: impl ToSocketAddrs, engine: E) -> std::io::Result<Self>
    where
        E: SamplingService + Send + 'static,
    {
        Self::bind_inner(addr, engine, None)
    }

    /// Binds `addr` with a dynamic tenant set: `engine` serves namespace
    /// 0 and `spawner(ns)` builds the engine behind every namespace a
    /// client creates — the namespace id is passed so deployments can
    /// vary universe, factory, or seed per tenant. Spawned engines share
    /// the existing worker pool; creating a tenant spawns no threads.
    pub fn bind_with_spawner<E, S>(
        addr: impl ToSocketAddrs,
        engine: E,
        spawner: S,
    ) -> std::io::Result<Self>
    where
        E: SamplingService + Send + 'static,
        S: Fn(u64) -> E + Send + Sync + 'static,
    {
        Self::bind_inner(addr, engine, Some(Box::new(spawner)))
    }

    fn bind_inner<E>(
        addr: impl ToSocketAddrs,
        engine: E,
        spawner: Option<Spawner<E>>,
    ) -> std::io::Result<Self>
    where
        E: SamplingService + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            tenants: TenantMap::new(engine),
            spawner,
            shutdown: Arc::clone(&shutdown),
            listen_addr: addr,
            start: Instant::now(),
            requests: AtomicU64::new(0),
        });
        let accept = std::thread::Builder::new()
            .name("pts-server-accept".into())
            .spawn(move || accept_loop(listener, shared))?;
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The address the server is listening on (with the real port when
    /// bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown (request-driven or programmatic) has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates shutdown without a client: sets the flag and wakes the
    /// accept loop. Returns immediately; use [`Server::join`] to wait.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake a blocking accept; if the listener is already gone the
        // connect fails, which is equally fine.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the accept loop, every connection reader, and the
    /// worker pool have exited. (A `Shutdown` request from a client
    /// triggers the same teardown.)
    pub fn join(mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until the shutdown flag is set, then joins every
/// connection reader it spawned, closes the job channel, and joins the
/// worker pool.
fn accept_loop<E>(listener: TcpListener, shared: Arc<Shared<E>>)
where
    E: SamplingService + Send + 'static,
{
    // The ready channel carries "this connection's FIFO is non-empty and
    // unowned" tokens; a worker claiming one owns the FIFO until empty.
    let (ready_tx, ready_rx) = mpsc::channel::<Arc<Conn>>();
    let ready_rx = Arc::new(Mutex::new(ready_rx));
    let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(WORKER_THREADS);
    for _ in 0..WORKER_THREADS {
        let rx = Arc::clone(&ready_rx);
        let shared = Arc::clone(&shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("pts-server-worker".into())
            .spawn(move || worker_loop(rx, shared))
        {
            workers.push(handle);
        }
    }
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok((stream, _peer)) => {
                // Pipelined responses are many small frames back-to-back;
                // Nagle would hold each behind the previous one's ACK.
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(&shared);
                let ready = ready_tx.clone();
                if let Ok(handle) = std::thread::Builder::new()
                    .name("pts-server-conn".into())
                    .spawn(move || handle_connection(stream, shared, ready))
                {
                    readers.push(handle);
                }
            }
            // Transient accept errors (peer reset mid-handshake, fd
            // pressure) should not kill the service.
            Err(_) => continue,
        }
        // Reap finished readers so a long-lived server does not
        // accumulate joinable threads.
        readers.retain(|h| !h.is_finished());
    }
    for handle in readers {
        let _ = handle.join();
    }
    // No reader holds a sender anymore: dropping ours disconnects the
    // channel and the workers exit after draining what's left.
    drop(ready_tx);
    for handle in workers {
        let _ = handle.join();
    }
}

/// Serves one connection's read half: frames requests, peels each payload
/// into `(id, namespace, body)`, and enqueues decoded requests for the
/// worker pool — until EOF, a fatal framing error, or shutdown.
/// Frame-level and id-level failures are answered inline (under id 0 —
/// unattributable); namespace and body decode failures are answered
/// under the request's own id, which by then *was* readable.
fn handle_connection<E: SamplingService>(
    stream: TcpStream,
    shared: Arc<Shared<E>>,
    ready: mpsc::Sender<Arc<Conn>>,
) {
    let o = obs();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    o.conn_opened.inc();
    o.conn_active.add(1);
    event("server.conn.open", peer.clone());
    // Balance the lifecycle metrics on *every* exit path.
    struct ConnGuard(String);
    impl Drop for ConnGuard {
        fn drop(&mut self) {
            let o = obs();
            o.conn_closed.inc();
            o.conn_active.add(-1);
            event("server.conn.close", std::mem::take(&mut self.0));
        }
    }
    let _guard = ConnGuard(peer);
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        queue: Mutex::new(ConnQueue {
            jobs: VecDeque::new(),
            scheduled: false,
        }),
        drained: Condvar::new(),
        writer: Mutex::new(ConnWriter {
            sink: BufWriter::new(CountingWriter::new(stream)),
            flushed: 0,
        }),
    });
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Wait for the first byte with a short poll so shutdown stays
        // responsive, then read the rest of the frame under a whole-frame
        // deadline: the socket keeps its short timeout and the body
        // reader re-checks the deadline and the shutdown flag on every
        // retry, so neither a stalled peer nor one trickling a byte at a
        // time can pin the reader past FRAME_TIMEOUT (or past shutdown).
        let first = match poll_first_byte(&mut reader, &shared.shutdown) {
            Ok(Some(b)) => b,
            Ok(None) => return, // EOF or shutdown
            Err(_) => return,
        };
        let body = FrameBodyReader {
            stream: &mut reader,
            deadline: Instant::now() + FRAME_TIMEOUT,
            shutdown: &shared.shutdown,
        };
        let mut src = std::io::Cursor::new([first]).chain(body);
        let outcome = read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut src);
        match outcome {
            Ok(payload) => match split_request_id(&payload) {
                // The id itself was unreadable (or the reserved 0):
                // answer unattributably, keep the connection.
                Err(err) => {
                    obs().frame_payload.inc();
                    event("server.frame_error.payload", err.to_string());
                    if respond(&conn, 0, &error_response(ErrorCode::Malformed, &err)).is_err() {
                        return;
                    }
                }
                // The id was sound but the namespace varint, the trace
                // context, or the body was not: answer under the
                // request's own id, in queue order (errors must not
                // overtake earlier responses).
                Ok((id, rest)) => match split_namespace(rest).and_then(|(ns, rest)| {
                    let (trace, body) = split_trace(rest)?;
                    Ok((ns, trace, Request::from_wire_bytes(body)?))
                }) {
                    Err(err) => {
                        obs().frame_payload.inc();
                        event("server.frame_error.payload", err.to_string());
                        let response = error_response(ErrorCode::Malformed, &err);
                        if enqueue(&conn, &ready, &shared, id, Job::Reply(response)).is_err() {
                            return;
                        }
                    }
                    Ok((ns, trace, request)) => {
                        let queue_span =
                            stage_span(trace, "server.queue_wait", kind_name(&request), ns);
                        let job = Job::Dispatch(DispatchJob {
                            ns,
                            trace,
                            request,
                            queue_span,
                            queued: Stopwatch::start(),
                        });
                        if enqueue(&conn, &ready, &shared, id, job).is_err() {
                            return;
                        }
                    }
                },
            },
            // Frame boundary survived: report under id 0 and continue.
            Err(FrameError::Recoverable(err)) => {
                obs().frame_recoverable.inc();
                event("server.frame_error.recoverable", err.to_string());
                if respond(&conn, 0, &error_response(ErrorCode::Malformed, &err)).is_err() {
                    return;
                }
            }
            // Framing destroyed: best-effort report under id 0, close.
            Err(FrameError::Fatal(err)) => {
                obs().frame_fatal.inc();
                event("server.frame_error.fatal", err.to_string());
                let _ = respond(&conn, 0, &error_response(ErrorCode::Malformed, &err));
                return;
            }
            Err(FrameError::TooLarge(err)) => {
                obs().frame_too_large.inc();
                event("server.frame_error.too_large", err.to_string());
                let _ = respond(&conn, 0, &error_response(ErrorCode::TooLarge, &err));
                return;
            }
        }
    }
}

/// One unit of connection work, in FIFO position.
enum Job {
    /// A decoded request, addressed to a namespace, to run through
    /// [`dispatch`].
    Dispatch(DispatchJob),
    /// A pre-built response (a namespace, trace, or body decode error)
    /// that must keep its place in the response order.
    Reply(Response),
}

/// A decoded request in flight between the reader and a worker: its
/// namespace, wire trace context, and the queue-wait stage span opened
/// at enqueue time (closed when a worker pops the job).
struct DispatchJob {
    ns: u64,
    trace: Option<TraceContext>,
    request: Request,
    queue_span: Span,
    queued: Stopwatch,
}

/// Opens one server-side stage span of a traced request, tagged
/// `kind=… ns=…`. Untraced requests (and every request in the obs-off
/// build) get a free no-op handle — the tag string is never even built.
fn stage_span(
    trace: Option<TraceContext>,
    name: &'static str,
    kind: &'static str,
    ns: u64,
) -> Span {
    let Some(ctx) = trace else {
        return Span::noop();
    };
    let mut span = Span::start(ctx.trace_id, ctx.parent_span_id, name);
    if span.is_recording() {
        span.tag(format!("kind={kind} ns={ns}"));
    }
    span
}

/// Appends a job to the connection FIFO (blocking at
/// [`MAX_QUEUED_PER_CONN`]) and hands the connection to the worker pool
/// if no worker owns it yet. `Err` means the connection should close
/// (poisoned lock or the pool is gone at shutdown).
fn enqueue<E>(
    conn: &Arc<Conn>,
    ready: &mpsc::Sender<Arc<Conn>>,
    shared: &Shared<E>,
    id: u64,
    job: Job,
) -> Result<(), ()> {
    let Ok(mut q) = conn.queue.lock() else {
        return Err(());
    };
    while q.jobs.len() >= MAX_QUEUED_PER_CONN {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(());
        }
        q = match conn.drained.wait_timeout(q, IDLE_POLL) {
            Ok((guard, _)) => guard,
            Err(_) => return Err(()),
        };
    }
    q.jobs.push_back((id, job));
    obs().inflight.add(1);
    let kick = !q.scheduled;
    if kick {
        q.scheduled = true;
    }
    drop(q);
    if kick && ready.send(Arc::clone(conn)).is_err() {
        return Err(());
    }
    Ok(())
}

/// A worker: claims connections off the ready channel and drains each
/// FIFO it owns, one job at a time.
fn worker_loop<E: SamplingService>(
    ready: Arc<Mutex<mpsc::Receiver<Arc<Conn>>>>,
    shared: Arc<Shared<E>>,
) {
    loop {
        let conn = {
            let Ok(rx) = ready.lock() else {
                return;
            };
            match rx.recv() {
                Ok(conn) => conn,
                Err(_) => return, // channel closed: shutdown
            }
        };
        drain_connection(&conn, &shared);
    }
}

/// Drains one connection's FIFO: pops jobs in order, dispatches, and
/// writes each response under the connection's write lock. Releases
/// ownership (`scheduled = false`) when the queue empties so the reader
/// re-schedules the connection on its next enqueue.
fn drain_connection<E: SamplingService>(conn: &Conn, shared: &Arc<Shared<E>>) {
    loop {
        let (id, job) = {
            let Ok(mut q) = conn.queue.lock() else {
                return;
            };
            match q.jobs.pop_front() {
                Some(job) => job,
                None => {
                    q.scheduled = false;
                    return;
                }
            }
        };
        conn.drained.notify_all();
        let (response, wants_shutdown, trace, kind, ns) = match job {
            Job::Dispatch(job) => {
                // The queue-wait stage ends here: a worker owns the job.
                obs().stage_queue_wait.observe_elapsed(job.queued);
                drop(job.queue_span);
                let (trace, ns) = (job.trace, job.ns);
                let kind = kind_name(&job.request);
                let (response, wants_shutdown) = dispatch(shared, ns, trace, job.request);
                (response, wants_shutdown, trace, kind, ns)
            }
            Job::Reply(response) => (response, false, None, "error", 0),
        };
        let write_sw = Stopwatch::start();
        let write_span = stage_span(trace, "server.write", kind, ns);
        let write_ok = respond(conn, id, &response).is_ok();
        drop(write_span);
        obs().stage_write.observe_elapsed(write_sw);
        obs().inflight.add(-1);
        if wants_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            event("server.shutdown", "shutdown request accepted");
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.listen_addr);
        }
        if !write_ok {
            // The peer is gone: drop the rest of this queue (the reader
            // learns via EOF/reset) and release ownership.
            let Ok(mut q) = conn.queue.lock() else {
                return;
            };
            obs().inflight.add(-(q.jobs.len() as i64));
            q.jobs.clear();
            q.scheduled = false;
            drop(q);
            conn.drained.notify_all();
            return;
        }
    }
}

/// Blocks (in [`IDLE_POLL`] slices) until one byte arrives, the peer
/// closes, or shutdown is flagged. `Ok(None)` means "close this
/// connection quietly".
fn poll_first_byte(reader: &mut TcpStream, shutdown: &AtomicBool) -> std::io::Result<Option<u8>> {
    reader.set_read_timeout(Some(IDLE_POLL))?;
    let mut byte = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match reader.read(&mut byte) {
            Ok(0) => return Ok(None), // EOF
            Ok(_) => {
                obs().bytes_in.inc();
                return Ok(Some(byte[0]));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes one response frame under `request_id` through the connection's
/// write lock, flushes it, and credits the newly flushed bytes to
/// `server.bytes.out`. The frame is encoded *before* taking the lock;
/// the guarded region is exactly the serialized write+flush (both the
/// reader — answering frame errors inline — and any pool worker write
/// here, so responses never interleave mid-frame). The lock-io analyzer
/// pass flags socket I/O under a guard by design; these two calls are
/// allowlisted as the per-connection write serialization point — this is
/// not the engine lock, and blocking here only ever blocks this
/// connection's other responses.
fn respond(conn: &Conn, request_id: u64, response: &Response) -> std::io::Result<()> {
    let mut frame = Vec::new();
    write_response(request_id, response, &mut frame)?;
    let Ok(mut w) = conn.writer.lock() else {
        return Err(std::io::Error::other("connection writer poisoned"));
    };
    w.sink.write_all(&frame)?;
    w.sink.flush()?;
    let total = w.sink.get_ref().count();
    obs().bytes_out.add(total - w.flushed);
    w.flushed = total;
    Ok(())
}

/// An error response carrying the wire error's rendering as its message.
fn error_response(code: ErrorCode, err: &dyn std::fmt::Display) -> Response {
    Response::Error(ServiceError::new(code, err.to_string()))
}

/// Executes one request against its addressee. Server-scoped requests
/// (`Shutdown` and the namespace-management trio) run against the tenant
/// map itself; engine-scoped requests resolve their namespace to a
/// tenant engine first — a missing tenant is the in-band recoverable
/// `unknown-namespace` error. A traced request (wire v5) additionally
/// records its lock-wait and engine-work stage spans here (queue-wait
/// and response-write bracket this call in [`drain_connection`]).
/// Returns the response plus whether the server should shut down
/// afterwards.
fn dispatch<E: SamplingService>(
    shared: &Shared<E>,
    ns: u64,
    trace: Option<TraceContext>,
    request: Request,
) -> (Response, bool) {
    // Count the request up front so the Stats arm's local view includes
    // the Stats request itself; time the whole dispatch, lock wait
    // included — that wait is part of what the client experiences.
    let sw = Stopwatch::start();
    let served = shared.requests.fetch_add(1, Ordering::Relaxed) + 1;
    let req_obs = obs().req(&request);
    req_obs.count.inc();
    let kind = kind_name(&request);

    // Server-scoped requests never touch a tenant engine; `Shutdown` and
    // `ListNamespaces` ignore their namespace field, while the header
    // namespace is the create/drop operand (PROTOCOL.md §2). There is no
    // lock wait, so the whole arm is the engine-work stage.
    match request {
        Request::Shutdown => {
            let _stage = stage_span(trace, "server.engine", kind, ns);
            req_obs.ns.observe_elapsed(sw);
            return (Response::ShuttingDown, true);
        }
        Request::CreateNamespace => {
            let _stage = stage_span(trace, "server.engine", kind, ns);
            let response = if ns == DEFAULT_NAMESPACE {
                Response::Error(ServiceError::new(
                    ErrorCode::Unsupported,
                    "namespace 0 is the default tenant and always exists",
                ))
            } else {
                match &shared.spawner {
                    None => Response::Error(ServiceError::new(
                        ErrorCode::Unsupported,
                        "this server hosts a fixed tenant set (no spawner)",
                    )),
                    Some(spawn) => {
                        if shared.tenants.insert(ns, spawn(ns)) {
                            event("server.tenant.create", ns.to_string());
                            Response::NamespaceCreated
                        } else {
                            Response::Error(ServiceError::new(
                                ErrorCode::Unsupported,
                                format!("namespace {ns} already exists"),
                            ))
                        }
                    }
                }
            };
            req_obs.ns.observe_elapsed(sw);
            return (response, false);
        }
        Request::DropNamespace => {
            let _stage = stage_span(trace, "server.engine", kind, ns);
            let response = if ns == DEFAULT_NAMESPACE {
                Response::Error(ServiceError::new(
                    ErrorCode::Unsupported,
                    "namespace 0 is the default tenant and cannot be dropped",
                ))
            } else if shared.tenants.remove(ns).is_some() {
                event("server.tenant.drop", ns.to_string());
                Response::NamespaceDropped
            } else {
                unknown_namespace(ns)
            };
            req_obs.ns.observe_elapsed(sw);
            return (response, false);
        }
        Request::ListNamespaces => {
            let _stage = stage_span(trace, "server.engine", kind, ns);
            let response = Response::Namespaces(shared.tenants.list());
            req_obs.ns.observe_elapsed(sw);
            return (response, false);
        }
        _ => {}
    }

    // Engine-scoped: resolve the namespace (brief bucket lock, Arc
    // clone), then dispatch under the tenant's own mutex — other tenants
    // proceed in parallel on the remaining workers. The lock-wait stage
    // covers both waits; the engine-work stage starts once the tenant
    // mutex is held.
    let lock_sw = Stopwatch::start();
    let lock_span = stage_span(trace, "server.lock_wait", kind, ns);
    let Some(tenant) = shared.tenants.get(ns) else {
        drop(lock_span);
        obs().stage_lock_wait.observe_elapsed(lock_sw);
        req_obs.ns.observe_elapsed(sw);
        return (unknown_namespace(ns), false);
    };
    let Ok(mut engine) = tenant.lock() else {
        return (
            Response::Error(ServiceError::new(
                ErrorCode::Internal,
                "engine lock poisoned",
            )),
            false,
        );
    };
    drop(lock_span);
    obs().stage_lock_wait.observe_elapsed(lock_sw);
    let engine_sw = Stopwatch::start();
    let engine_span = stage_span(trace, "server.engine", kind, ns);
    let response = match request {
        // Unreachable through the wire (the decoder rejects an empty
        // batch), but the dispatcher is also reachable by in-process
        // callers: keep the no-silent-no-op rule at both layers.
        Request::IngestBatch(pairs) if pairs.is_empty() => Response::Error(ServiceError::new(
            ErrorCode::Malformed,
            "empty ingest batch",
        )),
        Request::IngestBatch(pairs) => {
            // Validate before touching the engine: an out-of-universe
            // index must become an in-band error, not an engine panic,
            // and a rejected batch must not be partially applied.
            let universe = engine.universe() as u64;
            match pairs.iter().find(|&&(index, _)| index >= universe) {
                Some(&(index, _)) => Response::Error(ServiceError::new(
                    ErrorCode::OutOfUniverse,
                    format!("index {index} outside universe [0, {universe})"),
                )),
                None => {
                    let batch: Vec<Update> = pairs
                        .iter()
                        .map(|&(index, delta)| Update::new(index, delta))
                        .collect();
                    engine.ingest_batch(&batch);
                    Response::Ingested {
                        accepted: batch.len() as u64,
                    }
                }
            }
        }
        Request::Sample { count } => {
            let draws = (0..count)
                .map(|_| engine.sample().map(|s| (s.index, s.estimate)))
                .collect();
            Response::Samples(draws)
        }
        Request::Snapshot => Response::Snapshot(engine.snapshot().to_bytes()),
        Request::Stats => {
            let mut stats = engine.service_stats();
            // The local-view fields (never on the wire — PROTOCOL.md §3):
            // this server's own request count and uptime.
            stats.requests_served = served;
            stats.uptime_secs = shared.start.elapsed().as_secs();
            Response::Stats(stats)
        }
        Request::Checkpoint => match engine.checkpoint_bytes() {
            Ok(bytes) => {
                // The one moment a tenant's full footprint is in hand:
                // feed the bytes/tenant distribution.
                obs().tenant_bytes.observe(bytes.len() as u64);
                Response::Checkpoint(bytes)
            }
            Err(err) => error_response(checkpoint_error_code(&err), &err),
        },
        Request::Restore(bytes) => match engine.restore_bytes(&bytes) {
            Ok(()) => Response::Restored,
            Err(err @ WireError::Unsupported(_)) => error_response(ErrorCode::Unsupported, &err),
            Err(err) => error_response(ErrorCode::Malformed, &err),
        },
        // Server-scoped requests returned above; kept exhaustive without
        // a wildcard so a new request variant is a compile error here.
        Request::Shutdown
        | Request::CreateNamespace
        | Request::DropNamespace
        | Request::ListNamespaces => Response::Error(ServiceError::new(
            ErrorCode::Internal,
            "server-scoped request reached the engine dispatcher",
        )),
    };
    drop(engine_span);
    obs().stage_engine.observe_elapsed(engine_sw);
    req_obs.ns.observe_elapsed(sw);
    (response, false)
}

/// The in-band answer for an engine-scoped request naming a namespace
/// this server does not host. Recoverable by design: the client can
/// create the namespace and retry on the same connection.
fn unknown_namespace(ns: u64) -> Response {
    Response::Error(ServiceError::new(
        ErrorCode::UnknownNamespace,
        format!("namespace {ns} does not exist on this server"),
    ))
}

/// Classifies a checkpoint failure: a factory that cannot cross the wire
/// (custom G closure) is the client's problem (`Unsupported`); anything
/// else is the server's (`Internal`).
fn checkpoint_error_code(err: &std::io::Error) -> ErrorCode {
    match err.get_ref().and_then(|e| e.downcast_ref::<WireError>()) {
        Some(WireError::Unsupported(_)) => ErrorCode::Unsupported,
        _ => ErrorCode::Internal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite regression: a peer that delivers exactly one byte
    /// per read must not extend the whole-frame budget — the deadline is
    /// fixed at frame start, so the read fails within ~the budget even
    /// though every individual read "succeeds".
    #[test]
    fn frame_deadline_is_a_per_frame_budget_against_byte_tricklers() {
        /// Serves a plausible frame prefix then trickles payload bytes
        /// forever, one per poll interval — the adversary the deadline
        /// exists for: every individual read "succeeds", so only a fixed
        /// per-frame budget can cut it off.
        struct Trickler {
            head: Vec<u8>,
            pos: usize,
        }
        impl Read for Trickler {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = if self.pos < self.head.len() {
                    self.head[self.pos]
                } else {
                    // Past the header, pace the trickle like a real
                    // 1-byte-per-poll peer.
                    std::thread::sleep(Duration::from_millis(1));
                    0x5A // endless "payload"
                };
                self.pos += 1;
                Ok(1)
            }
        }
        // magic | version | kind | len = 1 MiB, then a trickle that never
        // delivers the full payload.
        let mut head = Vec::new();
        head.extend_from_slice(&pts_util::wire::WIRE_MAGIC);
        head.push(pts_util::wire::WIRE_VERSION);
        head.push(KIND_REQUEST);
        head.extend_from_slice(&[0x80, 0x80, 0x40]); // varint 1 << 20
        let mut trickler = Trickler { head, pos: 0 };
        let shutdown = AtomicBool::new(false);
        let budget = Duration::from_millis(100);
        let started = Instant::now();
        let mut body = FrameBodyReader {
            stream: &mut trickler,
            deadline: Instant::now() + budget,
            shutdown: &shutdown,
        };
        let outcome = read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut body);
        let elapsed = started.elapsed();
        assert!(
            matches!(outcome, Err(FrameError::Fatal(_))),
            "trickled frame must die fatally, got {outcome:?}"
        );
        // Must cut off near the budget: far before the 10 s FRAME_TIMEOUT
        // and certainly not never. Generous upper bound for slow CI.
        assert!(
            elapsed >= budget && elapsed < Duration::from_secs(5),
            "deadline not honored: took {elapsed:?} for a {budget:?} budget"
        );
    }

    /// Shutdown must also cut a trickled frame short, budget remaining or
    /// not.
    #[test]
    fn shutdown_interrupts_mid_frame_reads() {
        struct Endless;
        impl Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = 0;
                Ok(1)
            }
        }
        let shutdown = AtomicBool::new(true);
        let mut endless = Endless;
        let mut body = FrameBodyReader {
            stream: &mut endless,
            deadline: Instant::now() + Duration::from_secs(60),
            shutdown: &shutdown,
        };
        let mut buf = [0u8; 1];
        let err = body.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }
}
