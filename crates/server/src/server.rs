//! The server: accept loop, per-connection handler threads, and the
//! request dispatcher over a shared [`SamplingService`].
//!
//! Threading model: the engine lives in one `Mutex` shared by all handler
//! threads — requests on different connections serialize at the engine,
//! which is exactly the consistency clients want (every response reflects
//! all previously *answered* requests, across connections). Concurrency
//! inside the engine is the engine's own business: a hosted
//! [`pts_engine::ConcurrentEngine`] still applies runs on its per-shard
//! worker threads while the mutex only serializes front-end calls.
//!
//! Shutdown: a `Shutdown` request (or [`Server::shutdown`]) sets a shared
//! flag; the accept loop is woken by a loopback connection and exits, and
//! handler threads observe the flag at their next idle poll and close.
//! [`Server::join`] then completes once every handler has returned.

use crate::obs::obs;
use pts_engine::SamplingService;
use pts_obs::{event, CountingWriter, Stopwatch};
use pts_stream::Update;
use pts_util::protocol::{
    read_frame_lenient, write_response, ErrorCode, FrameError, Request, Response, ServiceError,
    MAX_FRAME_BYTES,
};
use pts_util::wire::{Decode, WireError, KIND_REQUEST};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a handler blocks waiting for the *first* byte of a request
/// before re-checking the shutdown flag. Bounds shutdown latency without
/// burning CPU on idle connections.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// The whole-frame deadline: once a request's first byte has arrived, the
/// complete frame must follow within this window. A peer that stalls — or
/// trickles bytes to keep individual reads alive — is treated as gone
/// when the deadline passes (fatal; the connection closes) rather than
/// pinning the handler, and [`FrameBodyReader`] re-checks the shutdown
/// flag on every retry so teardown never waits on a slow peer.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Wraps the mid-frame reads of a connection: retries the socket's short
/// [`IDLE_POLL`] timeouts until data arrives, the whole-frame `deadline`
/// passes, or shutdown is flagged — converting both expiries into a
/// `TimedOut` error the frame reader classifies as fatal.
struct FrameBodyReader<'a> {
    stream: &'a mut TcpStream,
    deadline: Instant,
    shutdown: &'a AtomicBool,
}

impl Read for FrameBodyReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "server shutting down mid-frame",
                ));
            }
            if Instant::now() >= self.deadline {
                obs().conn_timeouts.inc();
                event("server.conn.frame_timeout", "whole-frame deadline exceeded");
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame deadline exceeded",
                ));
            }
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Ok(n) => {
                    obs().bytes_in.add(n as u64);
                    return Ok(n);
                }
                other => return other,
            }
        }
    }
}

/// The state all handler threads share. The shutdown flag lives in its
/// own `Arc` so the non-generic [`Server`] handle can hold it too.
struct Shared<E> {
    engine: Mutex<E>,
    shutdown: Arc<AtomicBool>,
    /// The listener's address — what a handler pokes to wake a blocking
    /// `accept` after flagging shutdown.
    listen_addr: SocketAddr,
    /// When this server started serving (feeds the local-view
    /// `ServiceStats::uptime_secs`).
    start: Instant,
    /// Requests answered by this server, all kinds (feeds the local-view
    /// `ServiceStats::requests_served`; monotonic, never on the wire).
    requests: AtomicU64,
}

/// A running sampling service bound to a TCP listener.
///
/// Dropping the server shuts it down and joins every thread; use
/// [`Server::join`] for an explicit, blocking teardown.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `addr` and serves `engine` until shut down — the one-call entry
/// point (`examples/serve_demo.rs` is the tour). Equivalent to
/// [`Server::bind`].
pub fn serve<E>(addr: impl ToSocketAddrs, engine: E) -> std::io::Result<Server>
where
    E: SamplingService + Send + 'static,
{
    Server::bind(addr, engine)
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// the accept loop on a background thread. The engine moves into the
    /// server; clients observe and mutate it only through the protocol.
    pub fn bind<E>(addr: impl ToSocketAddrs, engine: E) -> std::io::Result<Self>
    where
        E: SamplingService + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            shutdown: Arc::clone(&shutdown),
            listen_addr: addr,
            start: Instant::now(),
            requests: AtomicU64::new(0),
        });
        let accept = std::thread::Builder::new()
            .name("pts-server-accept".into())
            .spawn(move || accept_loop(listener, shared))?;
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The address the server is listening on (with the real port when
    /// bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown (request-driven or programmatic) has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates shutdown without a client: sets the flag and wakes the
    /// accept loop. Returns immediately; use [`Server::join`] to wait.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake a blocking accept; if the listener is already gone the
        // connect fails, which is equally fine.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the accept loop and every handler thread have exited.
    /// (A `Shutdown` request from a client triggers the same teardown.)
    pub fn join(mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until the shutdown flag is set, then joins every
/// handler it spawned.
fn accept_loop<E>(listener: TcpListener, shared: Arc<Shared<E>>)
where
    E: SamplingService + Send + 'static,
{
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("pts-server-conn".into())
                    .spawn(move || handle_connection(stream, shared))
                {
                    handlers.push(handle);
                }
            }
            // Transient accept errors (peer reset mid-handshake, fd
            // pressure) should not kill the service.
            Err(_) => continue,
        }
        // Reap finished handlers so a long-lived server does not
        // accumulate joinable threads.
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: reads request frames, answers each with exactly
/// one response frame, until EOF, a fatal framing error, or shutdown.
fn handle_connection<E: SamplingService>(stream: TcpStream, shared: Arc<Shared<E>>) {
    let o = obs();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    o.conn_opened.inc();
    o.conn_active.add(1);
    event("server.conn.open", peer.clone());
    // Balance the lifecycle metrics on *every* exit path.
    struct ConnGuard(String);
    impl Drop for ConnGuard {
        fn drop(&mut self) {
            let o = obs();
            o.conn_closed.inc();
            o.conn_active.add(-1);
            event("server.conn.close", std::mem::take(&mut self.0));
        }
    }
    let _guard = ConnGuard(peer);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = read_half;
    let mut writer = BufWriter::new(CountingWriter::new(stream));
    let mut flushed_out = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Wait for the first byte with a short poll so shutdown stays
        // responsive, then read the rest of the frame under a whole-frame
        // deadline: the socket keeps its short timeout and the body
        // reader re-checks the deadline and the shutdown flag on every
        // retry, so neither a stalled peer nor one trickling a byte at a
        // time can pin the handler past FRAME_TIMEOUT (or past shutdown).
        let first = match poll_first_byte(&mut reader, &shared.shutdown) {
            Ok(Some(b)) => b,
            Ok(None) => return, // EOF or shutdown
            Err(_) => return,
        };
        let body = FrameBodyReader {
            stream: &mut reader,
            deadline: Instant::now() + FRAME_TIMEOUT,
            shutdown: &shared.shutdown,
        };
        let mut src = std::io::Cursor::new([first]).chain(body);
        let outcome = read_frame_lenient(KIND_REQUEST, MAX_FRAME_BYTES, &mut src);
        match outcome {
            Ok(payload) => match Request::from_wire_bytes(&payload) {
                Ok(request) => {
                    let (response, shutdown) = dispatch(&shared, request);
                    if respond(&mut writer, &mut flushed_out, &response).is_err() {
                        return;
                    }
                    if shutdown {
                        shared.shutdown.store(true, Ordering::SeqCst);
                        event("server.shutdown", "shutdown request accepted");
                        // Wake the accept loop so it observes the flag.
                        let _ = TcpStream::connect(shared.listen_addr);
                        return;
                    }
                }
                // The frame was sound but its payload was not: answer
                // in-band and keep the connection.
                Err(err) => {
                    obs().frame_payload.inc();
                    event("server.frame_error.payload", err.to_string());
                    let response = error_response(ErrorCode::Malformed, &err);
                    if respond(&mut writer, &mut flushed_out, &response).is_err() {
                        return;
                    }
                }
            },
            // Frame boundary survived: report and continue.
            Err(FrameError::Recoverable(err)) => {
                obs().frame_recoverable.inc();
                event("server.frame_error.recoverable", err.to_string());
                let response = error_response(ErrorCode::Malformed, &err);
                if respond(&mut writer, &mut flushed_out, &response).is_err() {
                    return;
                }
            }
            // Framing destroyed: best-effort report, then close.
            Err(FrameError::Fatal(err)) => {
                obs().frame_fatal.inc();
                event("server.frame_error.fatal", err.to_string());
                let _ = respond(
                    &mut writer,
                    &mut flushed_out,
                    &error_response(ErrorCode::Malformed, &err),
                );
                return;
            }
            Err(FrameError::TooLarge(err)) => {
                obs().frame_too_large.inc();
                event("server.frame_error.too_large", err.to_string());
                let _ = respond(
                    &mut writer,
                    &mut flushed_out,
                    &error_response(ErrorCode::TooLarge, &err),
                );
                return;
            }
        }
    }
}

/// Blocks (in [`IDLE_POLL`] slices) until one byte arrives, the peer
/// closes, or shutdown is flagged. `Ok(None)` means "close this
/// connection quietly".
fn poll_first_byte(reader: &mut TcpStream, shutdown: &AtomicBool) -> std::io::Result<Option<u8>> {
    reader.set_read_timeout(Some(IDLE_POLL))?;
    let mut byte = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match reader.read(&mut byte) {
            Ok(0) => return Ok(None), // EOF
            Ok(_) => {
                obs().bytes_in.inc();
                return Ok(Some(byte[0]));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes one response frame, flushes it, and credits the newly flushed
/// bytes to `server.bytes.out` (tracked via `flushed`, the byte count
/// already credited on this connection).
fn respond(
    writer: &mut BufWriter<CountingWriter<TcpStream>>,
    flushed: &mut u64,
    response: &Response,
) -> std::io::Result<()> {
    write_response(response, writer)?;
    writer.flush()?;
    let total = writer.get_ref().count();
    obs().bytes_out.add(total - *flushed);
    *flushed = total;
    Ok(())
}

/// An error response carrying the wire error's rendering as its message.
fn error_response(code: ErrorCode, err: &dyn std::fmt::Display) -> Response {
    Response::Error(ServiceError::new(code, err.to_string()))
}

/// Executes one request against the shared engine. Returns the response
/// plus whether the server should shut down afterwards.
fn dispatch<E: SamplingService>(shared: &Shared<E>, request: Request) -> (Response, bool) {
    // Count the request up front so the Stats arm's local view includes
    // the Stats request itself; time the whole dispatch, lock wait
    // included — that wait is part of what the client experiences.
    let sw = Stopwatch::start();
    let served = shared.requests.fetch_add(1, Ordering::Relaxed) + 1;
    let req_obs = obs().req(&request);
    req_obs.count.inc();
    let mut wants_shutdown = false;
    let Ok(mut engine) = shared.engine.lock() else {
        return (
            Response::Error(ServiceError::new(
                ErrorCode::Internal,
                "engine lock poisoned",
            )),
            false,
        );
    };
    let response = match request {
        // Unreachable through the wire (the v2 decoder rejects an empty
        // batch), but the dispatcher is also reachable by in-process
        // callers: keep the no-silent-no-op rule at both layers.
        Request::IngestBatch(pairs) if pairs.is_empty() => Response::Error(ServiceError::new(
            ErrorCode::Malformed,
            "empty ingest batch",
        )),
        Request::IngestBatch(pairs) => {
            // Validate before touching the engine: an out-of-universe
            // index must become an in-band error, not an engine panic,
            // and a rejected batch must not be partially applied.
            let universe = engine.universe() as u64;
            match pairs.iter().find(|&&(index, _)| index >= universe) {
                Some(&(index, _)) => Response::Error(ServiceError::new(
                    ErrorCode::OutOfUniverse,
                    format!("index {index} outside universe [0, {universe})"),
                )),
                None => {
                    let batch: Vec<Update> = pairs
                        .iter()
                        .map(|&(index, delta)| Update::new(index, delta))
                        .collect();
                    engine.ingest_batch(&batch);
                    Response::Ingested {
                        accepted: batch.len() as u64,
                    }
                }
            }
        }
        Request::Sample { count } => {
            let draws = (0..count)
                .map(|_| engine.sample().map(|s| (s.index, s.estimate)))
                .collect();
            Response::Samples(draws)
        }
        Request::Snapshot => Response::Snapshot(engine.snapshot().to_bytes()),
        Request::Stats => {
            let mut stats = engine.service_stats();
            // The local-view fields (never on the wire — PROTOCOL.md §3):
            // this server's own request count and uptime.
            stats.requests_served = served;
            stats.uptime_secs = shared.start.elapsed().as_secs();
            Response::Stats(stats)
        }
        Request::Checkpoint => match engine.checkpoint_bytes() {
            Ok(bytes) => Response::Checkpoint(bytes),
            Err(err) => error_response(checkpoint_error_code(&err), &err),
        },
        Request::Restore(bytes) => match engine.restore_bytes(&bytes) {
            Ok(()) => Response::Restored,
            Err(err @ WireError::Unsupported(_)) => error_response(ErrorCode::Unsupported, &err),
            Err(err) => error_response(ErrorCode::Malformed, &err),
        },
        Request::Shutdown => {
            wants_shutdown = true;
            Response::ShuttingDown
        }
    };
    req_obs.ns.observe_elapsed(sw);
    (response, wants_shutdown)
}

/// Classifies a checkpoint failure: a factory that cannot cross the wire
/// (custom G closure) is the client's problem (`Unsupported`); anything
/// else is the server's (`Internal`).
fn checkpoint_error_code(err: &std::io::Error) -> ErrorCode {
    match err.get_ref().and_then(|e| e.downcast_ref::<WireError>()) {
        Some(WireError::Unsupported(_)) => ErrorCode::Unsupported,
        _ => ErrorCode::Internal,
    }
}
