//! The blocking client: typed request/response methods over one
//! persistent connection.
//!
//! Each method sends exactly one request frame and reads exactly one
//! response frame (the protocol's lockstep contract), converting protocol
//! payloads back into engine types at the boundary: raw `(index, delta)`
//! pairs become [`pts_stream::Update`]s on the way out and
//! [`pts_samplers::Sample`]s on the way back, snapshot bytes decode into
//! [`pts_engine::EngineSnapshot`]. Server-reported failures surface as
//! [`ClientError::Server`] carrying the wire-stable
//! [`pts_util::protocol::ErrorCode`].

use pts_engine::EngineSnapshot;
use pts_samplers::Sample;
use pts_stream::Update;
use pts_util::protocol::{
    read_response, write_request, Request, Response, ServiceError, ServiceStats,
};
use pts_util::wire::WireError;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection-level knobs for a [`Client`], builder-style.
///
/// The defaults reproduce the client's historical behavior exactly:
/// no deadline anywhere (connect, read, and write all block as long as
/// the OS lets them). Latency-sensitive callers — the `pts-cluster`
/// coordinator above all, which must *detect* a dead node rather than
/// hang on it — tighten these:
///
/// ```no_run
/// use pts_server::{Client, ClientConfig};
/// use std::time::Duration;
///
/// let config = ClientConfig::new()
///     .connect_timeout(Duration::from_secs(1))
///     .read_timeout(Duration::from_secs(5))
///     .write_timeout(Duration::from_secs(5));
/// let client = Client::connect_with("127.0.0.1:4000", &config).unwrap();
/// # let _ = client;
/// ```
///
/// Timeout semantics: an expired deadline surfaces as an I/O error from
/// the call in flight ([`ClientError::Io`] or [`ClientError::Wire`] with
/// an I/O kind, depending on where in the frame the clock ran out). The
/// protocol is lockstep per connection, so after a timeout the stream
/// position is unknowable — discard the client and reconnect; do not
/// retry on the same connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Per-read socket deadline while awaiting response bytes
    /// (`None` = block indefinitely).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline while sending request bytes
    /// (`None` = block indefinitely).
    pub write_timeout: Option<Duration>,
}

impl ClientConfig {
    /// The default configuration: no deadlines, matching
    /// [`Client::connect`]'s historical behavior.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the connect deadline.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Sets the per-read deadline.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets the per-write deadline.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed at the socket level.
    Io(std::io::Error),
    /// The server's bytes could not be decoded as a response frame.
    Wire(WireError),
    /// The server answered with an in-band error response.
    Server(ServiceError),
    /// The server answered with a well-formed response of the wrong kind
    /// for the request that was sent.
    UnexpectedResponse(&'static str),
    /// A checkpoint too large to ship in one `Restore` request
    /// ([`pts_util::protocol::MAX_RESTORE_BYTES`]); restore it out-of-band
    /// by starting the replacement server from the bytes directly
    /// (`ShardedEngine::restore` / `ConcurrentEngine::restore`). Detected
    /// client-side, before anything is sent, so the connection survives.
    CheckpointTooLarge {
        /// The oversized checkpoint's byte count.
        bytes: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol decode error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response kind (wanted {what})")
            }
            ClientError::CheckpointTooLarge { bytes } => write!(
                f,
                "checkpoint of {bytes} bytes exceeds the Restore request cap \
                 ({} bytes); restore it out-of-band",
                pts_util::protocol::MAX_RESTORE_BYTES
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`crate::Server`].
///
/// Not `Clone` and not thread-safe by design: the protocol is lockstep
/// per connection, so concurrent callers should each open their own
/// connection (the server spawns one handler per connection).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server with no deadlines (the default
    /// [`ClientConfig`]).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects to a server under the given connection configuration.
    ///
    /// With a `connect_timeout`, every resolved address is tried in turn
    /// under its own deadline (mirroring `TcpStream::connect`'s
    /// multi-address behavior); the last failure is reported if none
    /// accepts.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> std::io::Result<Self> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last_err = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no endpoints",
                            )
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// One lockstep round trip: send `request`, read one response. An
    /// error response becomes [`ClientError::Server`].
    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_request(request, &mut self.writer)?;
        self.writer.flush()?;
        match read_response(&mut self.reader)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Ok(other),
        }
    }

    /// Applies a batch of turnstile updates; returns the accepted count.
    pub fn ingest_batch(&mut self, batch: &[Update]) -> Result<u64, ClientError> {
        let pairs = batch.iter().map(|u| (u.index, u.delta)).collect();
        match self.round_trip(&Request::IngestBatch(pairs))? {
            Response::Ingested { accepted } => Ok(accepted),
            _ => Err(ClientError::UnexpectedResponse("Ingested")),
        }
    }

    /// Draws one sample from the served engine (`None` is the paper's ⊥).
    pub fn sample(&mut self) -> Result<Option<Sample>, ClientError> {
        Ok(self.sample_many(1)?.pop().flatten())
    }

    /// Draws `count` samples in one round trip, in draw order.
    pub fn sample_many(&mut self, count: u64) -> Result<Vec<Option<Sample>>, ClientError> {
        match self.round_trip(&Request::Sample { count })? {
            Response::Samples(draws) => Ok(draws
                .into_iter()
                .map(|d| d.map(|(index, estimate)| Sample { index, estimate }))
                .collect()),
            _ => Err(ClientError::UnexpectedResponse("Samples")),
        }
    }

    /// Fetches the engine's compact mergeable snapshot.
    pub fn snapshot(&mut self) -> Result<EngineSnapshot, ClientError> {
        match self.round_trip(&Request::Snapshot)? {
            Response::Snapshot(bytes) => Ok(EngineSnapshot::from_bytes(&bytes)?),
            _ => Err(ClientError::UnexpectedResponse("Snapshot")),
        }
    }

    /// Fetches the engine's counters, mass, and support.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::UnexpectedResponse("Stats")),
        }
    }

    /// Pulls a complete engine checkpoint (a framed `KIND_ENGINE` payload
    /// — feed it to an engine `restore`, persist it, or send it back via
    /// [`Client::restore`]).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.round_trip(&Request::Checkpoint)? {
            Response::Checkpoint(bytes) => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("Checkpoint")),
        }
    }

    /// Replaces the served engine's state with a previously captured
    /// checkpoint. Checkpoints above
    /// [`pts_util::protocol::MAX_RESTORE_BYTES`] are refused here, before
    /// anything is sent (shipping one would hit the server's frame cap
    /// and fatally close the connection); restore those out-of-band via
    /// the engine's own `restore`.
    pub fn restore(&mut self, checkpoint: &[u8]) -> Result<(), ClientError> {
        if checkpoint.len() as u64 > pts_util::protocol::MAX_RESTORE_BYTES {
            return Err(ClientError::CheckpointTooLarge {
                bytes: checkpoint.len(),
            });
        }
        match self.round_trip(&Request::Restore(checkpoint.to_vec()))? {
            Response::Restored => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Restored")),
        }
    }

    /// Asks the server to shut down (acknowledged before the server's
    /// accept loop exits).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("ShuttingDown")),
        }
    }

    /// Sends raw bytes **instead of** a well-formed request frame — the
    /// fuzz tests' hostile-client hook. The server's reply (if any) is
    /// read with [`Client::recv_response`].
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response frame without sending anything first (pairs
    /// with [`Client::send_raw`]).
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        Ok(read_response(&mut self.reader)?)
    }
}
